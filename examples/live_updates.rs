//! Live updates: maintain a serving index through item churn.
//!
//! The paper's system preprocesses a *static* database; a deployed
//! ranking service sees candidates added, withdrawn and re-scored all
//! day. This walkthrough drives a [`FairRanker`] through a stream of
//! [`DatasetUpdate`]s and shows:
//!
//! * the 2-D backend maintaining its interval index **incrementally**
//!   (no O(n²) rebuild per update),
//! * the shared `Arc<Dataset>` being *versioned* — snapshots held by
//!   replicas keep serving the pre-update data,
//! * the update counter travelling through the persistence envelope to
//!   an online replica,
//! * answers staying bit-identical to a from-scratch rebuild.
//!
//! ```text
//! cargo run --example live_updates
//! ```

use std::sync::Arc;

use fairrank::{DatasetUpdate, FairRanker, KnownFairness, Strategy, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::Proportionality;

fn describe(sug: &Suggestion) -> String {
    match &sug.fairness {
        KnownFairness::AlreadyFair => "already fair".into(),
        KnownFairness::Suggested { distance } => {
            format!(
                "try w = [{:.3}, {:.3}] ({distance:.4} rad away)",
                sug.weights[0], sug.weights[1]
            )
        }
        KnownFairness::Infeasible => "no fair linear ranking exists".into(),
    }
}

fn main() {
    // A population where group 0 crowds the top of attribute-0 rankings.
    let ds = generic::uniform(120, 2, 0.9, 42);
    let oracle =
        Proportionality::new(ds.type_attribute("group").unwrap(), 24).with_max_count(0, 12);
    let shared = Arc::new(ds);

    let mut ranker = FairRanker::builder(Arc::clone(&shared), Box::new(oracle))
        .strategy(Strategy::TwoD)
        .build()
        .expect("2-D build");
    let query = SuggestRequest::new([1.0, 0.15]);
    println!(
        "epoch {} | {}",
        ranker.version(),
        describe(&ranker.respond(&query).unwrap())
    );

    // --- live churn -----------------------------------------------------
    let updates = vec![
        DatasetUpdate::Insert {
            scores: vec![0.95, 0.20],
            groups: vec![0],
        },
        DatasetUpdate::Insert {
            scores: vec![0.15, 0.90],
            groups: vec![1],
        },
        DatasetUpdate::Rescore {
            item: 7,
            scores: vec![0.50, 0.55],
        },
        DatasetUpdate::Remove { item: 3 },
    ];
    for update in updates {
        let outcome = ranker.update(update).expect("valid update");
        println!(
            "epoch {} | {outcome:?} | n = {} | {}",
            ranker.version(),
            ranker.dataset().len(),
            describe(&ranker.respond(&query).unwrap())
        );
    }
    let stats = ranker.backend_stats();
    println!(
        "backend {}: {} updates applied, {} were full rebuilds",
        stats.kind, stats.updates, stats.rebuilds
    );

    // --- copy-on-write snapshot ----------------------------------------
    // The Arc we kept from before the updates still holds the original
    // 120 items: replicas reading it were never interrupted.
    println!(
        "original snapshot still serves {} items; live ranker serves {}",
        shared.len(),
        ranker.dataset().len()
    );

    // --- equivalence: the maintained index IS the rebuilt index ---------
    let scratch_oracle =
        Proportionality::new(ranker.dataset().type_attribute("group").unwrap(), 24)
            .with_max_count(0, 12);
    let scratch = FairRanker::builder(ranker.dataset().clone(), Box::new(scratch_oracle))
        .strategy(Strategy::TwoD)
        .build()
        .expect("scratch build");
    let (live_ans, scratch_ans) = (
        ranker.respond(&query).unwrap(),
        scratch.respond(&query).unwrap(),
    );
    assert_eq!(
        (live_ans.weights, live_ans.fairness),
        (scratch_ans.weights, scratch_ans.fairness),
        "incremental maintenance must be invisible in the answers"
    );
    println!("maintained index matches a from-scratch rebuild bit for bit");

    // --- versioned hand-off ---------------------------------------------
    let bytes = ranker.to_bytes();
    let replica_oracle =
        Proportionality::new(ranker.dataset().type_attribute("group").unwrap(), 24)
            .with_max_count(0, 12);
    let replica =
        FairRanker::from_bytes(&bytes, ranker.dataset().clone(), Box::new(replica_oracle))
            .expect("replica load");
    println!(
        "replica loaded at epoch {} ({} bytes envelope)",
        replica.version(),
        bytes.len()
    );
    assert_eq!(replica.version(), ranker.version());
}
