//! Async serving: the [`FairRankService`] micro-batched request
//! pipeline end to end.
//!
//! The synchronous API wants the caller to pre-assemble query batches;
//! a deployed two-sided platform sees *individual* requests arriving
//! concurrently — and item updates landing while queries are in flight.
//! This walkthrough shows:
//!
//! * building a service over an existing [`FairRanker`] with
//!   [`FairRankService::builder`] (worker count, micro-batch size and
//!   deadline, queue capacity),
//! * concurrent submitters awaiting [`SuggestionFuture`]s (via the
//!   crate's hand-rolled `block_on` — any executor works),
//! * handling backpressure: `try_suggest` fails fast with
//!   [`ServiceError::Overloaded`] when the bounded queue is full,
//! * updating the dataset *while serving*: in-flight batches keep their
//!   copy-on-write snapshot; every answer carries the dataset version it
//!   was computed from,
//! * graceful shutdown draining queued requests.
//!
//! ```text
//! cargo run --example async_serving
//! ```

use std::time::Duration;

use fairrank::{DatasetUpdate, FairRanker, KnownFairness, Strategy, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::Proportionality;
use fairrank_serve::{runtime, FairRankService, ServiceError};

fn describe(sug: &Suggestion) -> String {
    match &sug.fairness {
        KnownFairness::AlreadyFair => format!("v{}: already fair", sug.version),
        KnownFairness::Suggested { distance } => format!(
            "v{}: try w = [{:.3}, {:.3}] ({distance:.4} rad away)",
            sug.version, sug.weights[0], sug.weights[1]
        ),
        KnownFairness::Infeasible => format!("v{}: no fair linear ranking", sug.version),
    }
}

fn main() {
    // A population where group 0 crowds the top of attribute-0 rankings.
    let ds = generic::uniform(120, 2, 0.9, 42);
    let oracle =
        Proportionality::new(ds.type_attribute("group").unwrap(), 24).with_max_count(0, 12);
    let ranker = FairRanker::builder(ds, Box::new(oracle))
        .strategy(Strategy::TwoD)
        .build()
        .expect("2-D build");

    // --- service build ---------------------------------------------------
    // 2 workers drain the queue; a worker executes once it holds 16
    // requests or 500 µs after picking up a batch's first request,
    // whichever comes first. The queue holds at most 256 submissions.
    let service = FairRankService::builder(ranker)
        .workers(2)
        .max_batch(16)
        .max_delay(Duration::from_micros(500))
        .queue_capacity(256)
        .build();

    // --- concurrent submitters ------------------------------------------
    // Four "users" submit independently; the pool coalesces their
    // requests into micro-batches behind the scenes.
    std::thread::scope(|scope| {
        for user in 0..4 {
            let service = &service;
            scope.spawn(move || {
                for i in 0..3 {
                    let t = (user as f64 * 3.0 + i as f64 + 0.5) / 12.0;
                    let req = SuggestRequest::new(vec![1.0, 0.05 + 0.4 * t]).with_top_k(3);
                    let future = service.submit(req).expect("accepted");
                    // `SuggestionFuture` is a plain `Future`: await it on
                    // any executor; `runtime::block_on` is the built-in.
                    let answer = runtime::block_on(future).expect("served");
                    println!("user {user} request {i}: {}", describe(&answer));
                }
            });
        }
    });

    // --- backpressure -----------------------------------------------------
    // `try_suggest` never blocks: when the bounded queue is full it
    // returns `Overloaded` and the caller sheds load or retries.
    match service.try_suggest(SuggestRequest::new(vec![1.0, 0.1])) {
        Ok(future) => {
            let answer = future.wait().expect("served");
            println!("fast-path submission: {}", describe(&answer));
        }
        Err(ServiceError::Overloaded { capacity, depth }) => {
            println!("overloaded at capacity {capacity} ({depth} outstanding) — shedding load");
        }
        Err(other) => panic!("unexpected: {other}"),
    }

    // --- update while serving --------------------------------------------
    // The serialized writer path forks the ranker copy-on-write and swaps
    // generations: queries served before the swap carry version 0,
    // queries after it carry version 1 — nobody blocks, nobody tears.
    let probe = SuggestRequest::new(vec![1.0, 0.15]);
    let before = service.suggest(probe.clone()).expect("served");
    let outcome = service
        .update(DatasetUpdate::Insert {
            scores: vec![0.95, 0.25],
            groups: vec![0],
        })
        .expect("valid update");
    let after = service.suggest(probe).expect("served");
    println!("update outcome: {outcome:?}");
    println!("  before: {}", describe(&before));
    println!("  after:  {}", describe(&after));
    assert_eq!(before.version, 0);
    assert_eq!(after.version, 1);

    let stats = service.stats();
    println!(
        "served {} requests in {} micro-batches across {} workers ({} shed)",
        stats.completed, stats.batches, stats.workers, stats.rejected
    );

    // --- graceful shutdown ------------------------------------------------
    // Queue a few more requests, then shut down: the pool drains and
    // answers everything already accepted before exiting.
    let parting: Vec<_> = (0..5)
        .map(|i| {
            let req = SuggestRequest::new(vec![1.0, 0.1 + 0.1 * f64::from(i)]);
            (i, service.submit(req).expect("accepted"))
        })
        .collect();
    service.shutdown();
    for (i, future) in parting {
        let answer = future.wait().expect("drained at shutdown");
        println!("parting request {i}: {}", describe(&answer));
    }
    println!("service shut down cleanly");
}
