//! The paper's Example 1: a college admissions officer scoring applicants
//! by `0.5·SAT + 0.5·GPA` discovers the top-500 under-represents women and
//! asks for the closest gender-balanced scoring function.
//!
//! ```sh
//! cargo run --release --example college_admissions
//! ```

use fairrank::{FairRanker, KnownFairness, SuggestRequest};
use fairrank_datasets::distributions::{categorical, clamped_normal};
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate an applicant pool mirroring the SAT gender gap the paper cites
/// (women scored ≈25 points lower on average on the 2014 SAT).
fn applicant_pool(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);
    for _ in 0..n {
        let female = categorical(&mut rng, &[0.5, 0.5]) as u32; // 0: male, 1: female
                                                                // SAT: gender-gapped; GPA: slightly favoring women (observed in
                                                                // national data), both clamped to their scales.
        let sat = clamped_normal(
            &mut rng,
            if female == 1 { 1475.0 } else { 1500.0 },
            140.0,
            600.0,
            2400.0,
        );
        let gpa = clamped_normal(
            &mut rng,
            if female == 1 { 3.25 } else { 3.15 },
            0.45,
            0.0,
            4.0,
        );
        rows.push(vec![sat, gpa]);
        gender.push(female);
    }
    let mut ds = Dataset::from_rows(vec!["sat".into(), "gpa".into()], &rows).unwrap();
    ds.add_type_attribute("gender", vec!["male".into(), "female".into()], gender)
        .unwrap();
    // Normalize and standardize, as the example prescribes.
    ds.normalize_min_max(&[]);
    ds
}

fn main() {
    let n = 2000;
    let k = 500;
    let ds = applicant_pool(n, 2014);
    let gender = ds.type_attribute("gender").unwrap();

    // Fairness constraint from the example: at least 200 women among the
    // top-500.
    let oracle = Proportionality::new(gender, k).with_min_count(1, 200);

    // The officer's a-priori function: equal weights.
    let query = [0.5, 0.5];
    let top = ds.top_k(&query, k);
    let women = top
        .iter()
        .filter(|&&i| gender.values[i as usize] == 1)
        .count();
    println!("f = 0.5·sat + 0.5·gpa → {women} women in the top-{k} (need ≥ 200)");

    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .build()
        .unwrap();
    let answer = ranker.respond(&SuggestRequest::new(query)).unwrap();
    match answer.fairness {
        KnownFairness::AlreadyFair => println!("the equal-weight function is already fair"),
        KnownFairness::Suggested { distance } => {
            let weights = &answer.weights;
            // Renormalize to unit weight-sum for readability, like the
            // paper's f'(t) = 0.45·sat + 0.55·gpa.
            let s = weights[0] + weights[1];
            println!(
                "suggested f' = {:.3}·sat + {:.3}·gpa  (angular distance {:.4} rad)",
                weights[0] / s,
                weights[1] / s,
                distance
            );
            let top = ds.top_k(weights, k);
            let women = top
                .iter()
                .filter(|&&i| gender.values[i as usize] == 1)
                .count();
            println!("under f': {women} women in the top-{k} — constraint met");
        }
        KnownFairness::Infeasible => {
            println!("no linear scoring function admits 200 women in the top-{k}");
        }
    }
}
