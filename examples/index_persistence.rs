//! Offline → online hand-off, both granularities:
//!
//! 1. **Whole ranker** — build with the unified builder, persist with
//!    [`FairRanker::save`], reload in a fresh "online replica" with
//!    [`FairRanker::load`] (the backend kind travels in the envelope;
//!    the replica never names it), and serve a batch through the
//!    sharded parallel path.
//! 2. **Raw artifact** — the original byte-level codec for shipping an
//!    [`fairrank::approximate::ApproxIndex`] alone, for online sides
//!    that keep neither the dataset nor the oracle.
//!
//! ```sh
//! cargo run --release --example index_persistence
//! ```

use std::time::Instant;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::persist::{decode_approx_index, encode_approx_index};
use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::compas;
use fairrank_fairness::Proportionality;
use fairrank_geometry::polar::{angular_distance, to_polar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- offline process -------------------------------------------------
    let ds = compas::generate(&compas::CompasConfig {
        n: 300,
        ..Default::default()
    })
    .project(&compas::validation_projection())?;
    let race = ds.type_attribute("race").expect("race attribute");
    let k = ds.len() * 3 / 10;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.60);

    let t0 = Instant::now();
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .strategy(Strategy::MdApprox)
        .approx_options(BuildOptions {
            n_cells: 800,
            max_hyperplanes: Some(8_000),
            ..Default::default()
        })
        .build()?;
    println!(
        "offline: built {:?} in {:.2?}",
        ranker.backend_stats(),
        t0.elapsed()
    );

    let path = std::env::temp_dir().join("fairrank_ranker.frix");
    ranker.save(&path)?;
    println!(
        "offline: persisted whole ranker ({} bytes) to {}",
        std::fs::metadata(&path)?.len(),
        path.display()
    );

    // ---- online replica (whole-ranker load + sharded serving) -----------
    let replica = FairRanker::load(&path, ds.clone(), Box::new(oracle))?;
    let reqs: Vec<SuggestRequest> = (0..32)
        .map(|i| SuggestRequest::new(vec![1.0, 0.1 + 0.05 * f64::from(i), 0.4]))
        .collect();
    let t = Instant::now();
    let answers = replica.respond_batch_parallel(&reqs, 4)?;
    println!(
        "online:  replica answered {} queries over 4 shards in {:.2?} \
         (answers match the offline ranker: {})",
        answers.len(),
        t.elapsed(),
        reqs.iter()
            .zip(&answers)
            .all(|(q, a)| ranker.respond(q).unwrap() == *a),
    );

    // ---- online process, artifact-only (no dataset, no oracle) ----------
    let index = ranker.approx_index().expect("approx backend");
    let bytes = encode_approx_index(index);
    let loaded: ApproxIndex = decode_approx_index(&bytes)?;
    println!(
        "online:  artifact-only side loaded {} cells (error bound {:.4} rad)",
        loaded.grid().cell_count(),
        loaded.error_bound()
    );
    for weights in [[1.0, 1.0, 1.0], [1.0, 0.1, 0.1], [0.2, 0.4, 1.4]] {
        let (_, angles) = to_polar(&weights);
        let t = Instant::now();
        let answer = loaded.lookup(&angles).expect("satisfiable model");
        let micros = t.elapsed().as_secs_f64() * 1e6;
        println!(
            "online:  query {:?} → fair function at θ-distance {:.4} rad ({micros:.1} µs)",
            weights,
            angular_distance(answer, &angles)
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
