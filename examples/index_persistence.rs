//! Offline → online hand-off: build an approximate index, persist it to
//! disk, reload it in a fresh "online service", and answer queries —
//! without the dataset or the oracle ever reaching the online side.
//!
//! ```sh
//! cargo run --release --example index_persistence
//! ```

use std::time::Instant;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::persist::{decode_approx_index, encode_approx_index};
use fairrank_datasets::synthetic::compas;
use fairrank_fairness::Proportionality;
use fairrank_geometry::polar::{angular_distance, to_polar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- offline process -------------------------------------------------
    let ds = compas::generate(&compas::CompasConfig {
        n: 300,
        ..Default::default()
    })
    .project(&compas::validation_projection())?;
    let race = ds.type_attribute("race").expect("race attribute");
    let k = ds.len() * 3 / 10;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.60);

    let t0 = Instant::now();
    let index = ApproxIndex::build(
        &ds,
        &oracle,
        &BuildOptions {
            n_cells: 800,
            max_hyperplanes: Some(8_000),
            ..Default::default()
        },
    )?;
    println!(
        "offline: built index over {} cells ({} satisfactory functions) in {:.2?}",
        index.grid().cell_count(),
        index.functions().len(),
        t0.elapsed()
    );

    let bytes = encode_approx_index(&index);
    let path = std::env::temp_dir().join("fairrank_index.frix");
    std::fs::write(&path, &bytes)?;
    println!(
        "offline: persisted {} bytes to {}",
        bytes.len(),
        path.display()
    );

    // ---- online process (no dataset, no oracle) --------------------------
    let loaded = decode_approx_index(&std::fs::read(&path)?)?;
    println!(
        "online:  loaded index ({} cells, error bound {:.4} rad)",
        loaded.grid().cell_count(),
        loaded.error_bound()
    );

    for weights in [[1.0, 1.0, 1.0], [1.0, 0.1, 0.1], [0.2, 0.4, 1.4]] {
        let (_, angles) = to_polar(&weights);
        let t = Instant::now();
        let answer = loaded.lookup(&angles).expect("satisfiable model");
        let micros = t.elapsed().as_secs_f64() * 1e6;
        println!(
            "online:  query {:?} → fair function at θ-distance {:.4} rad ({micros:.1} µs)",
            weights,
            angular_distance(answer, &angles)
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
