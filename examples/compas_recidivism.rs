//! The paper's main evaluation scenario: the (synthetic) COMPAS dataset
//! with the default fairness model FM1 — at most 60% African-Americans
//! among the top-ranked 30% — over three scoring attributes, answered with
//! the multi-dimensional approximate index (§5).
//!
//! ```sh
//! cargo run --release --example compas_recidivism
//! ```

use fairrank::approximate::BuildOptions;
use fairrank::{FairRanker, KnownFairness, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::compas::{self, CompasConfig};
use fairrank_fairness::{FairnessOracle, Proportionality};

fn main() {
    // Small-n COMPAS variant so the example runs in seconds; the bench
    // harness exercises the full 6,889 rows.
    let full = compas::generate(&CompasConfig {
        n: 300,
        ..CompasConfig::default()
    });
    // §6.2 scoring attributes: start, c_days_from_compas, juv_other_count.
    let ds = full.project(&compas::validation_projection()).unwrap();
    let race = ds.type_attribute("race").unwrap();
    println!(
        "COMPAS-like dataset: {} individuals, d = {}; AA share = {:.1}%",
        ds.len(),
        ds.dim(),
        100.0 * race.group_proportions()[0]
    );

    // FM1: at most 60% African-American among the top 30%.
    let k = (ds.len() as f64 * 0.3).round() as usize;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.6);
    println!("constraint: {} (k = {k}, cap = 60%)", oracle.describe());

    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle.clone()))
        .strategy(Strategy::MdApprox)
        .approx_options(BuildOptions {
            n_cells: 2_000,
            ..Default::default()
        })
        .build()
        .unwrap();
    let stats = ranker.approx_index().unwrap().stats();
    println!(
        "offline: |H| = {}, {} cells ({} satisfied directly, {} colored), {:?} total",
        stats.hyperplane_count,
        stats.cell_count,
        stats.satisfied_cells,
        stats.colored_cells,
        stats.total_time()
    );

    // A user explores a few weightings of the three attributes.
    let queries = [
        [1.0, 1.0, 1.0],
        [1.0, 0.1, 0.1],
        [0.2, 1.0, 0.3],
        [0.1, 0.1, 1.0],
    ];
    for q in queries {
        let answer = ranker.respond(&SuggestRequest::new(q)).unwrap();
        match answer.fairness {
            KnownFairness::AlreadyFair => println!("w = {q:?}: fair as-is"),
            KnownFairness::Suggested { distance } => {
                let weights = &answer.weights;
                let top = ds.top_k(weights, k);
                let aa = top
                    .iter()
                    .filter(|&&i| race.values[i as usize] == 0)
                    .count();
                println!(
                    "w = {q:?}: unfair → suggest [{:.3}, {:.3}, {:.3}] \
                     ({distance:.4} rad; AA in top-{k}: {aa} ≤ {})",
                    weights[0],
                    weights[1],
                    weights[2],
                    (0.6 * k as f64).floor()
                );
            }
            KnownFairness::Infeasible => println!("w = {q:?}: constraint unsatisfiable"),
        }
    }
}
