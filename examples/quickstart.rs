//! Quickstart: build a 2-D fair-ranking index and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fairrank::{FairRanker, KnownFairness, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::{FairnessOracle, Proportionality};

fn main() {
    // A dataset of 200 items with two scoring attributes. The protected
    // `group` attribute is correlated with attribute 0: group-0 members
    // concentrate at the top of attribute-0-heavy rankings.
    let ds = generic::uniform(200, 2, 0.9, 7);
    let group = ds.type_attribute("group").unwrap();
    println!(
        "dataset: {} items, {} attributes; group shares = {:?}",
        ds.len(),
        ds.dim(),
        group.group_proportions()
    );

    // Fairness: at most 50% of the top-20 may come from group 0.
    let oracle = Proportionality::new(group, 20).with_max_count(0, 10);
    println!("constraint: {}", oracle.describe());

    // Offline phase through the unified builder: `Strategy::Auto` (the
    // default) picks 2DRAYSWEEP for two scoring attributes.
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .build()
        .unwrap();
    println!("backend: {:?}", ranker.backend_stats());
    let intervals = ranker.intervals().unwrap();
    println!(
        "satisfactory regions: {} interval(s), covering {:.1}% of the function space",
        intervals.len(),
        100.0 * intervals.measure() / fairrank::geometry::HALF_PI
    );

    // Online phase: propose weights, get a fair alternative when needed.
    for query in [[1.0, 1.0], [1.0, 0.1], [0.1, 1.0]] {
        let answer = ranker.respond(&SuggestRequest::new(query)).unwrap();
        match answer.fairness {
            KnownFairness::AlreadyFair => {
                println!("w = {query:?}: already fair — keep it");
            }
            KnownFairness::Suggested { distance } => {
                println!(
                    "w = {query:?}: unfair; closest fair function is \
                     [{:.3}, {:.3}] ({distance:.4} rad away)",
                    answer.weights[0], answer.weights[1]
                );
            }
            KnownFairness::Infeasible => {
                println!("w = {query:?}: no linear function satisfies the constraint");
            }
        }
    }
}
