//! A complete replicated deployment over loopback: a writer
//! [`FairRankService`] publishing an update log, two replicas tailing
//! it, and an HTTP front end on every node.
//!
//! Run with `cargo run --release -p fairrank-net --example replicated_serving`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fairrank::{DatasetUpdate, FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_net::{Client, HttpServer, Replica, ReplicaOptions, ReplicatedWriter, ServerConfig};
use fairrank_serve::FairRankService;

// Oracles are black-box closures and do not serialize; each replica
// reconstructs its own from the dataset it received in the handshake.
fn oracle_for(ds: &Dataset) -> Box<dyn FairnessOracle> {
    let attr = ds.type_attribute("group").expect("synthetic group attr");
    Box::new(Proportionality::new(attr, 20).with_max_count(0, 12))
}

fn main() {
    // --- the writer: dataset -> ranker -> service -> replication port ---
    let ds = generic::uniform(200, 2, 0.9, 7);
    let ranker = FairRanker::builder(ds, oracle_for(&generic::uniform(200, 2, 0.9, 7)))
        .strategy(Strategy::TwoD)
        .build()
        .expect("build ranker");
    let writer_service = Arc::new(FairRankService::builder(ranker).workers(2).build());
    let writer =
        ReplicatedWriter::bind(Arc::clone(&writer_service), "127.0.0.1:0").expect("bind writer");
    println!("writer replication port: {}", writer.replication_addr());

    // --- two replicas bootstrap from the snapshot and tail the log ----
    let replicas: Vec<Replica> = (0..2)
        .map(|_| {
            Replica::connect(
                writer.replication_addr(),
                oracle_for,
                ReplicaOptions::default(),
            )
            .expect("replica connect")
        })
        .collect();

    // --- HTTP on every node ------------------------------------------
    let writer_http = HttpServer::bind(
        Arc::clone(&writer_service),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind writer http");
    let replica_https: Vec<HttpServer> = replicas
        .iter()
        .map(|r| {
            HttpServer::bind(r.service(), "127.0.0.1:0", ServerConfig::default())
                .expect("bind replica http")
        })
        .collect();

    // Any node answers queries; at the same version the answers are
    // bit-identical, so a load balancer can pick freely.
    let query = SuggestRequest::new(vec![1.0, 0.35]);
    let mut writer_client = Client::connect(writer_http.local_addr()).expect("connect");
    let from_writer = writer_client.suggest(&query).expect("writer answer");
    println!(
        "writer   -> {} ({} bytes)",
        from_writer.status,
        from_writer.body.len()
    );
    for (i, server) in replica_https.iter().enumerate() {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let resp = client.suggest(&query).expect("replica answer");
        println!(
            "replica{i} -> {} (identical body: {})",
            resp.status,
            resp.body == from_writer.body
        );
    }

    // --- a live update flows writer -> log -> replicas ----------------
    let burst = vec![
        DatasetUpdate::Insert {
            scores: vec![0.42, 0.58],
            groups: vec![1],
        },
        DatasetUpdate::Rescore {
            item: 3,
            scores: vec![0.8, 0.2],
        },
    ];
    writer.apply(&burst).expect("apply updates");
    let target = writer_service.version();
    let deadline = Instant::now() + Duration::from_secs(10);
    while replicas.iter().any(|r| r.version() < target) {
        assert!(Instant::now() < deadline, "replicas failed to converge");
        std::thread::sleep(Duration::from_millis(2));
    }
    println!("all replicas converged to version {target}");

    let after = writer_client.suggest(&query).expect("writer answer");
    for (i, server) in replica_https.iter().enumerate() {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let resp = client.suggest(&query).expect("replica answer");
        println!(
            "replica{i} post-update identical: {}",
            resp.body == after.body
        );
    }

    for server in replica_https {
        server.shutdown();
    }
    writer_http.shutdown();
    for replica in replicas {
        replica.shutdown();
    }
    writer.shutdown();
    println!("clean shutdown");
}
