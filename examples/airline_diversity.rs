//! The paper's §5.4/§6.4 large-scale scenario: rank flights by on-time
//! performance while keeping any single carrier from crowding the top of
//! the list (a *diversity* constraint — the oracle interface is the same).
//!
//! Preprocessing runs on a 1,000-row uniform sample; every function the
//! index assigns is then validated against the full dataset, reproducing
//! the paper's result that sampled verdicts transfer.
//!
//! ```sh
//! cargo run --release --example airline_diversity
//! ```

use fairrank::approximate::{ApproxGrid, BuildOptions};
use fairrank::sampling::{build_on_sample, validate_against};
use fairrank::{FairRanker, KnownFairness, SuggestRequest};
use fairrank_datasets::synthetic::dot::{self, DotConfig};
use fairrank_fairness::Proportionality;

fn main() {
    // 120k flights keeps the example fast; the bench harness runs the
    // paper's full 1.32M.
    let full = dot::generate(&DotConfig {
        n: 120_000,
        ..DotConfig::default()
    });
    let airline = full.type_attribute("airline_name").unwrap();
    println!(
        "DOT-like dataset: {} flights, {} carriers",
        full.len(),
        airline.group_count()
    );

    // Fairness/diversity: within the top 10%, each of the four major
    // carriers may exceed its dataset share by at most 5 points.
    let majors = dot::major_carrier_groups();
    let proportions = airline.group_proportions();
    let k_full = full.len() / 10;
    let full_oracle = Proportionality::new(airline, k_full).with_proportional_caps(
        &proportions,
        0.05,
        Some(&majors),
    );

    // Offline on a 1,000-row sample (paper §5.4).
    let t0 = std::time::Instant::now();
    let (index, sample) = build_on_sample(
        &full,
        1_000,
        0xD07,
        |s| {
            let attr = s.type_attribute("airline_name").unwrap();
            let props = attr.group_proportions();
            let k = s.len() / 10;
            Box::new(Proportionality::new(attr, k).with_proportional_caps(
                &props,
                0.05,
                Some(&majors),
            ))
        },
        &BuildOptions {
            n_cells: 5_000,
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "preprocessed on a {}-row sample in {:?}: {} cells, {} satisfactory functions",
        sample.len(),
        t0.elapsed(),
        index.stats().cell_count,
        index.functions().len()
    );

    // §6.4 validation: do the sampled functions hold on all 120k flights?
    let report = validate_against(&index, &full, &full_oracle);
    println!(
        "validation on the full dataset: {}/{} assigned functions remain \
         satisfactory ({:.1}%)",
        report.satisfactory,
        report.functions_checked,
        100.0 * report.success_rate()
    );

    // Online: serve the *full* dataset through the sample-built index —
    // `FairRanker::from_backend` mounts any `IndexBackend` (here the §5
    // grid wrapped as `ApproxGrid`) behind the standard serving API.
    let ranker = FairRanker::from_backend(
        full,
        Box::new(full_oracle),
        Box::new(ApproxGrid::new(index)),
    )
    .unwrap();
    let query = [1.0, 1.0, 0.2];
    let answer = ranker.respond(&SuggestRequest::new(query)).unwrap();
    match answer.fairness {
        KnownFairness::AlreadyFair => println!("query {query:?} is already carrier-diverse"),
        KnownFairness::Suggested { .. } => println!(
            "query {query:?} → suggested carrier-diverse weights \
             [{:.3}, {:.3}, {:.3}]",
            answer.weights[0], answer.weights[1], answer.weights[2]
        ),
        KnownFairness::Infeasible => println!("no satisfactory function found on the sample"),
    }
}
