//! The interactive design loop of the paper's introduction: a human
//! designer proposes weights, the system approves or proposes the closest
//! fair alternative, the designer counter-proposes, and so on — each
//! online round answering in sub-millisecond time against the offline
//! index.
//!
//! Also demonstrates the **black-box oracle** claim: the third round
//! swaps the proportionality oracle for a hand-written diversity closure
//! without touching any indexing code.
//!
//! ```sh
//! cargo run --release --example design_loop
//! ```

use std::time::Instant;

use fairrank::{FairRanker, KnownFairness, SuggestRequest, Suggestion};
use fairrank_datasets::synthetic::generic;
use fairrank_fairness::{FnOracle, Proportionality};

fn report(round: usize, query: &[f64], suggestion: &Suggestion, micros: u128) {
    match &suggestion.fairness {
        KnownFairness::AlreadyFair => {
            println!("round {round}: {query:?} accepted ({micros} µs)");
        }
        KnownFairness::Suggested { distance } => {
            let pretty: Vec<String> = suggestion
                .weights
                .iter()
                .map(|w| format!("{w:.3}"))
                .collect();
            println!(
                "round {round}: {query:?} rejected → counter-proposal [{}] at {distance:.4} rad ({micros} µs)",
                pretty.join(", ")
            );
        }
        KnownFairness::Infeasible => {
            println!("round {round}: {query:?} — constraint unsatisfiable ({micros} µs)");
        }
    }
}

fn main() {
    let ds = generic::uniform(400, 2, 0.85, 99);
    let group = ds.type_attribute("group").unwrap();

    // Session 1: proportionality constraint, 2-D index.
    println!("— session 1: FM1 proportionality (≤ 22 of the top-40 from group 0) —");
    let oracle = Proportionality::new(group, 40).with_max_count(0, 22);
    let t = Instant::now();
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .build()
        .unwrap();
    println!("offline preprocessing: {:?}", t.elapsed());

    // The designer iterates: start attribute-0 heavy, accept or nudge.
    let mut proposal = vec![1.0, 0.05];
    for round in 1..=4 {
        let t = Instant::now();
        let suggestion = ranker
            .respond(&SuggestRequest::new(proposal.clone()))
            .unwrap();
        let micros = t.elapsed().as_micros();
        report(round, &proposal, &suggestion, micros);
        match suggestion.fairness {
            KnownFairness::Suggested { .. } => {
                // The designer accepts half the correction and tries again
                // (the "manual adjust and re-invoke" loop of §2.1).
                proposal = proposal
                    .iter()
                    .zip(&suggestion.weights)
                    .map(|(p, w)| 0.5 * (p + w))
                    .collect();
            }
            _ => break,
        }
    }

    // Session 2: an arbitrary closure as the oracle — top-10 must contain
    // at least 3 items of each group AND item 0 must not be ranked first.
    println!("— session 2: hand-written diversity oracle (black-box) —");
    let groups: Vec<u32> = group.values.clone();
    let custom = FnOracle::new(
        "≥3 of each group in top-10, item 0 not first",
        move |r: &[u32]| {
            let g0 = r
                .iter()
                .take(10)
                .filter(|&&i| groups[i as usize] == 0)
                .count();
            (3..=7).contains(&g0) && r[0] != 0
        },
    );
    let t = Instant::now();
    let ranker2 = FairRanker::builder(ds.clone(), Box::new(custom))
        .build()
        .unwrap();
    println!("offline preprocessing: {:?}", t.elapsed());
    for (round, q) in [[1.0, 0.02], [0.6, 0.8]].iter().enumerate() {
        let t = Instant::now();
        let suggestion = ranker2.respond(&SuggestRequest::new(*q)).unwrap();
        report(round + 1, q, &suggestion, t.elapsed().as_micros());
    }
}
