//! Focused unit tests for the LP kernels on the inputs the happy-path
//! integration suite never produces: infeasible systems, unbounded
//! objectives, degenerate vertices, slivers and malformed programs.

use fairrank_lp::seidel::{solve_seidel, SeidelOutcome};
use fairrank_lp::{
    chebyshev_center, feasible_point, interior_point, is_feasible, simplex, Constraint,
    LinearProgram, LpError, LpOutcome,
};

// ---------------------------------------------------------------------
// Simplex: infeasible systems
// ---------------------------------------------------------------------

#[test]
fn simplex_detects_contradictory_halfspaces() {
    let lp = LinearProgram::minimize(vec![1.0, 1.0])
        .with_constraints([
            Constraint::le(vec![1.0, 0.0], 0.2),
            Constraint::ge(vec![1.0, 0.0], 0.8),
        ])
        .with_box(0.0, 1.0);
    assert_eq!(simplex::solve(&lp).unwrap(), LpOutcome::Infeasible);
}

#[test]
fn simplex_detects_constraint_outside_box() {
    // x + y >= 3 can never hold inside [0, 1]^2.
    let lp = LinearProgram::minimize(vec![0.0, 0.0])
        .with_constraint(Constraint::ge(vec![1.0, 1.0], 3.0))
        .with_box(0.0, 1.0);
    assert_eq!(simplex::solve(&lp).unwrap(), LpOutcome::Infeasible);
}

#[test]
fn simplex_detects_infeasible_equalities() {
    let lp = LinearProgram::minimize(vec![0.0, 0.0])
        .with_constraints([
            Constraint::eq(vec![1.0, 1.0], 1.0),
            Constraint::eq(vec![1.0, 1.0], 2.0),
        ])
        .with_box(0.0, 10.0);
    assert_eq!(simplex::solve(&lp).unwrap(), LpOutcome::Infeasible);
}

// ---------------------------------------------------------------------
// Simplex: unbounded objectives
// ---------------------------------------------------------------------

#[test]
fn simplex_detects_unbounded_free_variable() {
    // Minimize -x with x free and unconstrained.
    let lp = LinearProgram::minimize(vec![-1.0, 0.0]);
    assert_eq!(simplex::solve(&lp).unwrap(), LpOutcome::Unbounded);
}

#[test]
fn simplex_detects_unbounded_ray_despite_constraints() {
    // y <= 5 does not bound the descent direction of -x.
    let lp = LinearProgram::minimize(vec![-1.0, 0.0])
        .with_constraint(Constraint::le(vec![0.0, 1.0], 5.0))
        .with_bound(0, 0.0, f64::INFINITY)
        .with_bound(1, 0.0, f64::INFINITY);
    assert_eq!(simplex::solve(&lp).unwrap(), LpOutcome::Unbounded);
}

#[test]
fn bounded_box_prevents_unboundedness() {
    let lp = LinearProgram::minimize(vec![-1.0, 0.0]).with_box(0.0, 2.0);
    match simplex::solve(&lp).unwrap() {
        LpOutcome::Optimal { x, value } => {
            assert!((x[0] - 2.0).abs() < 1e-9);
            assert!((value + 2.0).abs() < 1e-9);
        }
        other => panic!("expected optimum, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Simplex: degeneracy
// ---------------------------------------------------------------------

#[test]
fn simplex_survives_degenerate_vertex() {
    // Four constraints meet at (1, 1): a degenerate optimal vertex with
    // redundant rows — the classic cycling trap for naive pivoting.
    let lp = LinearProgram::minimize(vec![-1.0, -1.0])
        .with_constraints([
            Constraint::le(vec![1.0, 0.0], 1.0),
            Constraint::le(vec![0.0, 1.0], 1.0),
            Constraint::le(vec![1.0, 1.0], 2.0),
            Constraint::le(vec![2.0, 2.0], 4.0),
        ])
        .with_box(0.0, 10.0);
    match simplex::solve(&lp).unwrap() {
        LpOutcome::Optimal { x, value } => {
            assert!(
                (value + 2.0).abs() < 1e-7,
                "optimum should be -2, got {value}"
            );
            assert!((x[0] - 1.0).abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
        }
        other => panic!("expected optimum, got {other:?}"),
    }
}

#[test]
fn simplex_handles_duplicate_rows() {
    let row = Constraint::le(vec![1.0, 1.0], 1.0);
    let lp = LinearProgram::minimize(vec![-1.0, 0.0])
        .with_constraints(vec![row.clone(), row.clone(), row])
        .with_box(0.0, 1.0);
    match simplex::solve(&lp).unwrap() {
        LpOutcome::Optimal { x, value } => {
            assert!((value + 1.0).abs() < 1e-7);
            assert!((x[0] - 1.0).abs() < 1e-7);
        }
        other => panic!("expected optimum, got {other:?}"),
    }
}

#[test]
fn simplex_handles_zero_width_box() {
    // lo == hi pins every variable; the only question is feasibility.
    let lp = LinearProgram::minimize(vec![1.0, -1.0])
        .with_constraint(Constraint::le(vec![1.0, 1.0], 2.0))
        .with_box(0.5, 0.5);
    match simplex::solve(&lp).unwrap() {
        LpOutcome::Optimal { x, value } => {
            assert!((x[0] - 0.5).abs() < 1e-9 && (x[1] - 0.5).abs() < 1e-9);
            assert!(value.abs() < 1e-9);
        }
        other => panic!("expected optimum, got {other:?}"),
    }
}

#[test]
fn simplex_honours_equality_rows() {
    let lp = LinearProgram::minimize(vec![1.0, 0.0])
        .with_constraint(Constraint::eq(vec![1.0, 1.0], 1.0))
        .with_box(0.0, 1.0);
    match simplex::solve(&lp).unwrap() {
        LpOutcome::Optimal { x, value } => {
            assert!(value.abs() < 1e-9, "x should be driven to 0");
            assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
        }
        other => panic!("expected optimum, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Simplex: malformed programs
// ---------------------------------------------------------------------

#[test]
fn simplex_rejects_arity_mismatch() {
    let lp = LinearProgram::minimize(vec![1.0, 1.0])
        .with_constraint(Constraint::le(vec![1.0, 2.0, 3.0], 1.0));
    assert_eq!(
        simplex::solve(&lp),
        Err(LpError::DimensionMismatch {
            expected: 2,
            found: 3
        })
    );
}

#[test]
fn simplex_rejects_nan() {
    let lp = LinearProgram::minimize(vec![f64::NAN, 1.0]).with_box(0.0, 1.0);
    assert_eq!(simplex::solve(&lp), Err(LpError::NotANumber));

    let lp = LinearProgram::minimize(vec![1.0, 1.0])
        .with_constraint(Constraint::le(vec![1.0, f64::NAN], 1.0))
        .with_box(0.0, 1.0);
    assert_eq!(simplex::solve(&lp), Err(LpError::NotANumber));
}

// ---------------------------------------------------------------------
// Seidel: edge cases and cross-checks
// ---------------------------------------------------------------------

#[test]
fn seidel_detects_infeasibility() {
    let cs = vec![
        Constraint::le(vec![1.0, 0.0], 0.2),
        Constraint::ge(vec![1.0, 0.0], 0.8),
    ];
    assert_eq!(
        solve_seidel(&cs, &[1.0, 1.0], 0.0, 1.0, 7).unwrap(),
        SeidelOutcome::Infeasible
    );
}

#[test]
fn seidel_splits_equality_rows() {
    let cs = vec![Constraint::eq(vec![1.0, 1.0], 1.0)];
    match solve_seidel(&cs, &[1.0, 0.0], 0.0, 1.0, 7).unwrap() {
        SeidelOutcome::Optimal(x) => {
            assert!(x[0].abs() < 1e-7, "x should be driven to 0, got {x:?}");
            assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
        }
        SeidelOutcome::Infeasible => panic!("feasible system"),
    }
}

#[test]
fn seidel_rejects_invalid_input() {
    assert!(solve_seidel(&[], &[], 0.0, 1.0, 1).is_none());
    assert!(solve_seidel(&[], &[1.0], 1.0, 0.0, 1).is_none());
    assert!(solve_seidel(&[], &[f64::NAN], 0.0, 1.0, 1).is_none());
    assert!(solve_seidel(&[], &[1.0, 1.0], f64::NEG_INFINITY, 1.0, 1).is_none());
    let bad_arity = vec![Constraint::le(vec![1.0], 0.5)];
    assert!(solve_seidel(&bad_arity, &[1.0, 1.0], 0.0, 1.0, 1).is_none());
}

#[test]
fn seidel_agrees_with_simplex_on_degenerate_vertex() {
    let cs = vec![
        Constraint::le(vec![1.0, 0.0], 1.0),
        Constraint::le(vec![0.0, 1.0], 1.0),
        Constraint::le(vec![1.0, 1.0], 2.0),
    ];
    let obj = [-1.0, -1.0];
    let lp = LinearProgram::minimize(obj.to_vec())
        .with_constraints(cs.clone())
        .with_box(0.0, 10.0);
    let LpOutcome::Optimal { value, .. } = simplex::solve(&lp).unwrap() else {
        panic!("simplex should find the optimum");
    };
    for seed in [1u64, 2, 3, 99] {
        match solve_seidel(&cs, &obj, 0.0, 10.0, seed).unwrap() {
            SeidelOutcome::Optimal(x) => {
                let sv = obj.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>();
                assert!((sv - value).abs() < 1e-6, "seed {seed}: {sv} vs {value}");
            }
            SeidelOutcome::Infeasible => panic!("feasible system"),
        }
    }
}

#[test]
fn seidel_is_deterministic_per_seed() {
    let cs = vec![Constraint::le(vec![1.0, 2.0], 2.0)];
    let a = solve_seidel(&cs, &[-1.0, -1.0], 0.0, 5.0, 42).unwrap();
    let b = solve_seidel(&cs, &[-1.0, -1.0], 0.0, 5.0, 42).unwrap();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Feasibility probes
// ---------------------------------------------------------------------

#[test]
fn feasible_point_satisfies_all_rows() {
    let cs = vec![
        Constraint::ge(vec![1.0, 1.0], 0.5),
        Constraint::le(vec![1.0, -1.0], 0.1),
    ];
    let p = feasible_point(&cs, 2, 0.0, 1.0).unwrap();
    assert!(cs.iter().all(|c| c.satisfied(&p, 1e-7)));
    assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
}

#[test]
fn interior_point_rejects_sliver_but_accepts_slab() {
    // Zero-width sliver: feasible yet no interior.
    let sliver = vec![
        Constraint::le(vec![1.0, 0.0], 0.5),
        Constraint::ge(vec![1.0, 0.0], 0.5),
    ];
    assert!(is_feasible(&sliver, 2, 0.0, 1.0));
    assert!(interior_point(&sliver, 2, 0.0, 1.0).is_none());

    // Widen by 2e-3 and an interior point exists with ~1e-3 margin.
    let slab = vec![
        Constraint::le(vec![1.0, 0.0], 0.501),
        Constraint::ge(vec![1.0, 0.0], 0.499),
    ];
    let ip = interior_point(&slab, 2, 0.0, 1.0).unwrap();
    assert!(ip.margin > 1e-4, "margin {}", ip.margin);
    assert!(slab.iter().all(|c| c.satisfied(&ip.point, 1e-9)));
}

#[test]
fn chebyshev_margin_is_scale_invariant() {
    // The same halfplane written at two scales must give one geometry:
    // normalization happens on the constraint normals.
    let a = chebyshev_center(&[Constraint::le(vec![1.0, 1.0], 1.0)], 2, 0.0, 1.0).unwrap();
    let b = chebyshev_center(&[Constraint::le(vec![100.0, 100.0], 100.0)], 2, 0.0, 1.0).unwrap();
    assert!((a.margin - b.margin).abs() < 1e-7);
    assert!((a.point[0] - b.point[0]).abs() < 1e-7);
    assert!((a.point[1] - b.point[1]).abs() < 1e-7);
}

#[test]
fn empty_constraint_set_on_degenerate_box() {
    // lo == hi: the box is a single point, still feasible.
    let p = feasible_point(&[], 3, 0.25, 0.25).unwrap();
    assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-9));
    // ...but has no interior.
    assert!(interior_point(&[], 3, 0.25, 0.25).is_none());
}
