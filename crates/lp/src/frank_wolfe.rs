//! Frank–Wolfe (conditional gradient) minimization of a smooth objective
//! over a polytope, with **away steps**.
//!
//! MDBASELINE (Algorithm 6 of the paper) must solve, for every satisfactory
//! region `R` of the arrangement, the non-linear program
//!
//! ```text
//!   minimize   θ_angle(Θ, Θ_query)      (Equation 10)
//!   subject to Θ ∈ R                     (linear half-spaces + angle box)
//! ```
//!
//! The paper delegates this to `scipy.optimize`; we use Frank–Wolfe, which
//! only needs a *linear* oracle over the feasible region — exactly what the
//! [`crate::simplex`] provides. Plain Frank–Wolfe zig-zags with `O(1/k)`
//! error when the optimum sits on a face of the polytope (the common case
//! here: the closest point of a region to an outside query is on the
//! region's boundary), so the implementation keeps the visited vertices as
//! an *active atom set* and takes **away steps** (Guélat–Marcotte): when
//! the steepest remaining descent is to move away from a bad atom rather
//! than toward a new one, weight is transferred off that atom. Away-step
//! Frank–Wolfe converges linearly on polytopes for the objectives used
//! here.
//!
//! The angular distance is smooth and convex in the neighbourhoods that
//! matter (regions of the arrangement are small relative to the curvature
//! of the sphere), and every result is validated downstream against the
//! true fairness oracle, so a local optimum can never produce an *unfair*
//! suggestion — only a slightly conservative distance.

use crate::problem::{Constraint, LinearProgram, LpOutcome};
use crate::simplex::solve;

/// Options for [`minimize_over_polytope`].
#[derive(Debug, Clone, Copy)]
pub struct FwOptions {
    /// Maximum number of Frank–Wolfe iterations.
    pub max_iters: usize,
    /// Stop when the Frank–Wolfe duality gap `∇f·(x − s)` drops below this.
    pub gap_tol: f64,
    /// Relative step size for numeric gradients.
    pub grad_step: f64,
    /// Enable away steps (linear convergence on faces). Disable to get the
    /// textbook algorithm — kept for the ablation benchmark.
    pub away_steps: bool,
}

impl Default for FwOptions {
    fn default() -> Self {
        FwOptions {
            max_iters: 200,
            gap_tol: 1e-10,
            grad_step: 1e-6,
            away_steps: true,
        }
    }
}

/// Result of a Frank–Wolfe run.
#[derive(Debug, Clone)]
pub struct FwResult {
    /// The final iterate (always feasible).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of iterations performed.
    pub iters: usize,
    /// Final duality gap (0 when converged exactly or the region is a point).
    pub gap: f64,
}

/// An atom of the convex decomposition `x = Σ αᵢ aᵢ` maintained for away
/// steps.
struct Atom {
    point: Vec<f64>,
    weight: f64,
}

/// Minimize `f` over `{x ∈ [lo,hi]^n : constraints}` starting from the
/// feasible point `start`.
///
/// `f` must be finite on the feasible set. Returns `None` if `start` has the
/// wrong arity or the linear oracle ever fails (empty region).
pub fn minimize_over_polytope<F>(
    f: F,
    constraints: &[Constraint],
    lo: f64,
    hi: f64,
    start: &[f64],
    opts: &FwOptions,
) -> Option<FwResult>
where
    F: Fn(&[f64]) -> f64,
{
    let n = start.len();
    if n == 0 {
        return None;
    }
    let mut x = start.to_vec();
    let mut grad = vec![0.0; n];
    let mut value = f(&x);
    // `f` is contractually finite on the feasible set; a NaN/infinite
    // objective at the (feasible) start point — e.g. a degenerate
    // zero-norm direction fed into an angular-distance objective —
    // would otherwise poison every gradient, comparator, and line
    // search downstream. Fail structurally instead.
    if !value.is_finite() {
        return None;
    }
    let mut gap = f64::INFINITY;
    let mut iters = 0;
    // Active atoms: x is always Σ αᵢ aᵢ with αᵢ ≥ 0, Σ αᵢ = 1. The start
    // point is itself a valid (non-vertex) atom.
    let mut atoms: Vec<Atom> = vec![Atom {
        point: x.clone(),
        weight: 1.0,
    }];

    for it in 0..opts.max_iters {
        iters = it + 1;
        numeric_gradient(&f, &x, opts.grad_step, &mut grad);

        // Linear oracle: s = argmin_{s ∈ P} ∇f·s
        let lp = LinearProgram::minimize(grad.clone())
            .with_constraints(constraints.iter().cloned())
            .with_box(lo, hi);
        let s = match solve(&lp) {
            Ok(LpOutcome::Optimal { x: s, .. }) => s,
            _ => return None,
        };

        gap = dot_diff(&grad, &x, &s);
        if gap <= opts.gap_tol {
            break;
        }

        // Away atom: the active atom the gradient most wants to leave.
        let away = if opts.away_steps {
            atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| a.weight > 1e-15)
                // `total_cmp`, not `partial_cmp().unwrap_or(Equal)`: a
                // NaN gradient dot product (degenerate objective near
                // the boundary) must not silently misorder the scan —
                // under the total order NaN sorts deterministically
                // instead of equating with everything.
                .max_by(|(_, a), (_, b)| dot(&grad, &a.point).total_cmp(&dot(&grad, &b.point)))
                .map(|(i, _)| i)
        } else {
            None
        };
        let away_gap = away
            .map(|i| dot_diff(&grad, &atoms[i].point, &x))
            .unwrap_or(f64::NEG_INFINITY);

        if away_gap > gap && atoms.len() > 1 {
            // Away step: move from the bad atom v through x.
            let v = away.expect("away_gap finite implies an away atom");
            let alpha_v = atoms[v].weight;
            let gamma_max = alpha_v / (1.0 - alpha_v).max(1e-15);
            let v_point = atoms[v].point.clone();
            let gamma = golden_section(
                |g| {
                    let p: Vec<f64> = x
                        .iter()
                        .zip(&v_point)
                        .map(|(xi, vi)| xi + g * (xi - vi))
                        .collect();
                    f(&p)
                },
                0.0,
                gamma_max,
                48,
            );
            if gamma <= 1e-15 {
                break;
            }
            for (xi, vi) in x.iter_mut().zip(&v_point) {
                *xi += gamma * (*xi - vi);
            }
            // Reweight: αᵢ ← (1+γ)αᵢ, α_v ← (1+γ)α_v − γ.
            for (i, a) in atoms.iter_mut().enumerate() {
                a.weight *= 1.0 + gamma;
                if i == v {
                    a.weight -= gamma;
                }
            }
            atoms.retain(|a| a.weight > 1e-15); // drop step
        } else {
            // Frank–Wolfe step toward the new vertex s.
            let gamma = golden_section(
                |g| {
                    let p: Vec<f64> = x
                        .iter()
                        .zip(&s)
                        .map(|(xi, si)| xi + g * (si - xi))
                        .collect();
                    f(&p)
                },
                0.0,
                1.0,
                48,
            );
            if gamma <= 1e-15 {
                break;
            }
            for (xi, si) in x.iter_mut().zip(&s) {
                *xi += gamma * (*si - *xi);
            }
            if gamma >= 1.0 - 1e-12 {
                atoms.clear();
                atoms.push(Atom {
                    point: s.clone(),
                    weight: 1.0,
                });
            } else {
                for a in &mut atoms {
                    a.weight *= 1.0 - gamma;
                }
                merge_atom(&mut atoms, &s, gamma);
            }
        }

        let new_value = f(&x);
        let stalled = (value - new_value).abs() < opts.gap_tol * 1e-2;
        value = new_value;
        if stalled && !opts.away_steps {
            break;
        }
        if stalled && opts.away_steps && gap < 1e-6 {
            break;
        }
    }

    Some(FwResult {
        value: f(&x),
        x,
        iters,
        gap,
    })
}

/// Add weight `w` to atom `p`, merging with an existing equal atom.
fn merge_atom(atoms: &mut Vec<Atom>, p: &[f64], w: f64) {
    for a in atoms.iter_mut() {
        if a.point.iter().zip(p).all(|(x, y)| (x - y).abs() <= 1e-12) {
            a.weight += w;
            return;
        }
    }
    atoms.push(Atom {
        point: p.to_vec(),
        weight: w,
    });
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `g · (a − b)`
fn dot_diff(g: &[f64], a: &[f64], b: &[f64]) -> f64 {
    g.iter()
        .zip(a.iter().zip(b))
        .map(|(gi, (ai, bi))| gi * (ai - bi))
        .sum()
}

/// Central-difference numeric gradient.
fn numeric_gradient<F: Fn(&[f64]) -> f64>(f: &F, x: &[f64], h: f64, out: &mut [f64]) {
    let mut probe = x.to_vec();
    for j in 0..x.len() {
        let step = h * (1.0 + x[j].abs());
        probe[j] = x[j] + step;
        let fp = f(&probe);
        probe[j] = x[j] - step;
        let fm = f(&probe);
        probe[j] = x[j];
        out[j] = (fp - fm) / (2.0 * step);
    }
}

/// Golden-section search for the minimum of a unimodal `g` on `[a, b]`.
fn golden_section<G: Fn(f64) -> f64>(g: G, mut a: f64, mut b: f64, iters: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (orig_a, orig_b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut gc = g(c);
    let mut gd = g(d);
    for _ in 0..iters {
        if gc < gd {
            b = d;
            d = c;
            gd = gc;
            c = b - INV_PHI * (b - a);
            gc = g(c);
        } else {
            a = c;
            c = d;
            gc = gd;
            d = a + INV_PHI * (b - a);
            gd = g(d);
        }
    }
    let mid = 0.5 * (a + b);
    // Endpoints matter when the optimum is at the boundary of the range.
    let mut best = mid;
    let mut best_v = g(mid);
    for cand in [orig_a, a, b, orig_b] {
        let v = g(cand);
        if v < best_v {
            best_v = v;
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq_dist_to(target: &'static [f64]) -> impl Fn(&[f64]) -> f64 {
        move |x: &[f64]| {
            x.iter()
                .zip(target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        }
    }

    #[test]
    fn degenerate_objective_fails_structurally() {
        // An angular-distance-style objective is NaN at the zero-norm
        // direction. Started there, the solver must return None instead
        // of panicking or silently iterating on NaN gradients.
        let angle_to = |x: &[f64]| {
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            (x[0] / norm).acos()
        };
        for away_steps in [false, true] {
            let r = minimize_over_polytope(
                angle_to,
                &[],
                0.0,
                1.0,
                &[0.0, 0.0],
                &FwOptions {
                    away_steps,
                    ..FwOptions::default()
                },
            );
            assert!(r.is_none(), "NaN start objective must fail structurally");
        }
    }

    #[test]
    fn nan_inducing_objective_mid_run_terminates() {
        // The objective goes NaN away from the feasible region's face
        // (norm can vanish along probe directions). The comparator's
        // total order must keep the away-atom scan deterministic and the
        // solver terminating.
        let partial_nan = |x: &[f64]| {
            let s = x[0] + x[1];
            if s < 0.05 {
                f64::NAN
            } else {
                (x[0] - 0.8) * (x[0] - 0.8) + (x[1] - 0.2) * (x[1] - 0.2)
            }
        };
        let r = minimize_over_polytope(
            partial_nan,
            &[],
            0.0,
            1.0,
            &[0.5, 0.5],
            &FwOptions {
                away_steps: true,
                ..FwOptions::default()
            },
        );
        // Whatever the outcome, it must be reached without panicking and
        // any returned iterate must be feasible.
        if let Some(r) = r {
            assert!(r.x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn unconstrained_box_minimum_interior() {
        // min ||x − (0.3, 0.7)||² over the unit box: optimum is the target.
        let r = minimize_over_polytope(
            sq_dist_to(&[0.3, 0.7]),
            &[],
            0.0,
            1.0,
            &[0.9, 0.1],
            &FwOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.7).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn projection_onto_halfspace() {
        // Target (1,1) outside x + y ≤ 1 → projection (0.5, 0.5).
        let cs = vec![Constraint::le(vec![1.0, 1.0], 1.0)];
        let r = minimize_over_polytope(
            sq_dist_to(&[1.0, 1.0]),
            &cs,
            0.0,
            1.0,
            &[0.1, 0.1],
            &FwOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 0.5).abs() < 5e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 5e-3, "{:?}", r.x);
        assert!(r.x[0] + r.x[1] <= 1.0 + 1e-9);
    }

    #[test]
    fn away_steps_beat_vanilla_on_face_optimum() {
        // Optimum on a face, query outside: vanilla FW zig-zags; away-step
        // FW must land (much) closer for the same iteration budget.
        let cs = vec![Constraint::ge(vec![1.0, 0.0], 1.0)];
        let target: &[f64] = &[0.2, 0.3];
        let opts_away = FwOptions {
            max_iters: 120,
            ..FwOptions::default()
        };
        let opts_vanilla = FwOptions {
            away_steps: false,
            max_iters: 120,
            ..FwOptions::default()
        };
        let away = minimize_over_polytope(
            sq_dist_to(target),
            &cs,
            0.0,
            std::f64::consts::FRAC_PI_2,
            &[1.3, 0.3],
            &opts_away,
        )
        .unwrap();
        let vanilla = minimize_over_polytope(
            sq_dist_to(target),
            &cs,
            0.0,
            std::f64::consts::FRAC_PI_2,
            &[1.3, 0.3],
            &opts_vanilla,
        )
        .unwrap();
        // True optimum: (1.0, 0.3).
        assert!((away.x[0] - 1.0).abs() < 1e-4, "{:?}", away.x);
        assert!((away.x[1] - 0.3).abs() < 1e-4, "{:?}", away.x);
        assert!(away.value <= vanilla.value + 1e-12);
    }

    #[test]
    fn stays_feasible_throughout() {
        let cs = vec![
            Constraint::le(vec![1.0, 2.0], 1.5),
            Constraint::ge(vec![1.0, -1.0], -0.5),
        ];
        let r = minimize_over_polytope(
            sq_dist_to(&[2.0, 2.0]),
            &cs,
            0.0,
            1.0,
            &[0.0, 0.0],
            &FwOptions::default(),
        )
        .unwrap();
        for c in &cs {
            assert!(c.satisfied(&r.x, 1e-7), "{c} at {:?}", r.x);
        }
    }

    #[test]
    fn already_optimal_converges_immediately() {
        let r = minimize_over_polytope(
            sq_dist_to(&[0.0, 0.0]),
            &[],
            0.0,
            1.0,
            &[0.0, 0.0],
            &FwOptions::default(),
        )
        .unwrap();
        assert!(r.value < 1e-12);
        assert!(r.iters <= 2);
    }

    #[test]
    fn golden_section_finds_quadratic_minimum() {
        let g = |t: f64| (t - 0.37) * (t - 0.37);
        let t = golden_section(g, 0.0, 1.0, 60);
        assert!((t - 0.37).abs() < 1e-6);
    }

    #[test]
    fn golden_section_endpoint_minimum() {
        let g = |t: f64| t; // minimum at a = 0
        let t = golden_section(g, 0.0, 1.0, 60);
        assert!(t < 1e-6);
    }

    #[test]
    fn nonquadratic_objective() {
        // Smooth non-quadratic objective: cosine-like bowl.
        let f = |x: &[f64]| 1.0 - (x[0].cos() * x[1].cos());
        let r =
            minimize_over_polytope(f, &[], 0.2, 1.0, &[0.9, 0.9], &FwOptions::default()).unwrap();
        // Minimum of the bowl on the box is at the lower corner (0.2, 0.2).
        assert!((r.x[0] - 0.2).abs() < 1e-3);
        assert!((r.x[1] - 0.2).abs() < 1e-3);
    }

    #[test]
    fn point_region_is_a_fixed_point() {
        // Equality-pinched region: nothing to optimize, start returned.
        let cs = vec![
            Constraint::ge(vec![1.0, 0.0], 0.7),
            Constraint::le(vec![1.0, 0.0], 0.7),
            Constraint::ge(vec![0.0, 1.0], 0.7),
            Constraint::le(vec![0.0, 1.0], 0.7),
        ];
        let r = minimize_over_polytope(
            sq_dist_to(&[0.1, 0.1]),
            &cs,
            0.0,
            1.0,
            &[0.7, 0.7],
            &FwOptions::default(),
        )
        .unwrap();
        assert!((r.x[0] - 0.7).abs() < 1e-9);
        assert!((r.x[1] - 0.7).abs() < 1e-9);
    }
}
