//! # fairrank-lp
//!
//! Self-contained linear-programming and convex-optimization kernels used by
//! the fair-ranking index construction of Asudeh et al. (SIGMOD 2019).
//!
//! The paper relies on `scipy.optimize` for two sub-problems:
//!
//! 1. **Region feasibility / witness points** — "does a convex region in the
//!    angle coordinate system contain a point?" and "give me a point strictly
//!    inside it" (used by SATREGIONS, AT⁺, MARKCELL, ATC⁺).
//! 2. **Closest point in a region** — the non-linear program solved per
//!    satisfactory region by MDBASELINE (minimize *angular* distance to the
//!    query subject to the region's linear constraints).
//!
//! This crate provides both from scratch:
//!
//! * [`simplex::solve`] — a dense two-phase primal simplex with Bland's rule
//!   anti-cycling fallback, supporting `≤` / `≥` / `=` rows and per-variable
//!   bounds.
//! * [`feasibility`] — feasibility tests, witness points and Chebyshev-style
//!   strict interior points built on the simplex.
//! * [`frank_wolfe`] — a Frank–Wolfe (conditional gradient) minimizer for
//!   smooth objectives over polytopes, using the simplex as its linear
//!   oracle; this is the NLP engine behind MDBASELINE.
//! * [`seidel`] — Seidel's randomized incremental LP, expected *O(m)* for the
//!   fixed (small) dimensionalities of the angle space; used as a fast path
//!   and cross-checked against the simplex in tests.
//!
//! The problem sizes here are characteristic of the paper's workload: very
//! few variables (`d − 1 ≤ 5` angles) and up to a few thousand constraints
//! (ordering-exchange hyperplanes cutting a region).

pub mod feasibility;
pub mod frank_wolfe;
pub mod problem;
pub mod seidel;
pub mod simplex;

pub use feasibility::{
    chebyshev_center, feasible_point, interior_point, is_feasible, InteriorPoint,
};
pub use frank_wolfe::{minimize_over_polytope, FwOptions, FwResult};
pub use problem::{Constraint, LinearProgram, LpError, LpOutcome, Rel};
pub use simplex::solve;

/// Default numeric tolerance used across the crate for pivot selection,
/// feasibility slack and constraint satisfaction checks.
///
/// The angle coordinate system is confined to `[0, π/2]^(d−1)` and item
/// attributes are min–max normalized, so all coefficient magnitudes are
/// O(1); a fixed absolute tolerance is appropriate.
pub const EPS: f64 = 1e-9;
