//! Dense two-phase primal simplex.
//!
//! Sized for the paper's workload: a handful of variables (the `d − 1 ≤ 5`
//! angle coordinates) and tens to a few thousand constraints (the
//! ordering-exchange hyperplanes bounding a region of the arrangement).
//! A dense tableau with full artificial-variable Phase 1 is entirely
//! adequate at this scale and is easy to make robust.
//!
//! Anti-cycling: Dantzig's rule is used initially; after a grace budget the
//! solver switches to Bland's rule, which guarantees termination.

use crate::problem::{LinearProgram, LpError, LpOutcome, Rel};
use crate::EPS;

/// Solve a [`LinearProgram`].
///
/// Returns [`LpOutcome::Optimal`] with the optimal point and objective value
/// (in the problem's own sense — maximization problems report the maximum),
/// [`LpOutcome::Infeasible`] or [`LpOutcome::Unbounded`].
///
/// # Errors
///
/// [`LpError::DimensionMismatch`] if a constraint row has the wrong arity,
/// [`LpError::NotANumber`] on NaN input, [`LpError::IterationLimit`] if the
/// pivot budget is exhausted (should not happen with Bland's rule; kept as a
/// defensive bound).
pub fn solve(lp: &LinearProgram) -> Result<LpOutcome, LpError> {
    validate(lp)?;
    let std = StandardForm::build(lp);
    let mut tab = Tableau::new(&std);

    // Phase 1: minimize the sum of artificials.
    let mut phase1_cost = vec![0.0; tab.ncols];
    for j in std.artificial_cols.clone() {
        phase1_cost[j] = 1.0;
    }
    match tab.optimize(&phase1_cost, None)? {
        PhaseResult::Unbounded => {
            // The phase-1 objective is bounded below by 0; unbounded here
            // indicates numerical trouble, treat as infeasible.
            return Ok(LpOutcome::Infeasible);
        }
        PhaseResult::Optimal => {}
    }
    if tab.objective_value(&phase1_cost) > 1e-7 {
        return Ok(LpOutcome::Infeasible);
    }
    tab.drive_out_artificials(&std.artificial_cols);

    // Phase 2: original objective over y-space, artificials barred.
    match tab.optimize(&std.cost, Some(&std.artificial_cols))? {
        PhaseResult::Unbounded => return Ok(LpOutcome::Unbounded),
        PhaseResult::Optimal => {}
    }

    let y = tab.primal_solution();
    let x = std.recover(&y);
    let value = lp.objective_value(&x);
    Ok(LpOutcome::Optimal { x, value })
}

fn validate(lp: &LinearProgram) -> Result<(), LpError> {
    if lp.objective.len() != lp.n || lp.bounds.len() != lp.n {
        return Err(LpError::DimensionMismatch {
            expected: lp.n,
            found: lp.objective.len().min(lp.bounds.len()),
        });
    }
    if lp.objective.iter().any(|v| v.is_nan()) {
        return Err(LpError::NotANumber);
    }
    for c in &lp.constraints {
        if c.a.len() != lp.n {
            return Err(LpError::DimensionMismatch {
                expected: lp.n,
                found: c.a.len(),
            });
        }
        if c.b.is_nan() || c.a.iter().any(|v| v.is_nan()) {
            return Err(LpError::NotANumber);
        }
    }
    for &(lo, hi) in &lp.bounds {
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::NotANumber);
        }
    }
    Ok(())
}

/// How each original variable maps into the non-negative `y` space.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + y[col]`
    Shifted { col: usize, lo: f64 },
    /// `x = hi − y[col]`
    Mirrored { col: usize, hi: f64 },
    /// `x = y[pos] − y[neg]` (free variable split)
    Split { pos: usize, neg: usize },
}

/// The LP rewritten as `min c·y  s.t.  A y = b, y ≥ 0, b ≥ 0`, with slack,
/// surplus and artificial columns appended.
struct StandardForm {
    /// Equality rows `A y = b` (row-major), including slack/surplus columns
    /// but *not* artificial columns (those are an identity appended by the
    /// tableau).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    /// Phase-2 cost over all tableau columns (artificials get 0 but are
    /// barred from entering).
    cost: Vec<f64>,
    /// Column range of the artificial variables.
    artificial_cols: std::ops::Range<usize>,
    var_map: Vec<VarMap>,
}

impl StandardForm {
    fn build(lp: &LinearProgram) -> StandardForm {
        let n = lp.n;
        // 1. Map variables into non-negative space.
        let mut var_map = Vec::with_capacity(n);
        let mut ncols = 0usize;
        // Extra rows for two-sided finite bounds.
        let mut bound_rows: Vec<(usize, f64)> = Vec::new(); // (col, ub on y)
        for &(lo, hi) in &lp.bounds {
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    var_map.push(VarMap::Shifted { col: ncols, lo });
                    bound_rows.push((ncols, hi - lo));
                    ncols += 1;
                }
                (true, false) => {
                    var_map.push(VarMap::Shifted { col: ncols, lo });
                    ncols += 1;
                }
                (false, true) => {
                    var_map.push(VarMap::Mirrored { col: ncols, hi });
                    ncols += 1;
                }
                (false, false) => {
                    var_map.push(VarMap::Split {
                        pos: ncols,
                        neg: ncols + 1,
                    });
                    ncols += 2;
                }
            }
        }
        let n_structural = ncols;

        // 2. Rewrite constraint rows over y and collect (row, rel, rhs).
        let m = lp.constraints.len() + bound_rows.len();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rels: Vec<Rel> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        for c in &lp.constraints {
            let mut row = vec![0.0; n_structural];
            let mut b = c.b;
            for (j, &aij) in c.a.iter().enumerate() {
                if aij == 0.0 {
                    continue;
                }
                match var_map[j] {
                    VarMap::Shifted { col, lo } => {
                        row[col] += aij;
                        b -= aij * lo;
                    }
                    VarMap::Mirrored { col, hi } => {
                        row[col] -= aij;
                        b -= aij * hi;
                    }
                    VarMap::Split { pos, neg } => {
                        row[pos] += aij;
                        row[neg] -= aij;
                    }
                }
            }
            rows.push(row);
            rels.push(c.rel);
            rhs.push(b);
        }
        for &(col, ub) in &bound_rows {
            let mut row = vec![0.0; n_structural];
            row[col] = 1.0;
            rows.push(row);
            rels.push(Rel::Le);
            rhs.push(ub);
        }

        // 3. Slack / surplus columns, then force b ≥ 0.
        let n_slack = rels.iter().filter(|r| !matches!(r, Rel::Eq)).count();
        let total_pre_art = n_structural + n_slack;
        let mut slack_at = n_structural;
        for (i, rel) in rels.iter().enumerate() {
            rows[i].resize(total_pre_art, 0.0);
            match rel {
                Rel::Le => {
                    rows[i][slack_at] = 1.0;
                    slack_at += 1;
                }
                Rel::Ge => {
                    rows[i][slack_at] = -1.0;
                    slack_at += 1;
                }
                Rel::Eq => {}
            }
        }
        for i in 0..rows.len() {
            if rhs[i] < 0.0 {
                rhs[i] = -rhs[i];
                for v in &mut rows[i] {
                    *v = -*v;
                }
            }
        }

        // 4. Phase-2 cost vector over y (minimization sense).
        let sign = if lp.maximize { -1.0 } else { 1.0 };
        let n_rows = rows.len();
        let mut cost = vec![0.0; total_pre_art + n_rows];
        for (j, &cj) in lp.objective.iter().enumerate() {
            match var_map[j] {
                VarMap::Shifted { col, .. } => cost[col] += sign * cj,
                VarMap::Mirrored { col, .. } => cost[col] -= sign * cj,
                VarMap::Split { pos, neg } => {
                    cost[pos] += sign * cj;
                    cost[neg] -= sign * cj;
                }
            }
        }

        StandardForm {
            rows,
            rhs,
            cost,
            artificial_cols: total_pre_art..total_pre_art + n_rows,
            var_map,
        }
    }

    /// Map a `y`-space solution back to the original variables.
    fn recover(&self, y: &[f64]) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|vm| match *vm {
                VarMap::Shifted { col, lo } => lo + y[col],
                VarMap::Mirrored { col, hi } => hi - y[col],
                VarMap::Split { pos, neg } => y[pos] - y[neg],
            })
            .collect()
    }
}

enum PhaseResult {
    Optimal,
    Unbounded,
}

/// Dense simplex tableau with an explicit basis.
struct Tableau {
    m: usize,
    ncols: usize,
    /// `m × ncols`, row-major. Artificial columns form the initial identity.
    a: Vec<f64>,
    b: Vec<f64>,
    basis: Vec<usize>,
}

impl Tableau {
    fn new(std: &StandardForm) -> Tableau {
        let m = std.rows.len();
        let ncols = std.artificial_cols.end;
        let mut a = vec![0.0; m * ncols];
        for (i, row) in std.rows.iter().enumerate() {
            a[i * ncols..i * ncols + row.len()].copy_from_slice(row);
            a[i * ncols + std.artificial_cols.start + i] = 1.0;
        }
        Tableau {
            m,
            ncols,
            a,
            b: std.rhs.clone(),
            basis: (std.artificial_cols.start..std.artificial_cols.end).collect(),
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.ncols + j]
    }

    fn objective_value(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&bi, &xi)| cost[bi] * xi)
            .sum()
    }

    /// Reduced costs `r_j = c_j − c_B · T_j` for all columns.
    fn reduced_costs(&self, cost: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(cost);
        for (i, &bi) in self.basis.iter().enumerate() {
            let cb = cost[bi];
            if cb == 0.0 {
                continue;
            }
            let row = &self.a[i * self.ncols..(i + 1) * self.ncols];
            for (rj, &tij) in out.iter_mut().zip(row) {
                *rj -= cb * tij;
            }
        }
    }

    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.at(r, c);
        debug_assert!(piv.abs() > 1e-12);
        let inv = 1.0 / piv;
        for j in 0..self.ncols {
            self.a[r * self.ncols + j] *= inv;
        }
        self.b[r] *= inv;
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.at(i, c);
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = self.a.split_at_mut(r.max(i) * self.ncols);
            let (row_i, row_r) = if i < r {
                (
                    &mut head[i * self.ncols..(i + 1) * self.ncols],
                    &tail[..self.ncols],
                )
            } else {
                (
                    &mut tail[..self.ncols],
                    &head[r * self.ncols..(r + 1) * self.ncols],
                )
            };
            for (vi, &vr) in row_i.iter_mut().zip(row_r) {
                *vi -= factor * vr;
            }
            self.b[i] -= factor * self.b[r];
        }
        self.basis[r] = c;
    }

    /// Run simplex iterations for the given cost vector. Columns in
    /// `barred` (if any) may not enter the basis.
    fn optimize(
        &mut self,
        cost: &[f64],
        barred: Option<&std::ops::Range<usize>>,
    ) -> Result<PhaseResult, LpError> {
        let max_iters = 200 * (self.m + self.ncols) + 2000;
        let bland_after = 20 * (self.m + self.ncols) + 200;
        let mut reduced = Vec::with_capacity(self.ncols);
        for iter in 0..max_iters {
            let bland = iter > bland_after;
            self.reduced_costs(cost, &mut reduced);

            // Entering column.
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for (j, &rj) in reduced.iter().enumerate() {
                if let Some(bar) = barred {
                    if bar.contains(&j) {
                        continue;
                    }
                }
                if rj < -EPS {
                    if bland {
                        enter = Some(j);
                        break;
                    }
                    if rj < best {
                        best = rj;
                        enter = Some(j);
                    }
                }
            }
            let Some(c) = enter else {
                return Ok(PhaseResult::Optimal);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let tic = self.at(i, c);
                if tic > EPS {
                    let ratio = self.b[i] / tic;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return Ok(PhaseResult::Unbounded);
            };
            self.pivot(r, c);
        }
        Err(LpError::IterationLimit)
    }

    /// After Phase 1, remove any artificial variables still in the basis by
    /// pivoting on a non-artificial column of their row; rows that admit no
    /// such pivot are redundant and zeroed.
    fn drive_out_artificials(&mut self, artificials: &std::ops::Range<usize>) {
        for i in 0..self.m {
            if !artificials.contains(&self.basis[i]) {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..artificials.start {
                if self.at(i, j).abs() > 1e-7 {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(j) = pivot_col {
                self.pivot(i, j);
            }
            // else: redundant row; the artificial stays basic at value ~0,
            // harmless because its cost is zero and it is barred.
        }
    }

    fn primal_solution(&self) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        for (i, &bi) in self.basis.iter().enumerate() {
            y[bi] = self.b[i];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Constraint;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn maximize_2d_box() {
        // max x + y s.t. x ≤ 2, y ≤ 3, x,y ≥ 0 → 5 at (2,3)
        let lp = LinearProgram::maximize(vec![1.0, 1.0])
            .with_constraint(Constraint::le(vec![1.0, 0.0], 2.0))
            .with_constraint(Constraint::le(vec![0.0, 1.0], 3.0))
            .with_box(0.0, f64::INFINITY);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 5.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 3.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn classic_simplex_example() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0 → 36 at (2,6)
        let lp = LinearProgram::maximize(vec![3.0, 5.0])
            .with_constraint(Constraint::le(vec![1.0, 0.0], 4.0))
            .with_constraint(Constraint::le(vec![0.0, 2.0], 12.0))
            .with_constraint(Constraint::le(vec![3.0, 2.0], 18.0))
            .with_box(0.0, f64::INFINITY);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 36.0);
                assert_close(x[0], 2.0);
                assert_close(x[1], 6.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn minimize_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3 → at (7,3): 23
        let lp = LinearProgram::minimize(vec![2.0, 3.0])
            .with_constraint(Constraint::ge(vec![1.0, 1.0], 10.0))
            .with_bound(0, 2.0, f64::INFINITY)
            .with_bound(1, 3.0, f64::INFINITY);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 23.0);
                assert_close(x[0], 7.0);
                assert_close(x[1], 3.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 4, x,y ≥ 0 → (0,2): 2
        let lp = LinearProgram::minimize(vec![1.0, 1.0])
            .with_constraint(Constraint::eq(vec![1.0, 2.0], 4.0))
            .with_box(0.0, f64::INFINITY);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 2.0);
                assert_close(x[1], 2.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let lp = LinearProgram::minimize(vec![1.0])
            .with_constraint(Constraint::le(vec![1.0], 1.0))
            .with_constraint(Constraint::ge(vec![1.0], 2.0))
            .with_box(0.0, f64::INFINITY);
        assert_eq!(solve(&lp).unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let lp = LinearProgram::maximize(vec![1.0, 0.0]).with_box(0.0, f64::INFINITY);
        assert_eq!(solve(&lp).unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variables_split() {
        // min x s.t. x ≥ -5 with free x: → -5
        let lp =
            LinearProgram::minimize(vec![1.0]).with_constraint(Constraint::ge(vec![1.0], -5.0));
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, -5.0);
                assert_close(x[0], -5.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn mirrored_upper_bound_only() {
        // max x with x ≤ 7 (no lower bound), objective pushes up.
        let lp = LinearProgram::maximize(vec![1.0]).with_bound(0, f64::NEG_INFINITY, 7.0);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, 7.0);
                assert_close(x[0], 7.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn two_sided_bounds_respected() {
        // min -x - 2y over box [1,2]×[0,1] with x + y ≤ 2.5 → (1.5, 1): -3.5
        let lp = LinearProgram::minimize(vec![-1.0, -2.0])
            .with_constraint(Constraint::le(vec![1.0, 1.0], 2.5))
            .with_bound(0, 1.0, 2.0)
            .with_bound(1, 0.0, 1.0);
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { x, value } => {
                assert_close(value, -3.5);
                assert_close(x[0], 1.5);
                assert_close(x[1], 1.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_ties_terminate() {
        // Heavily degenerate: many redundant rows through the same vertex.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]).with_box(0.0, f64::INFINITY);
        for k in 1..=8 {
            let kf = k as f64;
            lp = lp.with_constraint(Constraint::le(vec![kf, kf], 2.0 * kf));
        }
        match solve(&lp).unwrap() {
            LpOutcome::Optimal { value, .. } => assert_close(value, 2.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn nan_rejected() {
        let lp = LinearProgram::minimize(vec![f64::NAN]);
        assert_eq!(solve(&lp).unwrap_err(), LpError::NotANumber);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let lp =
            LinearProgram::minimize(vec![1.0, 2.0]).with_constraint(Constraint::le(vec![1.0], 0.0));
        assert!(matches!(
            solve(&lp).unwrap_err(),
            LpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn angle_box_feasibility_shape() {
        // The shape used throughout fairrank: is there a θ in [0, π/2]^2 with
        // h·θ ≤ 1 and g·θ ≥ 1?
        let half_pi = std::f64::consts::FRAC_PI_2;
        let lp = LinearProgram::maximize(vec![0.0, 0.0])
            .with_constraint(Constraint::le(vec![2.0, 0.5], 1.0))
            .with_constraint(Constraint::ge(vec![0.2, 1.0], 1.0))
            .with_box(0.0, half_pi);
        let out = solve(&lp).unwrap();
        let x = out.point().expect("feasible").to_vec();
        assert!(2.0 * x[0] + 0.5 * x[1] <= 1.0 + 1e-7);
        assert!(0.2 * x[0] + x[1] >= 1.0 - 1e-7);
        assert!(x.iter().all(|&v| (-1e-9..=half_pi + 1e-9).contains(&v)));
    }
}
