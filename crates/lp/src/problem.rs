//! Problem types shared by the solvers: linear constraints, linear programs
//! and solver outcomes.

use std::fmt;

/// Relation of a linear constraint row `a·x REL b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

impl Rel {
    /// Flip the direction of an inequality (equality is unchanged).
    #[must_use]
    pub fn flipped(self) -> Rel {
        match self {
            Rel::Le => Rel::Ge,
            Rel::Ge => Rel::Le,
            Rel::Eq => Rel::Eq,
        }
    }
}

/// A single linear constraint `a·x REL b` over `a.len()` variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient vector `a`.
    pub a: Vec<f64>,
    /// Relation between `a·x` and `b`.
    pub rel: Rel,
    /// Right-hand side `b`.
    pub b: f64,
}

impl Constraint {
    /// `a·x ≤ b`.
    #[must_use]
    pub fn le(a: Vec<f64>, b: f64) -> Self {
        Constraint { a, rel: Rel::Le, b }
    }

    /// `a·x ≥ b`.
    #[must_use]
    pub fn ge(a: Vec<f64>, b: f64) -> Self {
        Constraint { a, rel: Rel::Ge, b }
    }

    /// `a·x = b`.
    #[must_use]
    pub fn eq(a: Vec<f64>, b: f64) -> Self {
        Constraint { a, rel: Rel::Eq, b }
    }

    /// Evaluate the left-hand side `a·x`.
    #[must_use]
    pub fn lhs(&self, x: &[f64]) -> f64 {
        dot(&self.a, x)
    }

    /// Signed violation of the constraint at `x`: positive means violated by
    /// that amount, `0.0` means satisfied (slack is not reported).
    #[must_use]
    pub fn violation(&self, x: &[f64]) -> f64 {
        let v = self.lhs(x);
        match self.rel {
            Rel::Le => (v - self.b).max(0.0),
            Rel::Ge => (self.b - v).max(0.0),
            Rel::Eq => (v - self.b).abs(),
        }
    }

    /// Whether `x` satisfies the constraint within tolerance `eps`.
    #[must_use]
    pub fn satisfied(&self, x: &[f64], eps: f64) -> bool {
        self.violation(x) <= eps
    }

    /// The same constraint expressed with a `≤` relation (equalities are
    /// returned as-is). `≥` rows are negated.
    #[must_use]
    pub fn normalized_le(&self) -> Constraint {
        match self.rel {
            Rel::Le | Rel::Eq => self.clone(),
            Rel::Ge => Constraint {
                a: self.a.iter().map(|v| -v).collect(),
                rel: Rel::Le,
                b: -self.b,
            },
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.a.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:.4}·x{i}")?;
        }
        let rel = match self.rel {
            Rel::Le => "<=",
            Rel::Ge => ">=",
            Rel::Eq => "=",
        };
        write!(f, " {rel} {:.4}", self.b)
    }
}

/// A linear program over `n` variables.
///
/// Variables may carry finite or infinite bounds; the solvers convert to
/// standard form internally.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub n: usize,
    /// Objective coefficient vector of length `n`.
    pub objective: Vec<f64>,
    /// `true` to maximize the objective, `false` to minimize it.
    pub maximize: bool,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
    /// Per-variable `(lower, upper)` bounds; use `f64::NEG_INFINITY` /
    /// `f64::INFINITY` for unbounded sides.
    pub bounds: Vec<(f64, f64)>,
}

impl LinearProgram {
    /// A minimization problem with free variables and no constraints.
    #[must_use]
    pub fn minimize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        LinearProgram {
            n,
            objective,
            maximize: false,
            constraints: Vec::new(),
            bounds: vec![(f64::NEG_INFINITY, f64::INFINITY); n],
        }
    }

    /// A maximization problem with free variables and no constraints.
    #[must_use]
    pub fn maximize(objective: Vec<f64>) -> Self {
        let mut lp = Self::minimize(objective);
        lp.maximize = true;
        lp
    }

    /// Add a constraint row (builder style).
    #[must_use]
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Add several constraint rows (builder style).
    #[must_use]
    pub fn with_constraints<I: IntoIterator<Item = Constraint>>(mut self, cs: I) -> Self {
        self.constraints.extend(cs);
        self
    }

    /// Set the bounds for variable `j` (builder style).
    #[must_use]
    pub fn with_bound(mut self, j: usize, lo: f64, hi: f64) -> Self {
        self.bounds[j] = (lo, hi);
        self
    }

    /// Set identical bounds `[lo, hi]` on every variable (builder style).
    #[must_use]
    pub fn with_box(mut self, lo: f64, hi: f64) -> Self {
        for b in &mut self.bounds {
            *b = (lo, hi);
        }
        self
    }

    /// Evaluate the objective at `x` (respecting the max/min sense is the
    /// caller's business — this is always `c·x`).
    #[must_use]
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        dot(&self.objective, x)
    }

    /// Whether `x` satisfies all constraints and bounds within `eps`.
    #[must_use]
    pub fn is_feasible_point(&self, x: &[f64], eps: f64) -> bool {
        if x.len() != self.n {
            return false;
        }
        for (j, &(lo, hi)) in self.bounds.iter().enumerate() {
            if x[j] < lo - eps || x[j] > hi + eps {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.satisfied(x, eps))
    }
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Optimal point.
        x: Vec<f64>,
        /// Objective value `c·x` at the optimum.
        value: f64,
    },
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// The optimal point if one exists.
    #[must_use]
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// `true` when an optimum was found.
    #[must_use]
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal { .. })
    }
}

/// Errors raised by the solvers for malformed inputs or numerical failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A constraint row has the wrong arity.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Found number of coefficients.
        found: usize,
    },
    /// A coefficient, bound or right-hand side is NaN.
    NotANumber,
    /// The simplex failed to converge within its iteration budget.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "constraint arity {found} does not match variable count {expected}"
                )
            }
            LpError::NotANumber => write!(f, "NaN coefficient in linear program"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Dense dot product (panics on length mismatch in debug builds only).
#[inline]
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_violation_le() {
        let c = Constraint::le(vec![1.0, 2.0], 4.0);
        assert_eq!(c.violation(&[1.0, 1.0]), 0.0);
        assert!((c.violation(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(c.satisfied(&[1.0, 1.5], 1e-9));
        assert!(!c.satisfied(&[1.0, 1.6], 1e-9));
    }

    #[test]
    fn constraint_violation_ge() {
        let c = Constraint::ge(vec![1.0, -1.0], 0.5);
        assert_eq!(c.violation(&[2.0, 1.0]), 0.0);
        assert!((c.violation(&[1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constraint_violation_eq() {
        let c = Constraint::eq(vec![1.0, 1.0], 1.0);
        assert_eq!(c.violation(&[0.5, 0.5]), 0.0);
        assert!((c.violation(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_le_flips_ge() {
        let c = Constraint::ge(vec![1.0, -2.0], 3.0).normalized_le();
        assert_eq!(c.rel, Rel::Le);
        assert_eq!(c.a, vec![-1.0, 2.0]);
        assert_eq!(c.b, -3.0);
    }

    #[test]
    fn rel_flip() {
        assert_eq!(Rel::Le.flipped(), Rel::Ge);
        assert_eq!(Rel::Ge.flipped(), Rel::Le);
        assert_eq!(Rel::Eq.flipped(), Rel::Eq);
    }

    #[test]
    fn lp_builder_and_feasibility() {
        let lp = LinearProgram::maximize(vec![1.0, 1.0])
            .with_constraint(Constraint::le(vec![1.0, 0.0], 2.0))
            .with_constraint(Constraint::le(vec![0.0, 1.0], 3.0))
            .with_box(0.0, 10.0);
        assert!(lp.is_feasible_point(&[2.0, 3.0], 1e-9));
        assert!(!lp.is_feasible_point(&[2.1, 0.0], 1e-9));
        assert!(!lp.is_feasible_point(&[-0.1, 0.0], 1e-9));
        assert!((lp.objective_value(&[2.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let c = Constraint::le(vec![1.0, 2.0], 4.0);
        let s = format!("{c}");
        assert!(s.contains("<="));
        assert!(s.contains("x1"));
    }
}
