//! Seidel's randomized incremental linear programming.
//!
//! The LP instances in this workload have a *fixed, tiny* dimension (the
//! `d − 1 ≤ 5` angle coordinates) and a potentially large constraint count
//! (ordering-exchange hyperplanes). Seidel's algorithm runs in expected
//! `O(m · n!)` time — linear in the number of constraints `m` for fixed
//! dimension `n` — which makes it the natural fast path for the region
//! feasibility tests that dominate SATREGIONS and MARKCELL (the `Lp(n²)`
//! term of the paper's Theorem 3).
//!
//! The implementation requires a finite bounding box (always available: the
//! angle space is `[0, π/2]^{d−1}`), which guarantees bounded subproblems.
//! Equality rows are split into opposing inequalities. Results are
//! cross-checked against the two-phase simplex in the test suite, including
//! a randomized property test.

use crate::problem::{Constraint, Rel};
use crate::EPS;

/// Outcome of a Seidel solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SeidelOutcome {
    /// Optimal point minimizing the objective.
    Optimal(Vec<f64>),
    /// Empty feasible set.
    Infeasible,
}

/// Minimize `objective · x` over `{x ∈ [lo,hi]^n : constraints}` using
/// Seidel's randomized incremental algorithm.
///
/// `lo` and `hi` must be finite with `lo ≤ hi`. The solve is deterministic
/// for a given `seed` (the random permutation drives only performance, not
/// the result). Returns `None` for invalid input (non-finite box, NaN or
/// arity mismatch); callers should then fall back to [`crate::simplex`].
#[must_use]
pub fn solve_seidel(
    constraints: &[Constraint],
    objective: &[f64],
    lo: f64,
    hi: f64,
    seed: u64,
) -> Option<SeidelOutcome> {
    let n = objective.len();
    if n == 0 || !lo.is_finite() || !hi.is_finite() || lo > hi {
        return None;
    }
    if objective.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut rows: Vec<Row> = Vec::with_capacity(constraints.len() * 2);
    for c in constraints {
        if c.a.len() != n || c.b.is_nan() || c.a.iter().any(|v| v.is_nan()) {
            return None;
        }
        match c.rel {
            Rel::Le => rows.push(Row {
                a: c.a.clone(),
                b: c.b,
            }),
            Rel::Ge => rows.push(Row {
                a: c.a.iter().map(|v| -v).collect(),
                b: -c.b,
            }),
            Rel::Eq => {
                rows.push(Row {
                    a: c.a.clone(),
                    b: c.b,
                });
                rows.push(Row {
                    a: c.a.iter().map(|v| -v).collect(),
                    b: -c.b,
                });
            }
        }
    }
    let mut rng = XorShift64::new(seed);
    let lows = vec![lo; n];
    let highs = vec![hi; n];
    Some(recurse(&mut rows, objective, &lows, &highs, &mut rng))
}

struct Row {
    a: Vec<f64>,
    b: f64,
}

/// Tiny deterministic RNG — only the permutation quality matters.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

fn recurse(
    rows: &mut [Row],
    c: &[f64],
    lows: &[f64],
    highs: &[f64],
    rng: &mut XorShift64,
) -> SeidelOutcome {
    let n = c.len();
    if n == 1 {
        return base_1d(rows, c[0], lows[0], highs[0]);
    }

    // Fisher–Yates shuffle for the expected-linear bound.
    for i in (1..rows.len()).rev() {
        let j = rng.below(i + 1);
        rows.swap(i, j);
    }

    // Start from the box optimum.
    let mut x: Vec<f64> = (0..n)
        .map(|j| if c[j] > 0.0 { lows[j] } else { highs[j] })
        .collect();

    for i in 0..rows.len() {
        let viol = dot(&rows[i].a, &x) - rows[i].b;
        if viol <= EPS {
            continue;
        }
        // The optimum of rows[..=i] lies on the boundary of rows[i].
        let (k, ak) = match pivot_column(&rows[i].a) {
            Some(p) => p,
            None => {
                // Degenerate row 0·x ≤ b with b < 0: infeasible.
                return SeidelOutcome::Infeasible;
            }
        };
        let (sub_rows, sub_c, sub_lo, sub_hi) =
            project(&rows[..i], &rows[i], k, ak, c, lows, highs);
        let mut sub_rows = sub_rows;
        match recurse(&mut sub_rows, &sub_c, &sub_lo, &sub_hi, rng) {
            SeidelOutcome::Infeasible => return SeidelOutcome::Infeasible,
            SeidelOutcome::Optimal(y) => {
                // Lift back: insert x_k from the boundary equation.
                let mut lifted = Vec::with_capacity(n);
                let mut yi = y.iter();
                for j in 0..n {
                    if j == k {
                        lifted.push(0.0); // placeholder
                    } else {
                        lifted.push(*yi.next().expect("arity"));
                    }
                }
                let mut s = rows[i].b;
                for (j, lj) in lifted.iter().enumerate() {
                    if j != k {
                        s -= rows[i].a[j] * lj;
                    }
                }
                lifted[k] = s / ak;
                x = lifted;
            }
        }
    }
    SeidelOutcome::Optimal(x)
}

/// Largest-magnitude coefficient for numerically stable elimination.
fn pivot_column(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &v) in a.iter().enumerate() {
        if v.abs() > EPS && best.is_none_or(|(_, bv): (usize, f64)| v.abs() > bv.abs()) {
            best = Some((j, v));
        }
    }
    best
}

/// Substitute `x_k = (b − Σ_{j≠k} a_j x_j) / a_k` (from the tight row) into
/// the earlier rows, the objective and the box bounds of `x_k`.
#[allow(clippy::type_complexity)]
fn project(
    earlier: &[Row],
    tight: &Row,
    k: usize,
    ak: f64,
    c: &[f64],
    lows: &[f64],
    highs: &[f64],
) -> (Vec<Row>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = c.len();
    let reduce = |a: &[f64], b: f64, coeff_k: f64| -> Row {
        let scale = coeff_k / ak;
        let mut na = Vec::with_capacity(n - 1);
        for (j, (&aj, &tj)) in a.iter().zip(&tight.a).enumerate() {
            if j != k {
                na.push(aj - scale * tj);
            }
        }
        Row {
            a: na,
            b: b - scale * tight.b,
        }
    };

    let mut rows: Vec<Row> = Vec::with_capacity(earlier.len() + 2);
    for r in earlier {
        rows.push(reduce(&r.a, r.b, r.a[k]));
    }
    // Box bounds on x_k become two general constraints in the subspace:
    //   lo_k ≤ (b − Σ a_j x_j)/a_k ≤ hi_k
    // ⇔  sign-adjusted linear rows over the remaining variables.
    {
        // (b − Σ_{j≠k} a_j x_j)/a_k ≤ hi_k  ⇔  −Σ a_j x_j · sign ≤ ...
        // expressed by reducing the pseudo-rows x_k ≤ hi_k and −x_k ≤ −lo_k.
        let mut unit = vec![0.0; n];
        unit[k] = 1.0;
        rows.push(reduce(&unit, highs[k], 1.0));
        unit[k] = -1.0;
        rows.push(reduce(&unit, -lows[k], -1.0));
    }

    let scale = c[k] / ak;
    let mut sub_c = Vec::with_capacity(n - 1);
    let mut sub_lo = Vec::with_capacity(n - 1);
    let mut sub_hi = Vec::with_capacity(n - 1);
    for j in 0..n {
        if j != k {
            sub_c.push(c[j] - scale * tight.a[j]);
            sub_lo.push(lows[j]);
            sub_hi.push(highs[j]);
        }
    }
    (rows, sub_c, sub_lo, sub_hi)
}

fn base_1d(rows: &[Row], c: f64, lo: f64, hi: f64) -> SeidelOutcome {
    let mut lo = lo;
    let mut hi = hi;
    for r in rows {
        let a = r.a[0];
        if a > EPS {
            hi = hi.min(r.b / a);
        } else if a < -EPS {
            lo = lo.max(r.b / a);
        } else if r.b < -EPS {
            return SeidelOutcome::Infeasible;
        }
    }
    if lo > hi + EPS {
        return SeidelOutcome::Infeasible;
    }
    let x = if c > 0.0 { lo } else { hi };
    SeidelOutcome::Optimal(vec![x.clamp(lo.min(hi), hi.max(lo))])
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, LpOutcome};
    use crate::simplex::solve;

    fn optimal(out: SeidelOutcome) -> Vec<f64> {
        match out {
            SeidelOutcome::Optimal(x) => x,
            SeidelOutcome::Infeasible => panic!("unexpected infeasible"),
        }
    }

    #[test]
    fn box_only_minimum() {
        let x = optimal(solve_seidel(&[], &[1.0, -1.0], 0.0, 2.0, 7).unwrap());
        assert!((x[0] - 0.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_halfspace_binds() {
        // min −x −y over unit box with x + y ≤ 1 → value −1 on the segment.
        let cs = vec![Constraint::le(vec![1.0, 1.0], 1.0)];
        let x = optimal(solve_seidel(&cs, &[-1.0, -1.0], 0.0, 1.0, 3).unwrap());
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7, "{x:?}");
    }

    #[test]
    fn infeasible_pair() {
        let cs = vec![
            Constraint::le(vec![1.0, 0.0], 0.2),
            Constraint::ge(vec![1.0, 0.0], 0.8),
        ];
        assert_eq!(
            solve_seidel(&cs, &[0.0, 0.0], 0.0, 1.0, 5).unwrap(),
            SeidelOutcome::Infeasible
        );
    }

    #[test]
    fn equality_row_supported() {
        // min x over x + y = 1 in the unit box → x = 0, y = 1.
        let cs = vec![Constraint::eq(vec![1.0, 1.0], 1.0)];
        let x = optimal(solve_seidel(&cs, &[1.0, 0.0], 0.0, 1.0, 11).unwrap());
        assert!(x[0].abs() < 1e-7);
        assert!((x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn three_dimensional() {
        // min −x−y−z over x+y+z ≤ 1.5 in the unit box.
        let cs = vec![Constraint::le(vec![1.0, 1.0, 1.0], 1.5)];
        let x = optimal(solve_seidel(&cs, &[-1.0, -1.0, -1.0], 0.0, 1.0, 13).unwrap());
        assert!((x.iter().sum::<f64>() - 1.5).abs() < 1e-7, "{x:?}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve_seidel(&[], &[1.0], f64::NEG_INFINITY, 1.0, 1).is_none());
        assert!(solve_seidel(&[], &[f64::NAN], 0.0, 1.0, 1).is_none());
        assert!(solve_seidel(&[], &[], 0.0, 1.0, 1).is_none());
        let bad = vec![Constraint::le(vec![1.0], 0.5)];
        assert!(solve_seidel(&bad, &[1.0, 1.0], 0.0, 1.0, 1).is_none());
    }

    #[test]
    fn agrees_with_simplex_on_random_instances() {
        // Deterministic pseudo-random cross-check against the simplex.
        let mut rng = XorShift64::new(0xfa1c_4a11);
        let mut fr = || (rng.next_u64() % 2000) as f64 / 1000.0 - 1.0;
        for case in 0..60 {
            let n = 2 + (case % 3);
            let m = 1 + (case % 7);
            let mut cs = Vec::new();
            for _ in 0..m {
                let a: Vec<f64> = (0..n).map(|_| fr()).collect();
                let b = fr();
                cs.push(Constraint::le(a, b));
            }
            let obj: Vec<f64> = (0..n).map(|_| fr()).collect();

            let seidel = solve_seidel(&cs, &obj, 0.0, 1.0, 17 + case as u64).unwrap();
            let lp = LinearProgram::minimize(obj.clone())
                .with_constraints(cs.iter().cloned())
                .with_box(0.0, 1.0);
            let simplex = solve(&lp).unwrap();
            match (seidel, simplex) {
                (SeidelOutcome::Infeasible, LpOutcome::Infeasible) => {}
                (SeidelOutcome::Optimal(xs), LpOutcome::Optimal { value, .. }) => {
                    let vs: f64 = xs.iter().zip(&obj).map(|(a, b)| a * b).sum();
                    assert!(
                        (vs - value).abs() < 1e-5,
                        "case {case}: seidel {vs} vs simplex {value}"
                    );
                    for c in &cs {
                        assert!(c.satisfied(&xs, 1e-6), "case {case}: {c} at {xs:?}");
                    }
                }
                (a, b) => panic!("case {case}: seidel {a:?} vs simplex {b:?}"),
            }
        }
    }
}
