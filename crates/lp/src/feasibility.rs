//! Feasibility queries over constraint sets: witness points and strict
//! interior points.
//!
//! SATREGIONS and the arrangement tree ask two questions per region of the
//! hyperplane arrangement:
//!
//! * *does a hyperplane pass through this region?* — feasibility of the
//!   region's constraints plus one equality row;
//! * *give me a function inside this region to hand to the fairness oracle* —
//!   a point that is strictly inside, so that the induced item ordering is
//!   unambiguous (a point on an ordering-exchange boundary scores two items
//!   equally).
//!
//! The strict-interior query is answered with a Chebyshev-style LP: maximize
//! the margin `t` such that every `≤` constraint keeps distance `t·‖a‖` from
//! its boundary.

use crate::problem::{Constraint, LinearProgram, LpOutcome, Rel};
use crate::simplex::solve;
use crate::EPS;

/// A strict interior point of a constraint set, with its margin.
#[derive(Debug, Clone, PartialEq)]
pub struct InteriorPoint {
    /// The witness point.
    pub point: Vec<f64>,
    /// The Euclidean margin to the nearest constraint boundary (Chebyshev
    /// radius, capped at 1.0 so unbounded regions do not blow up).
    pub margin: f64,
}

/// Whether the set `{x ∈ [lo,hi]^n : constraints}` is non-empty.
#[must_use]
pub fn is_feasible(constraints: &[Constraint], n: usize, lo: f64, hi: f64) -> bool {
    feasible_point(constraints, n, lo, hi).is_some()
}

/// A point of the set `{x ∈ [lo,hi]^n : constraints}`, if one exists.
///
/// The returned point satisfies every constraint within the crate tolerance
/// but may lie on constraint boundaries; use [`interior_point`] when a
/// strictly interior witness is needed.
#[must_use]
pub fn feasible_point(constraints: &[Constraint], n: usize, lo: f64, hi: f64) -> Option<Vec<f64>> {
    let lp = LinearProgram::minimize(vec![0.0; n])
        .with_constraints(constraints.iter().cloned())
        .with_box(lo, hi);
    match solve(&lp) {
        Ok(LpOutcome::Optimal { x, .. }) => Some(x),
        _ => None,
    }
}

/// A point strictly inside `{x ∈ [lo,hi]^n : constraints}` together with its
/// margin, or `None` when the region is empty **or has empty interior**
/// (lower-dimensional slivers are reported as `None` because `margin` would
/// be zero; callers that only need feasibility use [`feasible_point`]).
///
/// Equality constraints are honoured exactly (they carry no margin), so a
/// region constrained to a hyperplane can still produce a witness that is
/// interior *relative to the inequalities*.
#[must_use]
pub fn interior_point(
    constraints: &[Constraint],
    n: usize,
    lo: f64,
    hi: f64,
) -> Option<InteriorPoint> {
    chebyshev_center(constraints, n, lo, hi).filter(|ip| ip.margin > EPS)
}

/// The Chebyshev center of `{x ∈ [lo,hi]^n : constraints}`: the point
/// maximizing the minimum distance to the inequality boundaries (radius
/// capped at 1.0). Returns `None` only when the region is empty.
///
/// The box bounds participate as ordinary inequality rows so the center
/// stays away from the box walls too.
#[must_use]
pub fn chebyshev_center(
    constraints: &[Constraint],
    n: usize,
    lo: f64,
    hi: f64,
) -> Option<InteriorPoint> {
    // Variables: x_0..x_{n-1}, t  (t = margin).
    let mut lp_constraints: Vec<Constraint> = Vec::with_capacity(constraints.len() + 2 * n);
    for c in constraints {
        match c.rel {
            Rel::Eq => {
                let mut a = c.a.clone();
                a.push(0.0);
                lp_constraints.push(Constraint::eq(a, c.b));
            }
            Rel::Le | Rel::Ge => {
                let cle = c.normalized_le();
                let norm = cle.a.iter().map(|v| v * v).sum::<f64>().sqrt();
                let mut a = cle.a;
                a.push(norm);
                lp_constraints.push(Constraint::le(a, cle.b));
            }
        }
    }
    if lo.is_finite() {
        for j in 0..n {
            // −x_j + t ≤ −lo  ⇔  x_j ≥ lo + t
            let mut a = vec![0.0; n + 1];
            a[j] = -1.0;
            a[n] = 1.0;
            lp_constraints.push(Constraint::le(a, -lo));
        }
    }
    if hi.is_finite() {
        for j in 0..n {
            // x_j + t ≤ hi
            let mut a = vec![0.0; n + 1];
            a[j] = 1.0;
            a[n] = 1.0;
            lp_constraints.push(Constraint::le(a, hi));
        }
    }

    let mut objective = vec![0.0; n + 1];
    objective[n] = 1.0;
    let mut lp = LinearProgram::maximize(objective).with_constraints(lp_constraints);
    for j in 0..n {
        lp.bounds[j] = (
            if lo.is_finite() {
                lo
            } else {
                f64::NEG_INFINITY
            },
            if hi.is_finite() { hi } else { f64::INFINITY },
        );
    }
    // Cap the radius so unbounded regions still have a finite optimum.
    lp.bounds[n] = (0.0, 1.0);

    match solve(&lp) {
        Ok(LpOutcome::Optimal { x, value }) => {
            let point = x[..n].to_vec();
            Some(InteriorPoint {
                point,
                margin: value,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn feasible_box_only() {
        let p = feasible_point(&[], 3, 0.0, 1.0).unwrap();
        assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn infeasible_contradiction() {
        let cs = vec![
            Constraint::le(vec![1.0, 0.0], 0.2),
            Constraint::ge(vec![1.0, 0.0], 0.8),
        ];
        assert!(!is_feasible(&cs, 2, 0.0, 1.0));
        assert!(interior_point(&cs, 2, 0.0, 1.0).is_none());
    }

    #[test]
    fn chebyshev_center_of_unit_box() {
        let ip = chebyshev_center(&[], 2, 0.0, 1.0).unwrap();
        assert!((ip.margin - 0.5).abs() < 1e-6);
        assert!((ip.point[0] - 0.5).abs() < 1e-6);
        assert!((ip.point[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn interior_point_respects_halfspace() {
        // Triangle: x + y ≤ 1 in the unit box.
        let cs = vec![Constraint::le(vec![1.0, 1.0], 1.0)];
        let ip = interior_point(&cs, 2, 0.0, 1.0).unwrap();
        assert!(ip.margin > 0.1);
        assert!(ip.point[0] + ip.point[1] < 1.0 - ip.margin / 2.0);
    }

    #[test]
    fn sliver_region_has_no_interior() {
        // x ≤ 0.5 and x ≥ 0.5: feasible but zero-width.
        let cs = vec![
            Constraint::le(vec![1.0, 0.0], 0.5),
            Constraint::ge(vec![1.0, 0.0], 0.5),
        ];
        assert!(is_feasible(&cs, 2, 0.0, 1.0));
        assert!(interior_point(&cs, 2, 0.0, 1.0).is_none());
    }

    #[test]
    fn equality_constrained_interior() {
        // On the segment x + y = 1 within the box: Chebyshev center exists
        // with zero margin (equality rows carry no slack), so interior_point
        // filters it out but chebyshev_center still yields a witness.
        let cs = vec![Constraint::eq(vec![1.0, 1.0], 1.0)];
        let ip = chebyshev_center(&cs, 2, 0.0, 1.0).unwrap();
        assert!((ip.point[0] + ip.point[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn angle_box_region() {
        // A typical arrangement-region query in the angle space.
        let cs = vec![
            Constraint::ge(vec![0.9, 0.8], 1.0),
            Constraint::le(vec![2.0, 0.1], 1.0),
        ];
        let ip = interior_point(&cs, 2, 0.0, FRAC_PI_2).unwrap();
        assert!(cs.iter().all(|c| c.satisfied(&ip.point, 1e-9)));
        assert!(ip.margin > 0.0);
    }
}
