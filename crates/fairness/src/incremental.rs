//! Incremental (swap-aware) oracle evaluation.
//!
//! 2DRAYSWEEP walks the angle axis exchange by exchange; each exchange
//! swaps two *adjacent* items in the current ranking. For proportionality
//! oracles, such a swap changes the top-k composition only when it
//! straddles the k-boundary, so the verdict can be maintained in `O(1)` per
//! swap — turning the paper's `O(n² · O_n)` sweep into `O(n²)` after
//! sorting. The black-box path (re-invoking the oracle per sector) remains
//! available and is what the paper's Theorem 1 costs out; the bench suite
//! compares both.

use crate::proportionality::Proportionality;

/// An oracle evaluator that tracks a ranking and updates its verdict under
/// adjacent transpositions.
pub trait IncrementalOracle {
    /// Swap the items at ranking positions `pos` and `pos + 1`.
    ///
    /// # Panics
    /// May panic if `pos + 1` is out of range.
    fn swap_adjacent(&mut self, pos: usize);

    /// Swap the items at ranking positions `pos` and `pos + 1`, naming
    /// the items involved: `top` currently sits at `pos`, `bottom` at
    /// `pos + 1`. States that track per-item groups (proportionality)
    /// need the ids; the default forwards to
    /// [`swap_adjacent`](IncrementalOracle::swap_adjacent) for states
    /// that do not. This is the entry point external sweep drivers (the
    /// incremental index maintenance in `fairrank-core`) use.
    fn swap_adjacent_items(&mut self, pos: usize, top: u32, bottom: u32) {
        let _ = (top, bottom);
        self.swap_adjacent(pos);
    }

    /// Current verdict. Must equal
    /// [`FairnessOracle::is_satisfactory`](crate::FairnessOracle::is_satisfactory)
    /// on the tracked ranking at every step — the indexing machinery
    /// substitutes this for black-box calls.
    fn is_satisfactory(&self) -> bool;
}

/// Incremental state for one [`Proportionality`] constraint.
pub struct ProportionalityState<'a> {
    oracle: &'a Proportionality,
    /// Head counts per group among the top-k.
    counts: Vec<usize>,
    /// Number of groups currently violating their bounds.
    violations: usize,
}

impl<'a> ProportionalityState<'a> {
    /// Seed from a full ranking.
    #[must_use]
    pub fn new(oracle: &'a Proportionality, ranking: &[u32]) -> ProportionalityState<'a> {
        let counts = oracle.head_counts(ranking);
        let violations = counts
            .iter()
            .zip(oracle.bounds())
            .filter(|(&c, b)| c < b.min || c > b.max)
            .count();
        ProportionalityState {
            oracle,
            counts,
            violations,
        }
    }

    /// Apply the boundary-crossing part of a swap: item of group `out`
    /// leaves the top-k, item of group `enter` joins.
    fn cross_boundary(&mut self, out: u32, enter: u32) {
        if out == enter {
            return;
        }
        for (g, delta) in [(out as usize, -1isize), (enter as usize, 1isize)] {
            let b = &self.oracle.bounds()[g];
            let before_ok = self.counts[g] >= b.min && self.counts[g] <= b.max;
            self.counts[g] = (self.counts[g] as isize + delta) as usize;
            let after_ok = self.counts[g] >= b.min && self.counts[g] <= b.max;
            match (before_ok, after_ok) {
                (true, false) => self.violations += 1,
                (false, true) => self.violations -= 1,
                _ => {}
            }
        }
    }

    /// Handle a swap of ranking positions `pos`/`pos+1` given the groups of
    /// the item moving out of position `pos` (previously there) and the item
    /// moving into it.
    pub fn swap_with_groups(&mut self, pos: usize, group_at_pos: u32, group_below: u32) {
        // Only a swap across the k-boundary (positions k−1 and k) changes
        // the top-k multiset.
        if pos + 1 == self.oracle.k() {
            self.cross_boundary(group_at_pos, group_below);
        }
    }
}

/// A ranking paired with incremental oracle state — the object 2DRAYSWEEP
/// actually sweeps. Maintains the item-at-position array, the
/// position-of-item inverse, and any number of constraint states.
pub struct SweepState<'a> {
    ranking: Vec<u32>,
    position: Vec<u32>,
    states: Vec<ProportionalityState<'a>>,
}

impl<'a> SweepState<'a> {
    /// Seed from a ranking and a set of proportionality constraints.
    #[must_use]
    pub fn new(ranking: Vec<u32>, oracles: &[&'a Proportionality]) -> SweepState<'a> {
        let mut position = vec![0u32; ranking.len()];
        for (pos, &item) in ranking.iter().enumerate() {
            position[item as usize] = pos as u32;
        }
        let states = oracles
            .iter()
            .map(|o| ProportionalityState::new(o, &ranking))
            .collect();
        SweepState {
            ranking,
            position,
            states,
        }
    }

    /// Current ranking.
    #[must_use]
    pub fn ranking(&self) -> &[u32] {
        &self.ranking
    }

    /// Position of an item.
    #[must_use]
    pub fn position_of(&self, item: u32) -> usize {
        self.position[item as usize] as usize
    }

    /// Are items `a` and `b` adjacent in the current ranking?
    #[must_use]
    pub fn adjacent(&self, a: u32, b: u32) -> bool {
        self.position_of(a).abs_diff(self.position_of(b)) == 1
    }

    /// Swap two items that are currently adjacent, updating all constraint
    /// states in `O(constraints)`.
    ///
    /// # Panics
    /// If the items are not adjacent.
    pub fn swap_items(&mut self, a: u32, b: u32) {
        let pa = self.position_of(a);
        let pb = self.position_of(b);
        assert!(
            pa.abs_diff(pb) == 1,
            "swap_items requires adjacency: {a} at {pa}, {b} at {pb}"
        );
        let (top, bottom) = if pa < pb { (a, b) } else { (b, a) };
        let pos = pa.min(pb);
        for s in &mut self.states {
            s.swap_with_groups(pos, s.oracle.group_of(top), s.oracle.group_of(bottom));
        }
        self.ranking.swap(pos, pos + 1);
        self.position[top as usize] = (pos + 1) as u32;
        self.position[bottom as usize] = pos as u32;
    }

    /// Verdict across all constraints.
    #[must_use]
    pub fn is_satisfactory(&self) -> bool {
        self.states.iter().all(|s| s.violations == 0)
    }
}

impl IncrementalOracle for ProportionalityState<'_> {
    fn swap_adjacent(&mut self, _pos: usize) {
        unreachable!(
            "ProportionalityState needs item ids: drive it through \
             swap_adjacent_items (or SweepState)"
        );
    }

    fn swap_adjacent_items(&mut self, pos: usize, top: u32, bottom: u32) {
        self.swap_with_groups(pos, self.oracle.group_of(top), self.oracle.group_of(bottom));
    }

    fn is_satisfactory(&self) -> bool {
        self.violations == 0
    }
}

/// Conjunction of several proportionality states (FM2 incremental path).
pub struct ConjunctionState<'a> {
    states: Vec<ProportionalityState<'a>>,
}

impl<'a> ConjunctionState<'a> {
    /// Bundle states.
    #[must_use]
    pub fn new(states: Vec<ProportionalityState<'a>>) -> ConjunctionState<'a> {
        ConjunctionState { states }
    }
}

impl IncrementalOracle for ConjunctionState<'_> {
    fn swap_adjacent(&mut self, _pos: usize) {
        unreachable!(
            "ConjunctionState needs item ids: drive it through \
             swap_adjacent_items (or SweepState)"
        )
    }

    fn swap_adjacent_items(&mut self, pos: usize, top: u32, bottom: u32) {
        for s in &mut self.states {
            s.swap_adjacent_items(pos, top, bottom);
        }
    }

    fn is_satisfactory(&self) -> bool {
        self.states.iter().all(|s| s.violations == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FairnessOracle;
    use fairrank_datasets::TypeAttribute;

    fn attr(values: Vec<u32>, groups: usize) -> TypeAttribute {
        TypeAttribute {
            name: "g".into(),
            labels: (0..groups).map(|i| format!("g{i}")).collect(),
            values,
        }
    }

    #[test]
    fn state_matches_full_evaluation_after_swaps() {
        // 8 items, alternating groups; top-4 capped at 2 of group 0.
        let t = attr(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        let oracle = Proportionality::new(&t, 4).with_max_count(0, 2);
        let ranking: Vec<u32> = (0..8).collect();
        let mut sweep = SweepState::new(ranking.clone(), &[&oracle]);
        assert_eq!(
            sweep.is_satisfactory(),
            oracle.is_satisfactory(sweep.ranking())
        );
        // Perform a series of adjacent swaps and compare against the
        // black-box verdict after each.
        let swap_script = [(3u32, 4u32), (2, 4), (4, 1), (5, 3), (0, 4)];
        for &(a, b) in &swap_script {
            if sweep.adjacent(a, b) {
                sweep.swap_items(a, b);
                assert_eq!(
                    sweep.is_satisfactory(),
                    oracle.is_satisfactory(sweep.ranking()),
                    "divergence after swapping {a} and {b}: {:?}",
                    sweep.ranking()
                );
            }
        }
    }

    #[test]
    fn boundary_swap_changes_verdict() {
        // Top-2 capped at 1 of group 0. Ranking [0g0, 1g0, 2g1]: violating.
        let t = attr(vec![0, 0, 1], 2);
        let oracle = Proportionality::new(&t, 2).with_max_count(0, 1);
        let mut sweep = SweepState::new(vec![0, 1, 2], &[&oracle]);
        assert!(!sweep.is_satisfactory());
        // Swap positions 1/2 (items 1 and 2): top-2 becomes {0, 2} → ok.
        sweep.swap_items(1, 2);
        assert!(sweep.is_satisfactory());
        // Swap back.
        sweep.swap_items(1, 2);
        assert!(!sweep.is_satisfactory());
    }

    #[test]
    fn interior_swap_keeps_verdict() {
        let t = attr(vec![0, 0, 1, 1], 2);
        let oracle = Proportionality::new(&t, 2).with_max_count(0, 1);
        let mut sweep = SweepState::new(vec![0, 2, 1, 3], &[&oracle]);
        let before = sweep.is_satisfactory();
        // Swap positions 2/3 — entirely below the boundary.
        sweep.swap_items(1, 3);
        assert_eq!(sweep.is_satisfactory(), before);
    }

    #[test]
    #[should_panic(expected = "adjacency")]
    fn non_adjacent_swap_panics() {
        let t = attr(vec![0, 1, 0], 2);
        let oracle = Proportionality::new(&t, 2);
        let mut sweep = SweepState::new(vec![0, 1, 2], &[&oracle]);
        sweep.swap_items(0, 2);
    }

    #[test]
    fn multiple_constraints_fm2() {
        let ta = attr(vec![0, 0, 1, 1], 2);
        let tb = attr(vec![0, 1, 0, 1], 2);
        let oa = Proportionality::new(&ta, 2).with_max_count(0, 1);
        let ob = Proportionality::new(&tb, 2).with_max_count(0, 1);
        let mut sweep = SweepState::new(vec![0, 2, 1, 3], &[&oa, &ob]);
        // Top-2 = {0, 2}: a-groups {0,1} ok; b-groups {0,0} → violates b.
        assert!(!sweep.is_satisfactory());
        sweep.swap_items(2, 1); // positions 1/2 → top-2 = {0, 1}
                                // a-groups {0,0} violates now.
        assert!(!sweep.is_satisfactory());
    }

    #[test]
    fn trait_incremental_entry_point() {
        let t = attr(vec![0, 1, 0, 1], 2);
        let oracle = Proportionality::new(&t, 2).with_max_count(0, 1);
        let inc = oracle.incremental(&[0, 1, 2, 3]).unwrap();
        assert!(inc.is_satisfactory());
    }

    #[test]
    fn swap_adjacent_items_matches_blackbox_via_trait_object() {
        // External sweep drivers (the incremental index maintenance) hold
        // a `Box<dyn IncrementalOracle>` and drive it item-wise; its
        // verdict must track the black-box oracle exactly.
        let values: Vec<u32> = (0..16).map(|i| (i * 5 % 3) as u32).collect();
        let t = attr(values, 3);
        let oracle = Proportionality::new(&t, 5).with_max_count(0, 2);
        let mut ranking: Vec<u32> = (0..16).collect();
        let mut inc = oracle.incremental(&ranking).unwrap();
        let mut seed = 0xDEAD_BEEFu64;
        for step in 0..300 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let pos = (seed % 15) as usize;
            let (top, bottom) = (ranking[pos], ranking[pos + 1]);
            inc.swap_adjacent_items(pos, top, bottom);
            ranking.swap(pos, pos + 1);
            assert_eq!(
                inc.is_satisfactory(),
                oracle.is_satisfactory(&ranking),
                "trait-object divergence at step {step}"
            );
        }
    }

    #[test]
    fn conjunction_incremental_trait_object_tracks() {
        use crate::proportionality::Conjunction;
        let ta = attr(vec![0, 0, 1, 1, 0, 1], 2);
        let tb = attr(vec![0, 1, 0, 1, 0, 1], 2);
        let c = Conjunction::new()
            .and(Proportionality::new(&ta, 3).with_max_count(0, 2))
            .and(Proportionality::new(&tb, 2).with_max_count(0, 1));
        let mut ranking: Vec<u32> = (0..6).collect();
        let mut inc = c.incremental(&ranking).unwrap();
        for pos in [0usize, 2, 1, 4, 3, 2, 0] {
            let (top, bottom) = (ranking[pos], ranking[pos + 1]);
            inc.swap_adjacent_items(pos, top, bottom);
            ranking.swap(pos, pos + 1);
            assert_eq!(inc.is_satisfactory(), c.is_satisfactory(&ranking));
        }
    }

    #[test]
    fn exhaustive_random_swap_agreement() {
        // Drive long random swap sequences; the incremental verdict must
        // equal the black-box verdict at every step.
        let values: Vec<u32> = (0..20).map(|i| (i * 7 % 3) as u32).collect();
        let t = attr(values, 3);
        let oracle = Proportionality::new(&t, 6)
            .with_max_count(0, 3)
            .with_min_count(1, 1);
        let mut sweep = SweepState::new((0..20).collect(), &[&oracle]);
        let mut seed = 0x1234_5678u64;
        for step in 0..500 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let pos = (seed % 19) as usize;
            let a = sweep.ranking()[pos];
            let b = sweep.ranking()[pos + 1];
            sweep.swap_items(a, b);
            assert_eq!(
                sweep.is_satisfactory(),
                oracle.is_satisfactory(sweep.ranking()),
                "divergence at step {step}"
            );
        }
    }
}
