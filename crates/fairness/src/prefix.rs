//! Ranked group fairness over *every prefix* of the top-k, in the style
//! of FA*IR (Zehlike et al., CIKM 2017) — cited by the paper as \[32\].
//!
//! FA*IR requires that the proportion of protected-group members "in
//! every prefix of the ranking remains statistically above a given
//! minimum". This module implements that criterion as a
//! [`FairnessOracle`], which makes it directly usable by every indexing
//! algorithm in `fairrank-core` — the paper's black-box claim in action:
//! nothing in 2DRAYSWEEP / SATREGIONS / MARKCELL changes.
//!
//! The statistical test is the same shape FA*IR uses: for each prefix
//! length `i ≤ k`, the number of protected items must be at least
//! `m(i) = ⌈p·i⌉ − slack(i)`, where `slack(i)` widens with `√i` like a
//! normal approximation of the binomial test at significance `α`
//! (FA*IR's exact binomial tables reduce to this shape for the dataset
//! sizes used here).

use fairrank_datasets::TypeAttribute;

use crate::oracle::FairnessOracle;

/// FA*IR-style prefix proportionality: in every prefix of the top-k, the
/// protected group's count stays above a p-proportion lower bound.
#[derive(Debug, Clone)]
pub struct PrefixFairness {
    group_of: Vec<u32>,
    protected: u32,
    k: usize,
    p: f64,
    alpha_z: f64,
}

impl PrefixFairness {
    /// Require the protected group to hold at least proportion `p` of
    /// every prefix of the top-`k`, with a binomial-style tolerance at
    /// z-score `alpha_z` (0 = exact ⌈p·i⌉, 1.64 ≈ α = 0.05 one-sided).
    ///
    /// # Panics
    /// If `k == 0`, `p ∉ [0, 1]` or `alpha_z < 0`.
    #[must_use]
    pub fn new(attr: &TypeAttribute, protected: u32, k: usize, p: f64, alpha_z: f64) -> Self {
        assert!(k > 0, "top-k must be non-empty");
        assert!((0.0..=1.0).contains(&p), "p must be a proportion");
        assert!(alpha_z >= 0.0, "z-score must be non-negative");
        PrefixFairness {
            group_of: attr.values.clone(),
            protected,
            k,
            p,
            alpha_z,
        }
    }

    /// The minimum protected count required at prefix length `i` (1-based).
    #[must_use]
    pub fn min_protected_at(&self, i: usize) -> usize {
        let i_f = i as f64;
        let slack = self.alpha_z * (i_f * self.p * (1.0 - self.p)).sqrt();
        let need = (self.p * i_f - slack).ceil();
        need.max(0.0) as usize
    }

    /// The prefix-length bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl FairnessOracle for PrefixFairness {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        let k = self.k.min(ranking.len());
        let mut protected_seen = 0usize;
        for (idx, &item) in ranking.iter().take(k).enumerate() {
            if self.group_of[item as usize] == self.protected {
                protected_seen += 1;
            }
            if protected_seen < self.min_protected_at(idx + 1) {
                return false;
            }
        }
        true
    }

    fn describe(&self) -> String {
        format!(
            "FA*IR prefix fairness: protected group {} at proportion ≥ {:.2} in every prefix of the top-{} (z = {:.2})",
            self.protected, self.p, self.k, self.alpha_z
        )
    }

    fn top_k_bound(&self) -> Option<usize> {
        Some(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(values: Vec<u32>) -> TypeAttribute {
        TypeAttribute {
            name: "g".into(),
            labels: vec!["prot".into(), "other".into()],
            values,
        }
    }

    /// Ranking where the protected group (0) occupies the given positions.
    fn ranking_with_protected_at(n: usize, protected_pos: &[usize]) -> (TypeAttribute, Vec<u32>) {
        let mut values = vec![1u32; n];
        for &p in protected_pos {
            values[p] = 0;
        }
        let ranking: Vec<u32> = (0..n as u32).collect();
        (attr(values), ranking)
    }

    #[test]
    fn perfectly_alternating_passes_half() {
        let n = 20;
        let positions: Vec<usize> = (0..n).step_by(2).collect();
        let (a, ranking) = ranking_with_protected_at(n, &positions);
        let o = PrefixFairness::new(&a, 0, n, 0.5, 0.0);
        assert!(o.is_satisfactory(&ranking));
    }

    #[test]
    fn protected_at_bottom_fails() {
        // All protected items in the bottom half: early prefixes violate.
        let n = 20;
        let positions: Vec<usize> = (10..20).collect();
        let (a, ranking) = ranking_with_protected_at(n, &positions);
        let o = PrefixFairness::new(&a, 0, n, 0.5, 0.0);
        assert!(!o.is_satisfactory(&ranking));
    }

    #[test]
    fn slack_tolerates_small_deficits() {
        // One protected item "late" by a position: strict test fails,
        // α-tolerant test passes.
        let n = 10;
        let positions = [1usize, 2, 5, 7, 8]; // position 0 unprotected
        let (a, ranking) = ranking_with_protected_at(n, &positions);
        let strict = PrefixFairness::new(&a, 0, n, 0.5, 0.0);
        let tolerant = PrefixFairness::new(&a, 0, n, 0.5, 1.64);
        assert!(!strict.is_satisfactory(&ranking));
        assert!(tolerant.is_satisfactory(&ranking));
    }

    #[test]
    fn min_protected_monotone_in_prefix() {
        let (a, _) = ranking_with_protected_at(4, &[0]);
        let o = PrefixFairness::new(&a, 0, 100, 0.4, 0.5);
        let mut prev = 0;
        for i in 1..=100 {
            let m = o.min_protected_at(i);
            assert!(m + 1 >= prev, "requirement dropped too fast at {i}");
            assert!(m <= i, "cannot require more than the prefix length");
            prev = m;
        }
    }

    #[test]
    fn zero_proportion_always_satisfied() {
        let (a, ranking) = ranking_with_protected_at(12, &[]);
        let o = PrefixFairness::new(&a, 0, 12, 0.0, 0.0);
        assert!(o.is_satisfactory(&ranking));
    }

    #[test]
    fn exposes_topk_bound_for_pruning() {
        let (a, _) = ranking_with_protected_at(5, &[0]);
        let o = PrefixFairness::new(&a, 0, 4, 0.5, 0.0);
        assert_eq!(o.top_k_bound(), Some(4));
        assert!(o.describe().contains("FA*IR"));
    }

    #[test]
    fn verdict_ignores_items_below_k() {
        let n = 16;
        let positions: Vec<usize> = (0..8).collect(); // protected on top
        let (a, mut ranking) = ranking_with_protected_at(n, &positions);
        let o = PrefixFairness::new(&a, 0, 8, 0.5, 0.0);
        assert!(o.is_satisfactory(&ranking));
        ranking[8..].reverse();
        assert!(o.is_satisfactory(&ranking));
    }
}
