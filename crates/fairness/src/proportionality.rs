//! Proportional-representation fairness models FM1 and FM2 (paper §6.1).
//!
//! **FM1** partitions the dataset by one type attribute and bounds each
//! group's head-count among the top-k from below and/or above. The paper's
//! default oracle is an instance: *"a ranking is satisfactory if at most
//! 60% (about 10% more than the base rate) of the top-ranked 30% are
//! African-American."*
//!
//! **FM2** is the conjunction of FM1 constraints over several (possibly
//! overlapping) type attributes — e.g. caps on `sex`, `race` and
//! `age_bucketized` simultaneously.

use fairrank_datasets::{Dataset, TypeAttribute};

use crate::incremental::{IncrementalOracle, ProportionalityState};
use crate::oracle::FairnessOracle;

/// Per-group head-count bounds in the top-k.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupBound {
    /// Minimum number of group members in the top-k (0 = unconstrained).
    pub min: usize,
    /// Maximum number of group members in the top-k
    /// (`usize::MAX` = unconstrained).
    pub max: usize,
}

impl Default for GroupBound {
    fn default() -> Self {
        GroupBound {
            min: 0,
            max: usize::MAX,
        }
    }
}

/// FM1: proportional representation over a single type attribute.
#[derive(Debug, Clone)]
pub struct Proportionality {
    attr_name: String,
    /// Group id per item (indexed by item id).
    groups: Vec<u32>,
    group_count: usize,
    k: usize,
    bounds: Vec<GroupBound>,
}

impl Proportionality {
    /// Unconstrained oracle over `attr` looking at the top `k` items.
    /// Add bounds with the `with_*` builders; with no bounds every ranking
    /// is satisfactory.
    ///
    /// # Panics
    /// If `k == 0`.
    #[must_use]
    pub fn new(attr: &TypeAttribute, k: usize) -> Proportionality {
        assert!(k > 0, "top-k size must be positive");
        Proportionality {
            attr_name: attr.name.clone(),
            groups: attr.values.clone(),
            group_count: attr.group_count(),
            k: k.min(attr.values.len()),
            bounds: vec![GroupBound::default(); attr.group_count()],
        }
    }

    /// Convenience: look up `attr` on a dataset and use the top
    /// `fraction` of items as `k` (the paper's "top-ranked 30%").
    ///
    /// # Panics
    /// If the attribute does not exist or the fraction yields `k == 0`.
    #[must_use]
    pub fn over_fraction(ds: &Dataset, attr: &str, fraction: f64) -> Proportionality {
        let t = ds
            .type_attribute(attr)
            .unwrap_or_else(|| panic!("unknown type attribute {attr:?}"));
        let k = ((ds.len() as f64 * fraction).round() as usize).max(1);
        Proportionality::new(t, k)
    }

    /// Cap group `g` at `max` members of the top-k.
    #[must_use]
    pub fn with_max_count(mut self, g: u32, max: usize) -> Proportionality {
        self.bounds[g as usize].max = max;
        self
    }

    /// Require at least `min` members of group `g` in the top-k.
    #[must_use]
    pub fn with_min_count(mut self, g: u32, min: usize) -> Proportionality {
        self.bounds[g as usize].min = min;
        self
    }

    /// Cap group `g` at `share` of the top-k (paper's "at most 60%").
    #[must_use]
    pub fn with_max_share(self, g: u32, share: f64) -> Proportionality {
        let k = self.k;
        self.with_max_count(g, (share * k as f64).floor() as usize)
    }

    /// Require group `g` to fill at least `share` of the top-k.
    #[must_use]
    pub fn with_min_share(self, g: u32, share: f64) -> Proportionality {
        let k = self.k;
        self.with_min_count(g, (share * k as f64).ceil() as usize)
    }

    /// Cap **every** group at its dataset proportion plus `slack`
    /// (the paper's §6.4 DOT constraint with `slack = 0.05`, restricted to
    /// `groups` when given).
    #[must_use]
    pub fn with_proportional_caps(
        mut self,
        ds_proportions: &[f64],
        slack: f64,
        groups: Option<&[u32]>,
    ) -> Proportionality {
        let k = self.k as f64;
        let all: Vec<u32> = (0..self.group_count as u32).collect();
        for &g in groups.unwrap_or(&all) {
            let cap = ((ds_proportions[g as usize] + slack) * k).floor() as usize;
            self.bounds[g as usize].max = cap;
        }
        self
    }

    /// The top-k size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-group bounds.
    #[must_use]
    pub fn bounds(&self) -> &[GroupBound] {
        &self.bounds
    }

    /// Group id of an item.
    #[inline]
    #[must_use]
    pub fn group_of(&self, item: u32) -> u32 {
        self.groups[item as usize]
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Count members per group among the first `k` entries of `ranking`.
    #[must_use]
    pub fn head_counts(&self, ranking: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.group_count];
        self.head_counts_into(ranking, &mut counts);
        counts
    }

    /// The counting kernel shared by the serial and batched oracle paths:
    /// fill `counts` (len = group count, overwritten) with per-group
    /// head counts over the top-k of `ranking`.
    fn head_counts_into(&self, ranking: &[u32], counts: &mut [usize]) {
        counts.iter_mut().for_each(|c| *c = 0);
        for &item in ranking.iter().take(self.k) {
            counts[self.groups[item as usize] as usize] += 1;
        }
    }

    /// Whether a vector of head counts satisfies all bounds.
    #[must_use]
    pub fn counts_satisfy(&self, counts: &[usize]) -> bool {
        counts
            .iter()
            .zip(&self.bounds)
            .all(|(&c, b)| c >= b.min && c <= b.max)
    }

    /// Is satisfaction even possible? (Sum of minima ≤ k and the caps
    /// leave room for k items.) Used by failure-injection tests.
    #[must_use]
    pub fn is_satisfiable_in_principle(&self) -> bool {
        let group_sizes = {
            let mut sizes = vec![0usize; self.group_count];
            for &g in &self.groups {
                sizes[g as usize] += 1;
            }
            sizes
        };
        let min_total: usize = self.bounds.iter().map(|b| b.min).sum();
        let max_total: usize = self
            .bounds
            .iter()
            .zip(&group_sizes)
            .map(|(b, &s)| b.max.min(s))
            .sum();
        min_total <= self.k && max_total >= self.k
    }
}

impl FairnessOracle for Proportionality {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        self.counts_satisfy(&self.head_counts(ranking))
    }

    // Batched path: one counts buffer for the whole batch instead of a
    // fresh Vec per ranking (head_counts allocates). Verdicts identical.
    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        let mut counts = vec![0usize; self.group_count];
        rankings
            .iter()
            .map(|ranking| {
                self.head_counts_into(ranking, &mut counts);
                self.counts_satisfy(&counts)
            })
            .collect()
    }

    fn describe(&self) -> String {
        format!(
            "FM1 proportionality on {:?} over top-{} ({} groups)",
            self.attr_name, self.k, self.group_count
        )
    }

    fn incremental<'a>(&'a self, ranking: &[u32]) -> Option<Box<dyn IncrementalOracle + 'a>> {
        Some(Box::new(ProportionalityState::new(self, ranking)))
    }

    fn top_k_bound(&self) -> Option<usize> {
        Some(self.k)
    }

    // Same bounds and (clamped) k, group ids refreshed from the updated
    // dataset's attribute of the same name. Returns `None` when the
    // attribute no longer exists or its group universe shrank below the
    // bound vector — the caller then keeps the old oracle.
    fn rebind(&self, ds: &Dataset) -> Option<Box<dyn FairnessOracle>> {
        self.rebound(ds)
            .map(|p| Box::new(p) as Box<dyn FairnessOracle>)
    }
}

impl Proportionality {
    /// The concrete re-binding behind [`FairnessOracle::rebind`], shared
    /// with [`Conjunction`].
    fn rebound(&self, ds: &Dataset) -> Option<Proportionality> {
        let attr = ds.type_attribute(&self.attr_name)?;
        if attr.group_count() < self.group_count {
            return None;
        }
        let mut bounds = self.bounds.clone();
        bounds.resize(attr.group_count(), GroupBound::default());
        Some(Proportionality {
            attr_name: self.attr_name.clone(),
            groups: attr.values.clone(),
            group_count: attr.group_count(),
            k: self.k.min(attr.values.len()),
            bounds,
        })
    }
}

/// FM2: the conjunction of several proportionality constraints, possibly
/// over different type attributes and different k's.
#[derive(Debug, Clone, Default)]
pub struct Conjunction {
    parts: Vec<Proportionality>,
}

impl Conjunction {
    /// An empty conjunction (always satisfied).
    #[must_use]
    pub fn new() -> Conjunction {
        Conjunction::default()
    }

    /// Add a constraint (builder style).
    #[must_use]
    pub fn and(mut self, p: Proportionality) -> Conjunction {
        self.parts.push(p);
        self
    }

    /// The member constraints.
    #[must_use]
    pub fn parts(&self) -> &[Proportionality] {
        &self.parts
    }
}

impl FairnessOracle for Conjunction {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        self.parts.iter().all(|p| p.is_satisfactory(ranking))
    }

    // Forward the batch to each part's batched path and conjoin.
    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        let mut out = vec![true; rankings.len()];
        for p in &self.parts {
            for (v, part_v) in out.iter_mut().zip(p.is_satisfactory_batch(rankings)) {
                *v = *v && part_v;
            }
        }
        out
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.parts.iter().map(|p| p.describe()).collect();
        format!("FM2 conjunction [{}]", inner.join("; "))
    }

    fn incremental<'a>(&'a self, ranking: &[u32]) -> Option<Box<dyn IncrementalOracle + 'a>> {
        let states: Vec<ProportionalityState<'a>> = self
            .parts
            .iter()
            .map(|p| ProportionalityState::new(p, ranking))
            .collect();
        Some(Box::new(crate::incremental::ConjunctionState::new(states)))
    }

    fn top_k_bound(&self) -> Option<usize> {
        // The conjunction inspects up to the largest prefix of its parts.
        self.parts.iter().map(|p| p.k()).max()
    }

    // Rebinds part-wise; the whole conjunction rebinds only if every part
    // does (a partially rebound conjunction would mix item-id epochs).
    fn rebind(&self, ds: &Dataset) -> Option<Box<dyn FairnessOracle>> {
        let parts: Option<Vec<Proportionality>> =
            self.parts.iter().map(|p| p.rebound(ds)).collect();
        Some(Box::new(Conjunction { parts: parts? }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(values: Vec<u32>, groups: usize) -> TypeAttribute {
        TypeAttribute {
            name: "g".into(),
            labels: (0..groups).map(|i| format!("g{i}")).collect(),
            values,
        }
    }

    #[test]
    fn paper_figure1_example() {
        // Binary types; fair iff top-4 has exactly 2 of each.
        let t = attr(vec![0, 0, 0, 1, 1, 1, 0, 1], 2);
        let o = Proportionality::new(&t, 4)
            .with_min_count(0, 2)
            .with_max_count(0, 2)
            .with_min_count(1, 2)
            .with_max_count(1, 2);
        // 3 orange (0) + 1 blue (1): unsatisfactory.
        assert!(!o.is_satisfactory(&[0, 1, 2, 3, 4, 5, 6, 7]));
        // 2 + 2: satisfactory.
        assert!(o.is_satisfactory(&[0, 1, 3, 4, 2, 5, 6, 7]));
    }

    #[test]
    fn max_share_floor_semantics() {
        let t = attr(vec![0; 10], 1);
        let o = Proportionality::new(&t, 3).with_max_share(0, 0.5);
        // floor(0.5 × 3) = 1.
        assert_eq!(o.bounds()[0].max, 1);
    }

    #[test]
    fn min_share_ceil_semantics() {
        let t = attr(vec![0; 10], 1);
        let o = Proportionality::new(&t, 3).with_min_share(0, 0.5);
        assert_eq!(o.bounds()[0].min, 2);
    }

    #[test]
    fn k_clamped_to_n() {
        let t = attr(vec![0, 1], 2);
        let o = Proportionality::new(&t, 100);
        assert_eq!(o.k(), 2);
    }

    #[test]
    fn proportional_caps() {
        let t = attr(vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 1], 2);
        let props = vec![0.2, 0.8];
        let o = Proportionality::new(&t, 10).with_proportional_caps(&props, 0.1, None);
        assert_eq!(o.bounds()[0].max, 3); // floor((0.2+0.1)*10)
        assert_eq!(o.bounds()[1].max, 9);
    }

    #[test]
    fn satisfiability_probe() {
        let t = attr(vec![0, 0, 1, 1], 2);
        // k=3 but both groups capped at 1 → impossible.
        let impossible = Proportionality::new(&t, 3)
            .with_max_count(0, 1)
            .with_max_count(1, 1);
        assert!(!impossible.is_satisfiable_in_principle());
        // Require 3 of group 0 but only 2 exist → impossible min side.
        let impossible2 = Proportionality::new(&t, 3).with_min_count(0, 4);
        assert!(!impossible2.is_satisfiable_in_principle());
        let fine = Proportionality::new(&t, 3).with_max_count(0, 2);
        assert!(fine.is_satisfiable_in_principle());
    }

    #[test]
    fn conjunction_all_must_hold() {
        let ta = attr(vec![0, 0, 1, 1], 2);
        let tb = TypeAttribute {
            name: "h".into(),
            labels: vec!["x".into(), "y".into()],
            values: vec![0, 1, 0, 1],
        };
        let c = Conjunction::new()
            .and(Proportionality::new(&ta, 2).with_max_count(0, 1))
            .and(Proportionality::new(&tb, 2).with_max_count(0, 1));
        // Top-2 = {0, 1}: group a counts 2 (violates), group b counts 1+1 ok.
        assert!(!c.is_satisfactory(&[0, 1, 2, 3]));
        // Top-2 = {0, 3}: a counts 1/1 ok; b counts 1/1 ok.
        assert!(c.is_satisfactory(&[0, 3, 1, 2]));
        assert_eq!(c.top_k_bound(), Some(2));
    }

    #[test]
    fn batched_verdicts_match_serial() {
        let t = attr(vec![0, 1, 0, 1, 0, 1, 0, 1], 2);
        let o = Proportionality::new(&t, 4).with_max_count(0, 2);
        let rankings: Vec<Vec<u32>> = vec![
            vec![0, 2, 4, 6, 1, 3, 5, 7], // 4 of group 0 in top-4
            vec![0, 1, 2, 3, 4, 5, 6, 7], // 2 of group 0
            vec![1, 3, 5, 7, 0, 2, 4, 6], // 0 of group 0
        ];
        let refs: Vec<&[u32]> = rankings.iter().map(Vec::as_slice).collect();
        let batch = o.is_satisfactory_batch(&refs);
        let serial: Vec<bool> = refs.iter().map(|r| o.is_satisfactory(r)).collect();
        assert_eq!(batch, serial);
        assert_eq!(batch, vec![false, true, true]);
    }

    #[test]
    fn conjunction_batch_matches_serial() {
        let ta = attr(vec![0, 0, 1, 1], 2);
        let tb = TypeAttribute {
            name: "h".into(),
            labels: vec!["x".into(), "y".into()],
            values: vec![0, 1, 0, 1],
        };
        let c = Conjunction::new()
            .and(Proportionality::new(&ta, 2).with_max_count(0, 1))
            .and(Proportionality::new(&tb, 2).with_max_count(0, 1));
        let rankings: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3], vec![0, 3, 1, 2], vec![2, 3, 0, 1]];
        let refs: Vec<&[u32]> = rankings.iter().map(Vec::as_slice).collect();
        let serial: Vec<bool> = refs.iter().map(|r| c.is_satisfactory(r)).collect();
        assert_eq!(c.is_satisfactory_batch(&refs), serial);
    }

    #[test]
    fn empty_conjunction_trivially_true() {
        let c = Conjunction::new();
        assert!(c.is_satisfactory(&[5, 4, 3]));
        assert_eq!(c.top_k_bound(), None);
    }

    #[test]
    fn rebind_refreshes_groups_and_clamps_k() {
        let mut ds = fairrank_datasets::Dataset::from_rows(
            vec!["x".into()],
            &(0..6).map(|i| vec![f64::from(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        ds.add_type_attribute("g", vec!["a".into(), "b".into()], vec![0, 1, 0, 1, 0, 1])
            .unwrap();
        let oracle = Proportionality::new(ds.type_attribute("g").unwrap(), 4).with_max_count(0, 2);

        // Grow the population: same k, fresh group vector.
        ds.insert_row(&[9.0], &[1]).unwrap();
        let rebound = oracle.rebind(&ds).expect("attribute still present");
        assert!(rebound.top_k_bound() == Some(4));
        // Verdict over a ranking including the new item id 6 works (the
        // stale oracle would index out of bounds).
        assert!(rebound.is_satisfactory(&[6, 1, 3, 5, 0, 2, 4]));

        // Shrink below k: the bound clamps.
        let mut small = ds.clone();
        for _ in 0..4 {
            let last = small.len() - 1;
            small.remove_row(last).unwrap();
        }
        let clamped = oracle.rebind(&small).unwrap();
        assert_eq!(clamped.top_k_bound(), Some(3));

        // Unknown attribute → no rebinding.
        let bare = fairrank_datasets::Dataset::from_rows(vec!["x".into()], &[vec![1.0]]).unwrap();
        assert!(oracle.rebind(&bare).is_none());

        // Conjunctions rebind part-wise.
        let conj = Conjunction::new().and(oracle.clone());
        assert!(conj.rebind(&ds).is_some());
        assert!(conj.rebind(&bare).is_none());
    }

    #[test]
    fn over_fraction_k() {
        let mut ds = fairrank_datasets::Dataset::from_rows(
            vec!["x".into()],
            &(0..10).map(|i| vec![f64::from(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        ds.add_type_attribute(
            "g",
            vec!["a".into(), "b".into()],
            vec![0; 10]
                .into_iter()
                .enumerate()
                .map(|(i, _)| (i % 2) as u32)
                .collect(),
        )
        .unwrap();
        let o = Proportionality::over_fraction(&ds, "g", 0.3);
        assert_eq!(o.k(), 3);
    }
}
