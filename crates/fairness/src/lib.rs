//! # fairrank-fairness
//!
//! Fairness oracles over ranked outputs (paper §2, fairness model).
//!
//! The paper treats fairness as a **black box**: an oracle
//! `O : ordered(D) → {⊤, ⊥}` that accepts or rejects a complete ranking.
//! Everything the indexing machinery needs is captured by the
//! [`FairnessOracle`] trait; any criterion expressible over a ranked list —
//! group fairness, diversity, exposure — plugs in unchanged.
//!
//! The concrete models evaluated in the paper's §6 are provided:
//!
//! * [`Proportionality`] — **FM1**: bounds (lower and/or upper) on the
//!   number of members of each group of a single type attribute among the
//!   top-k. Expresses the proportional-representation constraints of
//!   Zehlike et al. (FA*IR), Celis et al., and Stoyanovich et al.
//! * [`Conjunction`] — **FM2**: simultaneous FM1 constraints over multiple
//!   (possibly overlapping) type attributes, as in Celis et al.
//! * [`FnOracle`] — arbitrary user closures, demonstrating the black-box
//!   claim.
//!
//! Two further oracle families from the paper's related work show the
//! black box absorbing very different fairness semantics unchanged:
//!
//! * [`PrefixFairness`] — FA*IR-style ranked group fairness over *every
//!   prefix* of the top-k (Zehlike et al., the paper's \[32\]);
//! * [`ExposureFairness`] — position-discounted exposure shares, where
//!   *where* group members sit matters, not just how many make the cut.
//!
//! [`IncrementalOracle`] is the performance hook the 2-D ray-sweeping
//! algorithm exploits: adjacent swaps change the top-k content only when
//! they straddle the boundary, so satisfaction can be re-evaluated in
//! `O(1)` per swap instead of `O(n)` per sector.

pub mod exposure;
pub mod incremental;
pub mod oracle;
pub mod prefix;
pub mod proportionality;

pub use exposure::{ExposureBound, ExposureFairness};
pub use incremental::{ConjunctionState, IncrementalOracle, ProportionalityState, SweepState};
pub use oracle::{CountingOracle, FairnessOracle, FnOracle};
pub use prefix::PrefixFairness;
pub use proportionality::{Conjunction, GroupBound, Proportionality};
