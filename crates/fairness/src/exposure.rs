//! Exposure-based group fairness: position bias weighting.
//!
//! Count-based constraints (FM1/FM2) treat every top-k position equally,
//! but users read rankings top-down — rank 1 receives far more attention
//! than rank 100. Exposure measures weight each position by a
//! logarithmic discount (the DCG discount, `1 / log₂(rank + 1)`), and
//! group fairness bounds each group's *share of total exposure* rather
//! than its share of slots.
//!
//! This oracle exercises the paper's black-box generality from a second
//! angle: its verdict depends on *where* in the top-k group members sit,
//! not just on how many there are — so the satisfactory regions it
//! induces differ from FM1's even at identical bounds.

use fairrank_datasets::TypeAttribute;

use crate::oracle::FairnessOracle;

/// Bounds on one group's share of top-k exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureBound {
    /// Group id the bound applies to.
    pub group: u32,
    /// Minimum exposure share in `[0, 1]` (`0` = unconstrained).
    pub min_share: f64,
    /// Maximum exposure share in `[0, 1]` (`1` = unconstrained).
    pub max_share: f64,
}

/// Position-discounted exposure fairness over the top-k.
#[derive(Debug, Clone)]
pub struct ExposureFairness {
    group_of: Vec<u32>,
    group_count: usize,
    k: usize,
    bounds: Vec<ExposureBound>,
    /// Discount table `[discount(0), …, discount(k−1)]`, fixed at
    /// construction so neither the serial nor the batched probe path
    /// recomputes `log2` (or allocates) per call.
    discounts: Vec<f64>,
}

impl ExposureFairness {
    /// Build an exposure oracle over the top-`k` of the given attribute.
    ///
    /// # Panics
    /// If `k == 0`.
    #[must_use]
    pub fn new(attr: &TypeAttribute, k: usize) -> Self {
        assert!(k > 0, "top-k must be non-empty");
        // Rankings are permutations of the items, so at most
        // `attr.values.len()` positions can ever receive exposure — cap
        // the table there and an oversized k costs nothing.
        let table_len = k.min(attr.values.len());
        ExposureFairness {
            group_of: attr.values.clone(),
            group_count: attr.group_count(),
            k,
            bounds: Vec::new(),
            discounts: (0..table_len).map(Self::discount).collect(),
        }
    }

    /// Add a share bound for a group (chainable).
    ///
    /// # Panics
    /// If the shares are outside `[0, 1]` or `min > max`.
    #[must_use]
    pub fn with_share_bounds(mut self, group: u32, min_share: f64, max_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&min_share));
        assert!((0.0..=1.0).contains(&max_share));
        assert!(min_share <= max_share);
        self.bounds.push(ExposureBound {
            group,
            min_share,
            max_share,
        });
        self
    }

    /// The DCG position discount for 0-based rank `r`.
    #[must_use]
    pub fn discount(r: usize) -> f64 {
        1.0 / ((r + 2) as f64).log2()
    }

    /// Exposure share of each group over the top-k of `ranking`.
    #[must_use]
    pub fn exposure_shares(&self, ranking: &[u32]) -> Vec<f64> {
        let mut per_group = vec![0.0f64; self.group_count];
        self.shares_into(ranking, &mut per_group);
        per_group
    }

    /// Fill `per_group` (len = group count, overwritten) with exposure
    /// shares using the cached discount table — the allocation-free
    /// kernel behind [`exposure_shares`](ExposureFairness::exposure_shares)
    /// and both oracle paths.
    fn shares_into(&self, ranking: &[u32], per_group: &mut [f64]) {
        per_group.iter_mut().for_each(|g| *g = 0.0);
        let mut total = 0.0f64;
        for (&item, &e) in ranking.iter().zip(&self.discounts) {
            per_group[self.group_of[item as usize] as usize] += e;
            total += e;
        }
        if total > 0.0 {
            for g in per_group {
                *g /= total;
            }
        }
    }

    fn bounds_hold(&self, shares: &[f64]) -> bool {
        self.bounds.iter().all(|b| {
            let s = shares.get(b.group as usize).copied().unwrap_or(0.0);
            s >= b.min_share - 1e-12 && s <= b.max_share + 1e-12
        })
    }
}

impl FairnessOracle for ExposureFairness {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        self.bounds_hold(&self.exposure_shares(ranking))
    }

    // Batched path: one share buffer for the whole batch instead of a
    // fresh Vec per ranking.
    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        let mut per_group = vec![0.0f64; self.group_count];
        rankings
            .iter()
            .map(|ranking| {
                self.shares_into(ranking, &mut per_group);
                self.bounds_hold(&per_group)
            })
            .collect()
    }

    fn describe(&self) -> String {
        format!(
            "exposure fairness over top-{} ({} bound(s), DCG discount)",
            self.k,
            self.bounds.len()
        )
    }

    fn top_k_bound(&self) -> Option<usize> {
        Some(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(values: Vec<u32>) -> TypeAttribute {
        TypeAttribute {
            name: "g".into(),
            labels: vec!["a".into(), "b".into()],
            values,
        }
    }

    #[test]
    fn discount_is_decreasing() {
        for r in 0..50 {
            assert!(ExposureFairness::discount(r) > ExposureFairness::discount(r + 1));
        }
        assert!((ExposureFairness::discount(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one() {
        let a = attr(vec![0, 1, 0, 1, 0, 1]);
        let o = ExposureFairness::new(&a, 6);
        let shares = o.exposure_shares(&[0, 1, 2, 3, 4, 5]);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn position_matters_not_just_count() {
        // Same counts (2 of each group in the top-4), different positions:
        // group 0 on top vs group 0 at the bottom of the prefix.
        let a = attr(vec![0, 0, 1, 1]);
        let o = ExposureFairness::new(&a, 4).with_share_bounds(0, 0.0, 0.55);
        let zero_on_top = [0u32, 1, 2, 3];
        let zero_below = [2u32, 3, 0, 1];
        // FM1 would treat these identically; exposure must not.
        assert!(!o.is_satisfactory(&zero_on_top), "top-heavy exceeds 55%");
        assert!(o.is_satisfactory(&zero_below));
    }

    #[test]
    fn min_share_enforced() {
        let a = attr(vec![0, 1, 1, 1]);
        let o = ExposureFairness::new(&a, 4).with_share_bounds(0, 0.3, 1.0);
        // Group 0's single item at the top: share = 1/(1+...)…
        assert!(o.is_satisfactory(&[0, 1, 2, 3]));
        // …at the bottom of the prefix it drops below 30%.
        assert!(!o.is_satisfactory(&[1, 2, 3, 0]));
    }

    #[test]
    fn unconstrained_oracle_accepts_everything() {
        let a = attr(vec![0, 1, 0, 1]);
        let o = ExposureFairness::new(&a, 4);
        assert!(o.is_satisfactory(&[0, 1, 2, 3]));
        assert!(o.is_satisfactory(&[3, 2, 1, 0]));
    }

    #[test]
    fn exposes_topk_bound() {
        let a = attr(vec![0, 1]);
        let o = ExposureFairness::new(&a, 2);
        assert_eq!(o.top_k_bound(), Some(2));
        assert!(o.describe().contains("exposure"));
    }

    #[test]
    fn batched_verdicts_match_serial() {
        let a = attr(vec![0, 0, 1, 1]);
        let o = ExposureFairness::new(&a, 4).with_share_bounds(0, 0.0, 0.55);
        let rankings: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3],
            vec![2, 3, 0, 1],
            vec![0, 2, 1, 3],
            vec![1, 0], // shorter than k
        ];
        let refs: Vec<&[u32]> = rankings.iter().map(Vec::as_slice).collect();
        let serial: Vec<bool> = refs.iter().map(|r| o.is_satisfactory(r)).collect();
        assert_eq!(o.is_satisfactory_batch(&refs), serial);
    }

    #[test]
    fn short_rankings_handled() {
        let a = attr(vec![0, 1]);
        let o = ExposureFairness::new(&a, 10).with_share_bounds(0, 0.0, 0.9);
        // Ranking shorter than k: uses what is there.
        assert!(o.is_satisfactory(&[1, 0]));
        assert!(!o.is_satisfactory(&[0]));
    }
}
