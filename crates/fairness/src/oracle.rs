//! The black-box oracle trait and generic adapters.

use std::sync::atomic::{AtomicU64, Ordering};

use fairrank_datasets::Dataset;

use crate::incremental::IncrementalOracle;

/// A fairness oracle `O : ordered(D) → {⊤, ⊥}` (paper §2).
///
/// `ranking` is a permutation of item ids, best first. Implementations must
/// be deterministic: the indexing algorithms cache verdicts per region.
pub trait FairnessOracle: Send + Sync {
    /// Does this ranking meet the fairness criteria?
    fn is_satisfactory(&self, ranking: &[u32]) -> bool;

    /// Evaluate a batch of rankings at once; `out[i]` is the verdict for
    /// `rankings[i]`.
    ///
    /// The default delegates to [`FairnessOracle::is_satisfactory`] per
    /// ranking, so every oracle is batchable for free. Concrete oracles
    /// override this to amortize per-call setup across the batch —
    /// scratch counters, discount tables — which is what the offline
    /// probe pipelines and [`respond_batch`] feed on. Overrides must
    /// return verdicts identical to the serial path: the indexing
    /// machinery treats batch evaluation as a pure optimization.
    ///
    /// [`respond_batch`]: https://docs.rs/fairrank (FairRanker::respond_batch)
    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        rankings.iter().map(|r| self.is_satisfactory(r)).collect()
    }

    /// Human-readable description for reports.
    fn describe(&self) -> String {
        "fairness oracle".to_string()
    }

    /// An incremental evaluator seeded with `ranking`, when the oracle
    /// supports `O(1)` adjacent-swap updates (the 2DRAYSWEEP fast path).
    /// The default is `None`: fully black-box oracles are re-evaluated per
    /// sector, exactly as the paper's complexity analysis assumes.
    fn incremental<'a>(&'a self, ranking: &[u32]) -> Option<Box<dyn IncrementalOracle + 'a>> {
        let _ = ranking;
        None
    }

    /// If the oracle provably only inspects the top-`k` prefix, the bound
    /// `k` — enabling the §8 convex-layers pruning. Default: unknown.
    fn top_k_bound(&self) -> Option<usize> {
        None
    }

    /// Re-bind the oracle to an updated dataset (live insert/remove/
    /// rescore), preserving the fairness *policy* while refreshing any
    /// per-item state the oracle captured at construction (group ids,
    /// discount tables sized to `n`, …).
    ///
    /// The contract the update machinery relies on: on a ranking of items
    /// that exist in both the old and the new dataset, the rebound
    /// oracle's verdict must equal the old oracle's verdict modulo the
    /// id renumbering a removal performs (ids above the removed item
    /// shift down by one).
    ///
    /// Default `None`: the oracle holds no per-item state (e.g. a pure
    /// closure over ranking shape) and can keep serving as-is; oracles
    /// that *do* capture per-item state and cannot re-bind make live
    /// updates unsound, which is the caller's responsibility to avoid.
    fn rebind(&self, ds: &Dataset) -> Option<Box<dyn FairnessOracle>> {
        let _ = ds;
        None
    }
}

/// A closure adapter: any `Fn(&[u32]) -> bool` is a fairness oracle.
///
/// This is the paper's generality claim made concrete — diversity
/// constraints, exposure measures, or hand-written predicates drop in
/// without touching the indexing code.
pub struct FnOracle<F: Fn(&[u32]) -> bool + Send + Sync> {
    f: F,
    description: String,
}

impl<F: Fn(&[u32]) -> bool + Send + Sync> FnOracle<F> {
    /// Wrap a closure.
    pub fn new(description: impl Into<String>, f: F) -> Self {
        FnOracle {
            f,
            description: description.into(),
        }
    }
}

impl<F: Fn(&[u32]) -> bool + Send + Sync> FairnessOracle for FnOracle<F> {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        (self.f)(ranking)
    }

    fn describe(&self) -> String {
        self.description.clone()
    }
}

/// Decorator counting oracle invocations — the `O_n` factor in the paper's
/// Theorems 1 and 3, measured rather than assumed.
pub struct CountingOracle<O: FairnessOracle> {
    inner: O,
    calls: AtomicU64,
}

impl<O: FairnessOracle> CountingOracle<O> {
    /// Wrap an oracle.
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of `is_satisfactory` calls so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: FairnessOracle> FairnessOracle for CountingOracle<O> {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.is_satisfactory(ranking)
    }

    // Each ranking in a batch counts as one oracle invocation (the
    // batch is an amortization of setup, not of verdicts), and the
    // inner oracle's batched override stays in effect.
    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        self.calls
            .fetch_add(rankings.len() as u64, Ordering::Relaxed);
        self.inner.is_satisfactory_batch(rankings)
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    // Note: deliberately does NOT forward `incremental` — the counter exists
    // to measure black-box oracle cost.

    fn top_k_bound(&self) -> Option<usize> {
        self.inner.top_k_bound()
    }
}

impl<T: FairnessOracle + ?Sized> FairnessOracle for &T {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        (**self).is_satisfactory(ranking)
    }

    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        (**self).is_satisfactory_batch(rankings)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn incremental<'a>(&'a self, ranking: &[u32]) -> Option<Box<dyn IncrementalOracle + 'a>> {
        (**self).incremental(ranking)
    }

    fn top_k_bound(&self) -> Option<usize> {
        (**self).top_k_bound()
    }

    fn rebind(&self, ds: &Dataset) -> Option<Box<dyn FairnessOracle>> {
        (**self).rebind(ds)
    }
}

impl FairnessOracle for Box<dyn FairnessOracle> {
    fn is_satisfactory(&self, ranking: &[u32]) -> bool {
        (**self).is_satisfactory(ranking)
    }

    fn is_satisfactory_batch(&self, rankings: &[&[u32]]) -> Vec<bool> {
        (**self).is_satisfactory_batch(rankings)
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn incremental<'a>(&'a self, ranking: &[u32]) -> Option<Box<dyn IncrementalOracle + 'a>> {
        (**self).incremental(ranking)
    }

    fn top_k_bound(&self) -> Option<usize> {
        (**self).top_k_bound()
    }

    fn rebind(&self, ds: &Dataset) -> Option<Box<dyn FairnessOracle>> {
        (**self).rebind(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_oracle_delegates() {
        // Satisfactory iff item 0 is ranked first.
        let o = FnOracle::new("item 0 first", |r: &[u32]| r.first() == Some(&0));
        assert!(o.is_satisfactory(&[0, 1, 2]));
        assert!(!o.is_satisfactory(&[1, 0, 2]));
        assert_eq!(o.describe(), "item 0 first");
        assert!(o.incremental(&[0, 1, 2]).is_none());
        assert!(o.top_k_bound().is_none());
    }

    #[test]
    fn default_batch_matches_serial() {
        let o = FnOracle::new("item 0 first", |r: &[u32]| r.first() == Some(&0));
        let rankings: [&[u32]; 3] = [&[0, 1], &[1, 0], &[0]];
        assert_eq!(o.is_satisfactory_batch(&rankings), vec![true, false, true]);
    }

    #[test]
    fn counting_oracle_counts_batches_per_ranking() {
        let o = CountingOracle::new(FnOracle::new("always", |_: &[u32]| true));
        let rankings: [&[u32]; 4] = [&[0], &[1], &[2], &[3]];
        assert_eq!(o.is_satisfactory_batch(&rankings), vec![true; 4]);
        assert_eq!(o.calls(), 4, "each batched ranking is one invocation");
    }

    #[test]
    fn counting_oracle_counts() {
        let o = CountingOracle::new(FnOracle::new("always", |_: &[u32]| true));
        assert_eq!(o.calls(), 0);
        for _ in 0..5 {
            assert!(o.is_satisfactory(&[0]));
        }
        assert_eq!(o.calls(), 5);
    }

    #[test]
    fn reference_forwarding() {
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r: &dyn FairnessOracle = &o;
        assert!(r.is_satisfactory(&[1, 2]));
        let boxed: Box<dyn FairnessOracle> = Box::new(FnOracle::new("never", |_: &[u32]| false));
        assert!(!boxed.is_satisfactory(&[]));
        assert_eq!(boxed.describe(), "never");
    }
}
