//! # fairrank-telemetry
//!
//! Dependency-free observability for the fairrank stack: a sharded
//! atomic metrics [`Registry`], mergeable log-linear latency
//! [`Histogram`]s with nearest-rank quantiles, cheap [`Stopwatch`] /
//! [`SpanTimer`] pipeline tracing, and a hand-rolled Prometheus text
//! encoder ([`Registry::render`]) behind `GET /metrics` in
//! `fairrank-net`.
//!
//! ## Design rules
//!
//! * **Bit-identity is never at risk.** Telemetry observes the serving
//!   pipeline; it never participates in it. The `telemetry_equivalence`
//!   CI gate proves served answers are byte-identical with the timing
//!   layer compiled in or out.
//! * **Handles, not lookups.** Registration takes a shard lock once;
//!   the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are
//!   shared atomics, so hot paths never re-enter the registry.
//! * **`telemetry-off` compiles out the clock, not the counts.** Under
//!   the feature, [`ENABLED`] is `false` and [`Stopwatch`] is a
//!   zero-sized no-op — but counters, gauges, histograms-as-data, and
//!   the registry stay fully functional. `ServiceStats` (and the tests
//!   that assert exact counts) are defined in terms of those counters;
//!   a no-op mode that changed them would change observable behavior.
//! * **Per-service registries by default.** [`Registry::new`] per
//!   service keeps tests and co-hosted services from bleeding counts
//!   into each other; the process-wide [`global()`] registry is for
//!   process-wide facts (index build timers).
//!
//! ## Metric naming
//!
//! Families follow Prometheus conventions: `fairrank_` prefix, unit
//! suffix (`_us`, `_total`), labels for bounded dimensions only
//! (`stage`, `endpoint`, `backend`, `phase`). The full name table
//! lives in the repository README under "Observability".

mod histogram;
mod registry;
mod span;

pub use histogram::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, N_BUCKETS};
pub use registry::{global, Counter, Gauge, Registry};
pub use span::{SpanTimer, Stopwatch, ENABLED};
