//! The sharded metrics registry and the Prometheus text encoder.
//!
//! A [`Registry`] maps *family name* → (help, kind, label-set → series).
//! Registration takes one shard lock; the handles it returns
//! ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared atomics, so
//! the hot path never touches the registry again — call sites stash
//! the handle once and update it lock-free forever after.
//!
//! Rendering walks every shard under its lock, collects families into
//! sorted order, and emits Prometheus text exposition format 0.0.4
//! (`# HELP` / `# TYPE` lines, escaped label values, histograms as
//! cumulative `le` buckets plus `_sum`/`_count`). Output order is
//! deterministic: families by name, series by label set.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{bucket_bound, Histogram};

/// A monotonically increasing counter. Cloning shares the cell.
///
/// Counters stay live even under the `telemetry-off` feature: a
/// relaxed `fetch_add` is the cheapest instrumentation there is, and
/// serving statistics (`ServiceStats`, `/stats`) are defined in terms
/// of these counts — compiling them out would change observable
/// behavior, which the no-op mode must never do.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not yet in any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An integer gauge (set/add/sub). Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A detached gauge (not yet in any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// What a family holds; fixed at first registration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the *rendered* label block (`{k="v",…}` or the empty
    /// string), which is already sorted by label key — BTreeMap then
    /// gives deterministic series order for free.
    series: BTreeMap<String, Series>,
}

const SHARDS: usize = 8;

/// A sharded metric registry.
///
/// Each serving component owns (or is injected with) a registry;
/// process-wide concerns such as index-build timers use [`global()`].
/// Family names are sharded by FNV-1a hash, so two unrelated
/// subsystems registering at once rarely contend — and after
/// registration they never lock at all.
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, Family>>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

/// Renders a label set as `{k="v",…}` with Prometheus escaping, or ""
/// for the empty set. Labels are sorted by key for determinism.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        debug_assert!(valid_name(k), "invalid label name {k:?}");
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus metric/label name grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Family>> {
        &self.shards[(fnv1a(name) % SHARDS as u64) as usize]
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> Series,
    ) -> Series {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut shard = self.shard(name).lock().expect("registry shard poisoned");
        let family = shard.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family {name} registered twice with different kinds \
             ({:?} vs {kind:?})",
            family.kind
        );
        family
            .series
            .entry(label_block(labels))
            .or_insert_with(fresh)
            .clone()
    }

    /// Returns the counter for `(name, labels)`, creating the family
    /// and series on first use. Subsequent calls (from any component
    /// sharing this registry) return a handle to the *same* cell.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, Kind::Counter, labels, || {
            Series::Counter(Counter::new())
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Returns the gauge for `(name, labels)`, creating it on first use.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, Kind::Gauge, labels, || {
            Series::Gauge(Gauge::new())
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Returns the histogram for `(name, labels)`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, help, Kind::Histogram, labels, || {
            Series::Histogram(Histogram::new())
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers an *existing* counter handle under `(name, labels)` —
    /// for components (like the suggestion cache) that construct their
    /// counters detached and bind them to a registry later. If the
    /// series already exists, the existing cell wins and `handle` is
    /// left detached.
    pub fn bind_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: &Counter) {
        self.get_or_insert(name, help, Kind::Counter, labels, || {
            Series::Counter(handle.clone())
        });
    }

    /// Registers an existing gauge handle; see [`bind_counter`].
    ///
    /// [`bind_counter`]: Registry::bind_counter
    pub fn bind_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: &Gauge) {
        self.get_or_insert(name, help, Kind::Gauge, labels, || {
            Series::Gauge(handle.clone())
        });
    }

    /// The names of every registered family, for deduplicating a
    /// multi-registry exposition (see [`render_excluding`]).
    ///
    /// [`render_excluding`]: Registry::render_excluding
    pub fn family_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for shard in &self.shards {
            names.extend(
                shard
                    .lock()
                    .expect("registry shard poisoned")
                    .keys()
                    .cloned(),
            );
        }
        names.sort();
        names
    }

    /// Renders the whole registry as Prometheus text exposition.
    pub fn render(&self) -> String {
        self.render_excluding(&HashSet::new())
    }

    /// Renders every family whose name is not in `skip`. Used to
    /// concatenate a service registry with the process-global one
    /// without emitting a family twice (invalid exposition).
    pub fn render_excluding(&self, skip: &HashSet<String>) -> String {
        // Collect into sorted order first so output is deterministic
        // regardless of shard assignment.
        type FamilySnapshot = (String, Kind, Vec<(String, Series)>);
        let mut families: BTreeMap<String, FamilySnapshot> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard poisoned");
            for (name, family) in shard.iter() {
                if skip.contains(name) {
                    continue;
                }
                families.insert(
                    name.clone(),
                    (
                        family.help.clone(),
                        family.kind,
                        family
                            .series
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect(),
                    ),
                );
            }
        }
        let mut out = String::new();
        for (name, (help, kind, series)) in &families {
            let _ = writeln!(out, "# HELP {name} {}", help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            for (labels, s) in series {
                match s {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Series::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// Emits one histogram series: sparse cumulative `le` buckets (only
/// bucket bounds that hold at least one sample, which keeps the 976
/// fixed buckets from bloating the exposition), a `+Inf` bucket, and
/// `_sum`/`_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let snap = h.snapshot();
    let mut cum = 0u64;
    // Splice `le` into the existing label block: `{a="b"}` reopens as
    // `{a="b",` so `le="…"}` closes it; no labels means a fresh `{`.
    let opener: String = if labels.is_empty() {
        "{".to_string()
    } else {
        format!("{},", &labels[..labels.len() - 1])
    };
    for (idx, &c) in snap.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let _ = writeln!(
            out,
            "{name}_bucket{opener}le=\"{}\"}} {cum}",
            bucket_bound(idx)
        );
    }
    let _ = writeln!(out, "{name}_bucket{opener}le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum());
    let _ = writeln!(out, "{name}_count{labels} {cum}");
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Seconds-scale, process-wide concerns —
/// index build timers in particular — record here; per-service metrics
/// live in each service's own registry so tests and co-hosted services
/// never bleed counts into each other.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_render_deterministically() {
        let reg = Registry::new();
        let a = reg.counter("fairrank_test_total", "A test counter.", &[("which", "a")]);
        let a2 = reg.counter(
            "fairrank_test_total",
            "ignored on re-register",
            &[("which", "a")],
        );
        a.inc();
        a2.add(2);
        assert_eq!(a.get(), 3, "same (name, labels) must share one cell");
        let g = reg.gauge("fairrank_test_depth", "A test gauge.", &[]);
        g.set(-4);
        let text = reg.render();
        assert!(text.contains("# TYPE fairrank_test_total counter"));
        assert!(text.contains("fairrank_test_total{which=\"a\"} 3"));
        assert!(text.contains("fairrank_test_depth -4"));
        assert_eq!(text, reg.render(), "render must be deterministic");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("fairrank_test_us", "A test histogram.", &[("stage", "x")]);
        h.record(3);
        h.record(3);
        h.record(1_000);
        let text = reg.render();
        assert!(text.contains("# TYPE fairrank_test_us histogram"));
        assert!(text.contains("fairrank_test_us_bucket{stage=\"x\",le=\"3\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("fairrank_test_us_sum{stage=\"x\"} 1006"));
        assert!(text.contains("fairrank_test_us_count{stage=\"x\"} 3"));
    }

    #[test]
    fn bind_and_exclusion() {
        let reg = Registry::new();
        let mine = Counter::new();
        mine.add(7);
        reg.bind_counter("fairrank_bound_total", "Bound.", &[], &mine);
        assert!(reg.render().contains("fairrank_bound_total 7"));
        let skip: HashSet<String> = reg.family_names().into_iter().collect();
        assert!(reg.render_excluding(&skip).is_empty());
    }

    #[test]
    fn label_values_are_escaped() {
        let block = label_block(&[("msg", "a\"b\\c\nd")]);
        assert_eq!(block, "{msg=\"a\\\"b\\\\c\\nd\"}");
    }
}
