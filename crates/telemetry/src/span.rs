//! Span timers — the only part of the subsystem the `telemetry-off`
//! feature compiles out.
//!
//! A [`Stopwatch`] wraps `Instant::now()`; under `telemetry-off` it is
//! a zero-sized type whose `elapsed_us` is always `None`, so every
//! `record` call folds to nothing and the serving hot path carries no
//! clock reads at all. Counters and gauges are *not* gated — a relaxed
//! atomic add is cheaper than the branch that would skip it, and
//! `ServiceStats` is defined in terms of those counts.
//!
//! Timers are also gated at *runtime*: [`Stopwatch::start_if`] lets a
//! service toggle stage timing off per-instance (the overhead
//! benchmark uses this to measure on-vs-off in one binary).

use crate::histogram::Histogram;

/// Whether the timing layer is compiled in. `false` under the
/// `telemetry-off` feature.
pub const ENABLED: bool = cfg!(not(feature = "telemetry-off"));

/// A started-or-inert monotonic timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(not(feature = "telemetry-off"))]
    started: Option<std::time::Instant>,
}

impl Stopwatch {
    /// Starts a stopwatch iff the timing layer is compiled in *and*
    /// `on` is true; otherwise returns an inert stopwatch.
    #[inline]
    pub fn start_if(on: bool) -> Stopwatch {
        #[cfg(not(feature = "telemetry-off"))]
        {
            Stopwatch {
                started: on.then(std::time::Instant::now),
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = on;
            Stopwatch {}
        }
    }

    /// Starts a stopwatch (inert under `telemetry-off`).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch::start_if(true)
    }

    /// An inert stopwatch: `elapsed_us` is `None`, `record` is a no-op.
    #[inline]
    pub fn inert() -> Stopwatch {
        Stopwatch::start_if(false)
    }

    /// Microseconds since `start`, or `None` if inert.
    #[inline]
    pub fn elapsed_us(&self) -> Option<u64> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.started.map(|s| s.elapsed().as_micros() as u64)
        }
        #[cfg(feature = "telemetry-off")]
        {
            None
        }
    }

    /// Records the elapsed microseconds into `hist` (no-op if inert).
    #[inline]
    pub fn record(&self, hist: &Histogram) {
        if let Some(us) = self.elapsed_us() {
            hist.record(us);
        }
    }
}

/// A lexically scoped span: records its lifetime into a histogram on
/// drop. For stages that are not a clean scope (e.g. queue wait that
/// starts in one thread and ends in another), carry a [`Stopwatch`]
/// instead.
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    sw: Stopwatch,
}

impl<'a> SpanTimer<'a> {
    /// Enters the span now; leaves (and records) on drop.
    #[inline]
    pub fn enter(hist: &'a Histogram) -> SpanTimer<'a> {
        SpanTimer {
            hist,
            sw: Stopwatch::start(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        self.sw.record(self.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_records_iff_enabled_and_on() {
        let hist = Histogram::new();
        Stopwatch::start().record(&hist);
        assert_eq!(hist.count(), u64::from(ENABLED));
        Stopwatch::inert().record(&hist);
        assert_eq!(hist.count(), u64::from(ENABLED), "inert must not record");
        {
            let _span = SpanTimer::enter(&hist);
        }
        assert_eq!(hist.count(), 2 * u64::from(ENABLED));
    }
}
