//! Mergeable log-linear latency histograms.
//!
//! The bucket layout is fixed at compile time and shared by every
//! histogram in the process, which is what makes snapshots *mergeable*:
//! two snapshots combine by element-wise addition of their bucket
//! counts, with no interpolation and no information loss beyond the
//! original bucketing. The layout is log-linear (HdrHistogram-style):
//!
//! * values `0..16` get one bucket each (exact);
//! * every octave above that is split into 16 sub-buckets, so the
//!   bucket width is always at most 1/16 of the value — a recorded
//!   value is reproduced with **≤ 6.25% relative error** across the
//!   full `u64` range.
//!
//! Quantiles use the same *nearest-rank (ceiling)* convention as
//! [`fairrank_bench::stats::percentile`]: the q-quantile of n samples
//! is the sample at rank `⌈q·n⌉` (1-based), reported as the inclusive
//! upper bound of the bucket that rank falls in. An empty histogram
//! reports `NaN`, exactly like `percentile` on an empty slice.
//!
//! [`fairrank_bench::stats::percentile`]: https://example.invalid/fairrank

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Values below this are bucketed exactly (one bucket per value).
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per octave above the linear range; 16 sub-buckets bound
/// the relative error of any reconstructed value at 1/16 = 6.25%.
const SUBS: usize = 16;
/// Octaves above the linear range needed to cover all of `u64`
/// (values with their most significant bit in positions 4..=63).
const OCTAVES: usize = 60;

/// Total number of buckets in the fixed layout.
pub const N_BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUBS; // 976

/// Maps a value to its bucket index. Total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        // msb >= 4 because v >= 16; `octave` counts full doublings past
        // the linear range, `sub` picks one of 16 equal slices of it.
        let msb = 63 - v.leading_zeros() as usize;
        let octave = msb - 4;
        let sub = ((v >> octave) - LINEAR_MAX) as usize;
        LINEAR_MAX as usize + octave * SUBS + sub
    }
}

/// Inclusive upper bound of a bucket — the value every sample in the
/// bucket is reported as. The top bucket's bound is `u64::MAX` exactly.
#[inline]
pub fn bucket_bound(idx: usize) -> u64 {
    debug_assert!(idx < N_BUCKETS);
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let octave = (idx - LINEAR_MAX as usize) / SUBS;
        let sub = ((idx - LINEAR_MAX as usize) % SUBS) as u64;
        let low = (LINEAR_MAX + sub) << octave;
        low + ((1u64 << octave) - 1)
    }
}

struct Inner {
    buckets: Box<[AtomicU64]>,
    /// Saturating sum of recorded values; feeds `_sum` in the
    /// Prometheus exposition and `HistogramSnapshot::mean`.
    sum: AtomicU64,
}

/// A thread-safe histogram handle. Cloning shares the underlying
/// buckets, so a handle can be stashed per call site while the registry
/// keeps another for rendering.
///
/// `record` is two relaxed atomic adds — cheap enough for serving hot
/// paths. The histogram is deliberately functional even under the
/// `telemetry-off` feature: it doubles as a bounded-memory *data
/// structure* (netbench records open-loop latencies into it instead of
/// buffering every sample), and only the [`Stopwatch`](crate::Stopwatch)
/// timing layer compiles out.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(Inner {
                buckets: buckets.into_boxed_slice(),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // fetch_update would cost a CAS loop; wrapping is acceptable for
        // a diagnostic sum but saturation keeps `mean` sane for free on
        // realistic (µs-scale) inputs, so just add — overflow would need
        // ~2^64 µs of recorded time.
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// A point-in-time copy of the bucket counts. Snapshots taken while
    /// writers are active are *consistent per bucket* (each count is a
    /// true value at some instant) but not across buckets — the usual
    /// contract for lock-free metrics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a histogram's contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element for [`merge`].
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; N_BUCKETS],
            sum: 0,
        }
    }

    /// Records into the snapshot directly (single-threaded use, e.g. a
    /// per-thread accumulator that is merged afterwards).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Element-wise addition: after `a.merge(&b)`, every quantile of
    /// `a` is what it would have been had both sample streams been
    /// recorded into one histogram. Associative and commutative (gated
    /// by proptest in `tests/telemetry_equivalence.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean of the recorded values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        self.sum as f64 / n as f64
    }

    /// Nearest-rank (ceiling) quantile, reported as the inclusive upper
    /// bound of the bucket holding rank `⌈q·n⌉`. Matches
    /// `fairrank_bench::stats::percentile` semantics: `q` is clamped to
    /// `[0, 1]`, the empty histogram reports `NaN`, and the result for
    /// a given sample multiset is within one bucket width (≤ 6.25%
    /// relative error) of the exact-sample answer.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(idx) as f64;
            }
        }
        // Unreachable: cum reaches n and rank <= n.
        bucket_bound(N_BUCKETS - 1) as f64
    }

    /// Raw bucket counts (fixed layout; see [`bucket_bound`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bound_are_consistent() {
        // Every value lands in a bucket whose bounds contain it, and
        // bucket upper bounds are strictly increasing.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} for {v}");
            let high = bucket_bound(idx);
            let low = if idx == 0 {
                0
            } else {
                bucket_bound(idx - 1) + 1
            };
            assert!(low <= v && v <= high, "{v} not in [{low}, {high}]");
        }
        for idx in 1..N_BUCKETS {
            assert!(bucket_bound(idx) > bucket_bound(idx - 1));
        }
        assert_eq!(bucket_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Reconstructed value (bucket upper bound) is within 6.25% of
        // the recorded value for anything past the exact range.
        let mut v = 16u64;
        for _ in 0..10_000 {
            let err = bucket_bound(bucket_index(v)) as f64 / v as f64 - 1.0;
            assert!((0.0..=0.0625 + 1e-12).contains(&err), "v={v} err={err}");
            v = v.wrapping_mul(31).wrapping_add(17) % (1 << 50) + 16;
        }
    }

    #[test]
    fn quantile_matches_exact_percentile_within_one_bucket() {
        // The netbench satellite's contract: nearest-rank quantiles
        // from the histogram land within one bucket width of the
        // exact-sample nearest-rank answer.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 9_234_891u64;
        for _ in 0..5_000 {
            // xorshift-ish spread over ~5 decades, like µs latencies.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % 900_000 + 17);
        }
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &[0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = snap.quantile(q);
            let idx = bucket_index(exact);
            let width = bucket_bound(idx) - if idx == 0 { 0 } else { bucket_bound(idx - 1) };
            assert!(
                (approx - exact as f64).abs() <= width as f64,
                "q={q}: approx {approx} vs exact {exact} (bucket width {width})"
            );
        }
    }

    #[test]
    fn empty_histogram_is_nan_like_percentile() {
        let snap = Histogram::new().snapshot();
        assert!(snap.quantile(0.5).is_nan());
        assert!(snap.mean().is_nan());
        assert!(snap.is_empty());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = HistogramSnapshot::empty();
        let mut b = HistogramSnapshot::empty();
        let mut whole = HistogramSnapshot::empty();
        for i in 0..1_000u64 {
            let v = i * i % 77_777;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
