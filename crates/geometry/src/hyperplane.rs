//! Hyperplanes in the angle coordinate system.
//!
//! An ordering-exchange hyperplane separates the angle space into the two
//! half-spaces on which a pair of items ranks one way or the other
//! (paper §4.1). The paper normalizes hyperplanes to `Σ h_k θ_k = 1`
//! (HYPERPOLAR output); we store the general affine form `a·θ = b`, which
//! additionally represents hyperplanes through the origin of the angle
//! space — a real (if rare) degeneracy the normalized form cannot express.
//! [`Hyperplane::paper_form`] recovers the normalized coefficients whenever
//! they exist.

use fairrank_lp::{Constraint, Rel};

use crate::vector::dot;
use crate::GEOM_EPS;

/// Which side of a hyperplane a region lies on.
///
/// `Plus` is the half-space `a·θ ≥ b` (the paper's `h⁺`), `Minus` is
/// `a·θ ≤ b` (`h⁻`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// `a·θ ≥ b`
    Plus,
    /// `a·θ ≤ b`
    Minus,
}

impl Sign {
    /// The opposite side.
    #[must_use]
    pub fn flipped(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// An affine hyperplane `a·θ = b` in the `(d−1)`-dimensional angle space.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    /// Normal vector `a` (unit length after [`Hyperplane::new`]).
    pub normal: Vec<f64>,
    /// Offset `b`.
    pub offset: f64,
}

impl Hyperplane {
    /// Construct and normalize (`‖a‖ = 1`, first non-zero component
    /// positive so equal hyperplanes compare equal). Returns `None` for a
    /// zero normal or non-finite input.
    #[must_use]
    pub fn new(normal: Vec<f64>, offset: f64) -> Option<Hyperplane> {
        if !offset.is_finite() || normal.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = dot(&normal, &normal).sqrt();
        if n <= GEOM_EPS {
            return None;
        }
        let mut normal: Vec<f64> = normal.iter().map(|v| v / n).collect();
        let mut offset = offset / n;
        // Canonical orientation.
        if let Some(&lead) = normal.iter().find(|v| v.abs() > GEOM_EPS) {
            if lead < 0.0 {
                for v in &mut normal {
                    *v = -*v;
                }
                offset = -offset;
            }
        }
        Some(Hyperplane { normal, offset })
    }

    /// Dimension of the ambient angle space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// Signed evaluation `a·θ − b`: positive on the [`Sign::Plus`] side.
    #[inline]
    #[must_use]
    pub fn eval(&self, theta: &[f64]) -> f64 {
        dot(&self.normal, theta) - self.offset
    }

    /// Which strict side `theta` lies on, or `None` within tolerance of the
    /// hyperplane itself.
    #[must_use]
    pub fn side(&self, theta: &[f64], eps: f64) -> Option<Sign> {
        let v = self.eval(theta);
        if v > eps {
            Some(Sign::Plus)
        } else if v < -eps {
            Some(Sign::Minus)
        } else {
            None
        }
    }

    /// The paper's normalized coefficients `h` with `Σ h_k θ_k = 1`, when
    /// the hyperplane does not pass through the angle-space origin.
    #[must_use]
    pub fn paper_form(&self) -> Option<Vec<f64>> {
        if self.offset.abs() <= GEOM_EPS {
            return None;
        }
        Some(self.normal.iter().map(|v| v / self.offset).collect())
    }

    /// The half-space constraint for one side, optionally shrunk by
    /// `margin` (used for the proper-cut test of the arrangement: a
    /// hyperplane splits a region only if both *open* sides are non-empty).
    #[must_use]
    pub fn constraint(&self, sign: Sign, margin: f64) -> Constraint {
        match sign {
            Sign::Plus => Constraint::ge(self.normal.clone(), self.offset + margin),
            Sign::Minus => Constraint::le(self.normal.clone(), self.offset - margin),
        }
    }

    /// The equality constraint `a·θ = b`.
    #[must_use]
    pub fn equality(&self) -> Constraint {
        Constraint {
            a: self.normal.clone(),
            rel: Rel::Eq,
            b: self.offset,
        }
    }

    /// Exact test of whether the hyperplane intersects the axis-aligned box
    /// `[bl, tr]`, via interval arithmetic on `a·θ`.
    ///
    /// This corrects the paper's corner test (which assumed non-negative
    /// coefficients; see DESIGN.md F3): the range of `a·θ` over the box is
    /// `[Σ min(a_k·bl_k, a_k·tr_k), Σ max(a_k·bl_k, a_k·tr_k)]`, and the
    /// plane crosses the box iff `b` lies in that range.
    #[must_use]
    pub fn crosses_box(&self, bl: &[f64], tr: &[f64]) -> bool {
        debug_assert_eq!(bl.len(), self.normal.len());
        debug_assert_eq!(tr.len(), self.normal.len());
        let mut lo = 0.0;
        let mut hi = 0.0;
        for ((&a, &l), &t) in self.normal.iter().zip(bl).zip(tr) {
            let (x, y) = (a * l, a * t);
            lo += x.min(y);
            hi += x.max(y);
        }
        lo - GEOM_EPS <= self.offset && self.offset <= hi + GEOM_EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_canonical() {
        let h1 = Hyperplane::new(vec![2.0, 0.0], 1.0).unwrap();
        let h2 = Hyperplane::new(vec![-4.0, 0.0], -2.0).unwrap();
        assert!((h1.normal[0] - h2.normal[0]).abs() < 1e-12);
        assert!((h1.offset - h2.offset).abs() < 1e-12);
        assert!((h1.normal[0] - 1.0).abs() < 1e-12);
        assert!((h1.offset - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Hyperplane::new(vec![0.0, 0.0], 1.0).is_none());
        assert!(Hyperplane::new(vec![f64::NAN, 1.0], 0.0).is_none());
        assert!(Hyperplane::new(vec![1.0], f64::INFINITY).is_none());
    }

    #[test]
    fn side_classification() {
        let h = Hyperplane::new(vec![1.0, 1.0], 1.0).unwrap();
        assert_eq!(h.side(&[1.0, 1.0], 1e-9), Some(Sign::Plus));
        assert_eq!(h.side(&[0.1, 0.1], 1e-9), Some(Sign::Minus));
        // On the plane: (0.5/√2·√2, ...) — use an exact on-plane point.
        let p = [h.offset / h.normal[0] / 2.0, h.offset / h.normal[1] / 2.0];
        assert_eq!(h.side(&p, 1e-9), None);
    }

    #[test]
    fn paper_form_roundtrip() {
        let h = Hyperplane::new(vec![2.0, 4.0], 2.0).unwrap();
        let pf = h.paper_form().unwrap();
        // Σ pf_k θ_k = 1 on the plane: point (1, 0) satisfies 2·1+4·0 = 2 ✓.
        let on_plane = [1.0, 0.0];
        let s: f64 = pf.iter().zip(&on_plane).map(|(a, b)| a * b).sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Through-origin plane has no paper form.
        let h0 = Hyperplane::new(vec![1.0, -1.0], 0.0).unwrap();
        assert!(h0.paper_form().is_none());
    }

    #[test]
    fn constraints_match_sides() {
        let h = Hyperplane::new(vec![1.0, 2.0], 1.5).unwrap();
        let plus = h.constraint(Sign::Plus, 0.0);
        let minus = h.constraint(Sign::Minus, 0.0);
        let p_plus = [2.0, 2.0];
        let p_minus = [0.0, 0.0];
        assert!(plus.satisfied(&p_plus, 1e-9));
        assert!(!plus.satisfied(&p_minus, 1e-9));
        assert!(minus.satisfied(&p_minus, 1e-9));
        assert!(!minus.satisfied(&p_plus, 1e-9));
    }

    #[test]
    fn margin_shrinks_halfspace() {
        let h = Hyperplane::new(vec![1.0, 0.0], 0.5).unwrap();
        let tight = h.constraint(Sign::Plus, 0.1);
        assert!(!tight.satisfied(&[0.55, 0.0], 1e-9));
        assert!(tight.satisfied(&[0.65, 0.0], 1e-9));
    }

    #[test]
    fn crosses_box_positive_normal() {
        let h = Hyperplane::new(vec![1.0, 1.0], 1.0).unwrap();
        assert!(h.crosses_box(&[0.0, 0.0], &[1.0, 1.0]));
        assert!(!h.crosses_box(&[0.0, 0.0], &[0.2, 0.2]));
        assert!(!h.crosses_box(&[0.9, 0.9], &[1.0, 1.0]));
    }

    #[test]
    fn crosses_box_mixed_sign_normal() {
        // x − y = 0 crosses every box that straddles the diagonal; the
        // paper's bl/tr corner test would mis-classify this plane.
        let h = Hyperplane::new(vec![1.0, -1.0], 0.0).unwrap();
        assert!(h.crosses_box(&[0.0, 0.0], &[1.0, 1.0]));
        assert!(h.crosses_box(&[0.4, 0.4], &[0.6, 0.6]));
        assert!(!h.crosses_box(&[0.8, 0.0], &[1.0, 0.1]));
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flipped(), Sign::Minus);
        assert_eq!(Sign::Minus.flipped(), Sign::Plus);
    }

    #[test]
    fn equality_constraint() {
        let h = Hyperplane::new(vec![3.0, 0.0], 1.5).unwrap();
        let eq = h.equality();
        assert!(eq.satisfied(&[0.5, 0.7], 1e-9));
        assert!(!eq.satisfied(&[0.6, 0.7], 1e-9));
    }
}
