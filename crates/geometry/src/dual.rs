//! Dual-space transform and 2-D ordering exchanges (paper §3.1–3.2).
//!
//! Every item `t` maps to the dual hyperplane `d(t): Σ t[k]·x_k = 1`
//! (Eq. 1/3). The ordering of items under a scoring function `f_w` is the
//! ordering of the intersections of their duals with the ray of `w`, so two
//! items swap exactly where their duals intersect — the *ordering exchange*.
//! In 2-D the exchange of a non-dominating pair is a single ray, identified
//! by its angle with the x-axis (Eq. 2).

use crate::GEOM_EPS;

/// The dual line of a 2-D item `t`: `t[0]·x + t[1]·y = 1` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualLine {
    /// Coefficient of `x` (= `t[0]`).
    pub a: f64,
    /// Coefficient of `y` (= `t[1]`).
    pub b: f64,
}

impl DualLine {
    /// Dual of an item with attribute values `(t0, t1)`.
    #[must_use]
    pub fn of_item(t0: f64, t1: f64) -> DualLine {
        DualLine { a: t0, b: t1 }
    }

    /// Intersection with another dual line, or `None` for parallel duals
    /// (items whose attribute vectors are parallel never swap order —
    /// they are scaled copies and tie everywhere or never).
    #[must_use]
    pub fn intersect(&self, other: &DualLine) -> Option<(f64, f64)> {
        let det = self.a * other.b - self.b * other.a;
        if det.abs() <= GEOM_EPS {
            return None;
        }
        let x = (other.b - self.b) / det;
        let y = (self.a - other.a) / det;
        Some((x, y))
    }
}

/// The angle `θ ∈ [0, π/2]` of the ordering exchange of two 2-D items, or
/// `None` when the pair never swaps inside the first quadrant (one item
/// dominates the other, or the duals are parallel).
///
/// This is Eq. 2 of the paper, made robust: the exchange ray direction is
/// the non-negative solution of `(t_i − t_j)·w = 0`, i.e.
/// `w ∝ (−v_1, v_0)` for `v = t_i − t_j`, which lies in the first quadrant
/// iff `v_0` and `v_1` have opposite signs.
#[must_use]
pub fn exchange_angle_2d(ti: &[f64], tj: &[f64]) -> Option<f64> {
    debug_assert_eq!(ti.len(), 2);
    debug_assert_eq!(tj.len(), 2);
    let v0 = ti[0] - tj[0];
    let v1 = ti[1] - tj[1];
    if v0.abs() <= GEOM_EPS && v1.abs() <= GEOM_EPS {
        return None; // identical items tie everywhere
    }
    // Need w = (w0, w1) ≥ 0 with v0·w0 + v1·w1 = 0 and w ≠ 0.
    if v0.abs() <= GEOM_EPS {
        // v1·w1 = 0 → w1 = 0 → exchange on the x-axis.
        return Some(0.0);
    }
    if v1.abs() <= GEOM_EPS {
        return Some(std::f64::consts::FRAC_PI_2);
    }
    if v0.signum() == v1.signum() {
        return None; // dominance: no first-quadrant exchange
    }
    // w ∝ (|v1|, |v0|) up to scale.
    Some(v0.abs().atan2(v1.abs()))
}

/// Whether item `a` dominates item `b`: `a[k] ≥ b[k]` for all `k` with at
/// least one strict inequality (paper footnote 4).
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn paper_figure2_example() {
        // t1 = (1, 2), t2 = (2, 1): exchange at f = x + y, i.e. θ = π/4.
        let theta = exchange_angle_2d(&[1.0, 2.0], &[2.0, 1.0]).unwrap();
        assert!((theta - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn exchange_matches_score_equality() {
        let ti = [1.5, 3.1];
        let tj = [2.3, 1.8];
        let theta = exchange_angle_2d(&ti, &tj).unwrap();
        let w = [theta.cos(), theta.sin()];
        let si = ti[0] * w[0] + ti[1] * w[1];
        let sj = tj[0] * w[0] + tj[1] * w[1];
        assert!((si - sj).abs() < 1e-12, "scores must tie at the exchange");
    }

    #[test]
    fn dominated_pair_has_no_exchange() {
        assert!(exchange_angle_2d(&[2.0, 2.0], &[1.0, 1.0]).is_none());
        assert!(exchange_angle_2d(&[1.0, 1.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn identical_items_no_exchange() {
        assert!(exchange_angle_2d(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn axis_aligned_exchanges() {
        // Same x, different y: tie only when w1 = 0 → θ = 0.
        assert_eq!(exchange_angle_2d(&[1.0, 2.0], &[1.0, 3.0]), Some(0.0));
        // Same y, different x: tie only when w0 = 0 → θ = π/2.
        assert_eq!(exchange_angle_2d(&[1.0, 2.0], &[3.0, 2.0]), Some(FRAC_PI_2));
    }

    #[test]
    fn dual_intersection_is_exchange_direction() {
        // The intersection point of the duals lies on the exchange ray.
        let ti = [1.0, 3.5];
        let tj = [3.2, 0.9];
        let di = DualLine::of_item(ti[0], ti[1]);
        let dj = DualLine::of_item(tj[0], tj[1]);
        let (x, y) = di.intersect(&dj).unwrap();
        let theta = exchange_angle_2d(&ti, &tj).unwrap();
        assert!((y.atan2(x) - theta).abs() < 1e-9);
    }

    #[test]
    fn parallel_duals_none() {
        let d1 = DualLine::of_item(1.0, 2.0);
        let d2 = DualLine::of_item(2.0, 4.0);
        assert!(d1.intersect(&d2).is_none());
    }

    #[test]
    fn dominance_predicate() {
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.5], &[1.0, 1.0]));
        assert!(dominates(&[1.0, 1.0, 2.0], &[1.0, 1.0, 1.0]));
    }
}
