//! Small dense vector helpers.
//!
//! Dimensions in this codebase are tiny (`d ≤ 8` scoring attributes,
//! `d − 1 ≤ 7` angles), so plain `&[f64]` slices with free functions beat a
//! custom SIMD type in both clarity and — at these sizes — speed.

/// Dot product. Panics on length mismatch in debug builds.
#[inline]
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
#[must_use]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a − b` as a new vector.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` as a new vector.
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `c · a` as a new vector.
#[must_use]
pub fn scale(a: &[f64], c: f64) -> Vec<f64> {
    a.iter().map(|x| c * x).collect()
}

/// `a / ‖a‖`; returns `None` for the zero vector.
#[must_use]
pub fn normalize(a: &[f64]) -> Option<Vec<f64>> {
    let n = norm(a);
    if n <= f64::EPSILON {
        None
    } else {
        Some(scale(a, 1.0 / n))
    }
}

/// Cosine similarity `a·b / (‖a‖‖b‖)`, clamped into `[−1, 1]` to protect
/// `acos` from rounding. Returns `None` if either vector is zero.
#[must_use]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> Option<f64> {
    let na = norm(a);
    let nb = norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return None;
    }
    Some((dot(a, b) / (na * nb)).clamp(-1.0, 1.0))
}

/// Whether every component is finite.
#[must_use]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// Whether every component is non-negative (within `eps`).
#[must_use]
pub fn all_non_negative(a: &[f64], eps: f64) -> bool {
    a.iter().all(|&v| v >= -eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 2.0]), vec![2.0, -1.0]);
        assert_eq!(add(&[3.0, 1.0], &[1.0, 2.0]), vec![4.0, 3.0]);
        assert_eq!(scale(&[3.0, 1.0], 2.0), vec![6.0, 2.0]);
    }

    #[test]
    fn normalize_unit() {
        let u = normalize(&[3.0, 4.0]).unwrap();
        assert!((norm(&u) - 1.0).abs() < 1e-12);
        assert!(normalize(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).unwrap()).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[2.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[0.0], &[1.0]).is_none());
    }

    #[test]
    fn finiteness_and_sign_checks() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(all_non_negative(&[0.0, 1.0], 0.0));
        assert!(all_non_negative(&[-1e-12, 1.0], 1e-9));
        assert!(!all_non_negative(&[-0.1, 1.0], 1e-9));
    }
}
