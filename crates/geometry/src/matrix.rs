//! Small dense matrix kernels: linear solves and null spaces via Gaussian
//! elimination with partial pivoting.
//!
//! HYPERPOLAR (paper Algorithm 3) builds a `(d−1) × (d−1)` matrix `Θ` of
//! angle-space points and computes `Θ⁻¹ × ι`; the affine-fit fallback needs
//! a one-dimensional null space of a `(d−1) × d` system. With `d ≤ 8`
//! everything here is O(1) in practice.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices; all rows must share a length.
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// If `x.len() != ncols`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }
}

/// Solve the square system `A x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is (numerically) singular.
///
/// # Panics
/// If `A` is not square or `b` has the wrong length.
#[must_use]
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "solve requires a square matrix");
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    // Augmented [A | b].
    let mut aug = vec![0.0; n * (n + 1)];
    for i in 0..n {
        for j in 0..n {
            aug[i * (n + 1) + j] = a.get(i, j);
        }
        aug[i * (n + 1) + n] = b[i];
    }
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = aug[col * (n + 1) + col].abs();
        for r in col + 1..n {
            let v = aug[r * (n + 1) + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-11 {
            return None;
        }
        if piv != col {
            for j in 0..=n {
                aug.swap(col * (n + 1) + j, piv * (n + 1) + j);
            }
        }
        let pivot = aug[col * (n + 1) + col];
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = aug[r * (n + 1) + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..=n {
                aug[r * (n + 1) + j] -= factor * aug[col * (n + 1) + j];
            }
        }
    }
    Some(
        (0..n)
            .map(|i| aug[i * (n + 1) + n] / aug[i * (n + 1) + i])
            .collect(),
    )
}

/// A unit-norm vector `v` with `A v ≈ 0`, when `A` (with more columns than
/// effective rank) has a non-trivial null space. Returns `None` if the rows
/// span the full column space.
///
/// Used by the HYPERPOLAR fallback: given `k` points that should define an
/// affine hyperplane `a·θ = b`, the homogeneous system over `(a, −b)` has a
/// one-dimensional null space.
#[must_use]
pub fn null_space_vector(a: &Matrix) -> Option<Vec<f64>> {
    let (m, n) = (a.rows, a.cols);
    let mut mat: Vec<f64> = a.data.clone();
    let mut pivot_cols = Vec::new();
    let mut row = 0usize;
    for col in 0..n {
        if row >= m {
            break;
        }
        // Partial pivot within this column.
        let mut piv = row;
        let mut best = mat[row * n + col].abs();
        for r in row + 1..m {
            let v = mat[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-11 {
            continue; // free column
        }
        if piv != row {
            for j in 0..n {
                mat.swap(row * n + j, piv * n + j);
            }
        }
        let pivot = mat[row * n + col];
        for r in 0..m {
            if r == row {
                continue;
            }
            let factor = mat[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                mat[r * n + j] -= factor * mat[row * n + j];
            }
        }
        pivot_cols.push((row, col));
        row += 1;
    }
    // Pick the first free column and back-substitute.
    let used: Vec<usize> = pivot_cols.iter().map(|&(_, c)| c).collect();
    let free = (0..n).find(|c| !used.contains(c))?;
    let mut v = vec![0.0; n];
    v[free] = 1.0;
    for &(r, c) in pivot_cols.iter().rev() {
        let mut s = 0.0;
        for j in 0..n {
            if j != c {
                s += mat[r * n + j] * v[j];
            }
        }
        v[c] = -s / mat[r * n + c];
    }
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm < 1e-12 {
        return None;
    }
    for x in &mut v {
        *x /= norm;
    }
    Some(v)
}

/// Least-squares solution of the (possibly overdetermined) system
/// `A x ≈ b`, via the normal equations `AᵀA x = Aᵀb`. Returns `None` when
/// `AᵀA` is (numerically) singular — i.e. the columns of `A` are linearly
/// dependent.
///
/// For a square non-singular `A` this coincides with [`solve`]. HYPERPOLAR
/// uses it to fit the ordering-exchange hyperplane through *all* extreme
/// rays of the exchange cone, not just an arbitrary `d − 1` of them, which
/// tightens the linearization of the curved exchange surface.
///
/// # Panics
/// If `b.len() != A.nrows()`.
#[must_use]
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(b.len(), a.rows, "rhs length must match row count");
    let (m, n) = (a.rows, a.cols);
    let mut ata = Matrix::zeros(n, n);
    let mut atb = vec![0.0; n];
    for (i, slot) in atb.iter_mut().enumerate() {
        for j in 0..n {
            let mut s = 0.0;
            for r in 0..m {
                s += a.get(r, i) * a.get(r, j);
            }
            ata.set(i, j, s);
        }
        let mut s = 0.0;
        for (r, &bv) in b.iter().enumerate() {
            s += a.get(r, i) * bv;
        }
        *slot = s;
    }
    solve(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(solve(&a, &[3.0, 4.0]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_general_3x3() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        // Known solution (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_square_matches_solve() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let exact = solve(&a, &[5.0, 10.0]).unwrap();
        let ls = solve_least_squares(&a, &[5.0, 10.0]).unwrap();
        assert!((exact[0] - ls[0]).abs() < 1e-9);
        assert!((exact[1] - ls[1]).abs() < 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_regression() {
        // Fit y = 2x + 1 through noiseless samples: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let sol = solve_least_squares(&Matrix::from_rows(&rows), &b).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-9);
        assert!((sol[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_inconsistent_minimizes_residual() {
        // Inconsistent system: A = [[1],[1]], b = [0, 1] → x = 0.5.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let sol = solve_least_squares(&a, &[0.0, 1.0]).unwrap();
        assert!((sol[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn least_squares_rank_deficient_none() {
        // Dependent columns → singular normal equations.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        assert!(solve_least_squares(&a, &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn mul_vec_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = solve(&a, &[5.0, 11.0]).unwrap();
        let b = a.mul_vec(&x);
        assert!((b[0] - 5.0).abs() < 1e-9);
        assert!((b[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn null_space_of_rank_deficient() {
        // Row space = span{(1,1,0)}; null space contains (1,-1,0)/√2 and (0,0,1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0]]);
        let v = null_space_vector(&a).unwrap();
        let r = v[0] + v[1];
        assert!(r.abs() < 1e-9, "A v = {r}");
        assert!((v.iter().map(|x| x * x).sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn null_space_full_rank_none() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(null_space_vector(&a).is_none());
    }

    #[test]
    fn null_space_affine_fit_shape() {
        // Points (1,0), (0,1) on the line x + y = 1: homogeneous rows
        // (x, y, -1) · (a1, a2, b) = 0 should recover a ∝ (1,1), b ∝ 1.
        let a = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.0, 1.0, -1.0]]);
        let v = null_space_vector(&a).unwrap();
        assert!((v[0] - v[1]).abs() < 1e-9);
        assert!((v[0] - v[2]).abs() < 1e-9);
    }
}
