//! Angle-space partitioning (paper §5 and Appendix A.2, Algorithm 12
//! ANGLEPARTITIONING).
//!
//! The approximate index divides the angle box `[0, π/2]^{d−1}` into ~`N`
//! cells whose *angular* diameter is bounded, so that assigning one
//! satisfactory function per cell yields the Theorem 6 approximation
//! guarantee. A regular grid does not do this: the arc length spanned by a
//! step `Δθ_j` along axis `j` shrinks with the cosine of the *deeper*
//! angles (`arc = Δθ_j · Π_{l>j} cos θ_l` — the Jacobian of Eq. 8), so
//! equal-θ cells near the pole are much smaller than cells near the equator
//! (the paper's Figure 9 observation).
//!
//! We therefore build the partition as the paper's tree of rows, but with
//! the row widths derived from the exact surface metric: axes are processed
//! from the *deepest* angle outward, and a row at level `j` gets width
//! `γ / Π_{l>j} cos θ_l^{row-lo}` — wider rows where the metric is
//! compressed, which simultaneously (a) caps every cell's angular extent at
//! `γ` per axis and (b) keeps cell areas approximately equal to `γ^{d−1}`.
//! (The paper's own Eq. 15–16 algebra degenerates to uniform spacing when
//! expanded symbolically — see DESIGN.md — so we implement the construction
//! it *describes*: equal-area cells with a bounded intra-cell angle.)
//!
//! A plain uniform grid is also provided for the ablation experiment.

use crate::hyperplane::Hyperplane;
use crate::polar::angular_distance;
use crate::sphere::cell_side_angle;
use crate::{GEOM_EPS, HALF_PI};

/// Identifier of a grid cell.
pub type CellId = u32;

/// How the grid spaces its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Equal-area rows (the paper's ANGLEPARTITIONING).
    EqualArea,
    /// Uniform `θ` spacing (baseline for the ablation).
    Uniform,
}

/// One level of the partition tree: sorted boundaries along this level's
/// axis; each row either recurses (inner levels) or is a cell (last level).
#[derive(Debug, Clone)]
struct LevelNode {
    boundaries: Vec<f64>,
    children: Vec<LevelNode>,
    first_cell: CellId,
}

/// A partition of the angle box `[0, π/2]^{d−1}` into axis-aligned cells.
#[derive(Debug, Clone)]
pub struct AngleGrid {
    dim: usize,
    scheme: PartitionScheme,
    gamma: f64,
    /// The `n_cells` the grid was built for (construction is deterministic
    /// in `(d, scheme, target)`, which is what index persistence stores).
    target: usize,
    root: LevelNode,
    /// Flat cell bounds: `bl[i]`/`tr[i]` of cell `i`.
    cell_bl: Vec<Vec<f64>>,
    cell_tr: Vec<Vec<f64>>,
}

impl AngleGrid {
    /// Equal-area partitioning targeting `n_cells` cells for a `d`-attribute
    /// dataset (so `d − 1` angle axes).
    ///
    /// # Panics
    /// If `d < 2` or `n_cells == 0`.
    #[must_use]
    pub fn equal_area(d: usize, n_cells: usize) -> AngleGrid {
        Self::build(d, n_cells, PartitionScheme::EqualArea)
    }

    /// Uniformly spaced grid with approximately `n_cells` cells (ablation
    /// baseline).
    ///
    /// # Panics
    /// If `d < 2` or `n_cells == 0`.
    #[must_use]
    pub fn uniform(d: usize, n_cells: usize) -> AngleGrid {
        Self::build(d, n_cells, PartitionScheme::Uniform)
    }

    fn build(d: usize, n_cells: usize, scheme: PartitionScheme) -> AngleGrid {
        assert!(d >= 2, "need at least two scoring attributes");
        assert!(n_cells > 0, "need at least one cell");
        let dim = d - 1;
        let gamma = match scheme {
            // Equal-area: per-axis angular side from the cell-area target
            // (Eq. 13–14); the metric correction in `row_boundaries` keeps
            // the total close to n_cells.
            PartitionScheme::EqualArea => cell_side_angle(d, n_cells).min(HALF_PI),
            // Uniform: k rows per axis with k^dim ≈ n_cells.
            PartitionScheme::Uniform => {
                let k = (n_cells as f64).powf(1.0 / dim as f64).round().max(1.0);
                HALF_PI / k
            }
        };
        let mut grid = AngleGrid {
            dim,
            scheme,
            gamma,
            target: n_cells,
            root: LevelNode {
                boundaries: Vec::new(),
                children: Vec::new(),
                first_cell: 0,
            },
            cell_bl: Vec::new(),
            cell_tr: Vec::new(),
        };
        let mut prefix: Vec<(f64, f64)> = Vec::with_capacity(dim); // deeper-axis rows (lo, hi)
        grid.root = grid.build_level(0, &mut prefix);
        grid
    }

    /// Build level `level` (partitioning angle axis `dim − 1 − level`),
    /// given the `(lo, hi)` borders of the already-chosen deeper rows in
    /// `prefix` (deepest first).
    fn build_level(&mut self, level: usize, prefix: &mut Vec<(f64, f64)>) -> LevelNode {
        let rows = self.row_boundaries(prefix);
        let first_cell = self.cell_bl.len() as CellId;
        let mut children = Vec::new();
        if level + 1 < self.dim {
            children.reserve(rows.len() - 1);
            for r in 0..rows.len() - 1 {
                prefix.push((rows[r], rows[r + 1]));
                let child = self.build_level(level + 1, prefix);
                prefix.pop();
                children.push(child);
            }
        } else {
            // Leaf level: every row of every ancestor path becomes a cell.
            for r in 0..rows.len() - 1 {
                // Angle index order: prefix holds rows for axes
                // dim−1, dim−2, …; this last level partitions axis 0.
                let mut bl = vec![0.0; self.dim];
                let mut tr = vec![0.0; self.dim];
                bl[0] = rows[r];
                tr[0] = rows[r + 1];
                for (depth, &(lo, hi)) in prefix.iter().enumerate() {
                    let axis = self.dim - 1 - depth;
                    bl[axis] = lo;
                    tr[axis] = hi;
                }
                self.cell_bl.push(bl);
                self.cell_tr.push(tr);
            }
        }
        LevelNode {
            boundaries: rows,
            children,
            first_cell,
        }
    }

    /// Row boundaries for the axis at depth `prefix.len()` given the chosen
    /// deeper rows.
    fn row_boundaries(&self, prefix: &[(f64, f64)]) -> Vec<f64> {
        let width = match self.scheme {
            PartitionScheme::Uniform => self.gamma,
            PartitionScheme::EqualArea => {
                // Metric compression from the deeper rows: Π cos(lo).
                let c: f64 = prefix.iter().map(|&(lo, _)| lo.cos()).product();
                if c <= GEOM_EPS {
                    HALF_PI
                } else {
                    (self.gamma / c).min(HALF_PI)
                }
            }
        };
        let nrows = (HALF_PI / width).ceil().max(1.0) as usize;
        let step = HALF_PI / nrows as f64;
        let mut b: Vec<f64> = (0..=nrows).map(|i| i as f64 * step).collect();
        // Guarantee the exact endpoint despite rounding.
        *b.last_mut().expect("non-empty") = HALF_PI;
        b
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cell_bl.len()
    }

    /// Ambient dimension (number of angle axes, `d − 1`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-axis target angular side `γ`.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The `n_cells` target the grid was built with. Reconstructing with
    /// the same `(d, scheme, target)` yields an identical grid.
    #[must_use]
    pub fn target_cells(&self) -> usize {
        self.target
    }

    /// The partitioning scheme.
    #[must_use]
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Bottom-left and top-right corners of a cell.
    ///
    /// # Panics
    /// If `id` is out of range.
    #[must_use]
    pub fn cell_bounds(&self, id: CellId) -> (&[f64], &[f64]) {
        (&self.cell_bl[id as usize], &self.cell_tr[id as usize])
    }

    /// Center of a cell.
    ///
    /// # Panics
    /// If `id` is out of range.
    #[must_use]
    pub fn center(&self, id: CellId) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim);
        self.center_into(id, &mut out);
        out
    }

    /// [`AngleGrid::center`] into a caller-owned buffer (cleared and
    /// refilled) — the coloring flood and the probe loops query centers
    /// per edge/cell, and buffer reuse keeps those paths allocation-free.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn center_into(&self, id: CellId, out: &mut Vec<f64>) {
        let (bl, tr) = self.cell_bounds(id);
        out.clear();
        out.extend(bl.iter().zip(tr).map(|(a, b)| 0.5 * (a + b)));
    }

    /// The cell containing `theta` (clamped into the box: ±∞ clamp to
    /// the respective boundary, NaN maps to the lower one). `O(log N)` —
    /// one binary search per level (MDONLINE's lookup, Algorithm 11).
    ///
    /// The boundary convention is total: θ = 0 maps to the first row,
    /// θ = π/2 exactly maps to the last row, so axis-aligned queries
    /// (weights like `[1, 0]`) always land in a valid cell.
    #[must_use]
    pub fn locate(&self, theta: &[f64]) -> CellId {
        debug_assert_eq!(theta.len(), self.dim);
        let mut node = &self.root;
        let mut level = 0usize;
        loop {
            let axis = self.dim - 1 - level;
            let raw = theta[axis];
            // clamp already pins ±∞ to the box; only NaN needs a branch.
            let t = if raw.is_nan() {
                0.0
            } else {
                raw.clamp(0.0, HALF_PI)
            };
            let nrows = node.boundaries.len() - 1;
            // First boundary strictly greater than t, minus one.
            let mut row = node.boundaries.partition_point(|&b| b <= t);
            row = row.saturating_sub(1).min(nrows - 1);
            if node.children.is_empty() {
                return node.first_cell + row as CellId;
            }
            node = &node.children[row];
            level += 1;
        }
    }

    /// All cells whose closed box intersects `[bl, tr]` (used for
    /// neighbour enumeration). `eps`-tolerant so face-adjacent cells count.
    #[must_use]
    pub fn cells_in_box(&self, bl: &[f64], tr: &[f64], eps: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.cells_in_box_rec(&self.root, 0, bl, tr, eps, &mut out);
        out
    }

    fn cells_in_box_rec(
        &self,
        node: &LevelNode,
        level: usize,
        bl: &[f64],
        tr: &[f64],
        eps: f64,
        out: &mut Vec<CellId>,
    ) {
        let axis = self.dim - 1 - level;
        let lo = bl[axis] - eps;
        let hi = tr[axis] + eps;
        let nrows = node.boundaries.len() - 1;
        // Rows [start, end) overlapping [lo, hi].
        let start = node
            .boundaries
            .partition_point(|&b| b < lo)
            .saturating_sub(1);
        let end = node.boundaries.partition_point(|&b| b <= hi).min(nrows);
        for r in start..end.max(start) {
            if node.boundaries[r + 1] < lo || node.boundaries[r] > hi {
                continue;
            }
            if node.children.is_empty() {
                let id = node.first_cell + r as CellId;
                // Check remaining axes exactly (leaf knows its full box).
                let (cbl, ctr) = self.cell_bounds(id);
                let overlaps = cbl
                    .iter()
                    .zip(ctr)
                    .zip(bl.iter().zip(tr))
                    .all(|((&cl, &ct), (&ql, &qt))| cl <= qt + eps && ct >= ql - eps);
                if overlaps {
                    out.push(id);
                }
            } else {
                self.cells_in_box_rec(&node.children[r], level + 1, bl, tr, eps, out);
            }
        }
    }

    /// Neighbours of a cell: all distinct cells whose closed boxes touch it.
    #[must_use]
    pub fn neighbors(&self, id: CellId) -> Vec<CellId> {
        let (bl, tr) = self.cell_bounds(id);
        let bl = bl.to_vec();
        let tr = tr.to_vec();
        let mut v = self.cells_in_box(&bl, &tr, 1e-9);
        v.retain(|&c| c != id);
        v
    }

    /// All cells crossed by a hyperplane, found by hierarchical pruning
    /// over the partition tree (CELLPLANE×, Algorithm 7, with the exact
    /// interval-arithmetic box test — DESIGN.md F3).
    #[must_use]
    pub fn cells_crossing(&self, h: &Hyperplane) -> Vec<CellId> {
        debug_assert_eq!(h.dim(), self.dim);
        let mut bl = vec![0.0; self.dim];
        let mut tr = vec![HALF_PI; self.dim];
        let mut out = Vec::new();
        self.crossing_rec(&self.root, 0, h, &mut bl, &mut tr, &mut out);
        out
    }

    fn crossing_rec(
        &self,
        node: &LevelNode,
        level: usize,
        h: &Hyperplane,
        bl: &mut Vec<f64>,
        tr: &mut Vec<f64>,
        out: &mut Vec<CellId>,
    ) {
        let axis = self.dim - 1 - level;
        let nrows = node.boundaries.len() - 1;
        for r in 0..nrows {
            let (save_lo, save_hi) = (bl[axis], tr[axis]);
            bl[axis] = node.boundaries[r];
            tr[axis] = node.boundaries[r + 1];
            if h.crosses_box(bl, tr) {
                if node.children.is_empty() {
                    out.push(node.first_cell + r as CellId);
                } else {
                    self.crossing_rec(&node.children[r], level + 1, h, bl, tr, out);
                }
            }
            bl[axis] = save_lo;
            tr[axis] = save_hi;
        }
    }

    /// Brute-force variant of [`AngleGrid::cells_crossing`] for testing.
    #[must_use]
    pub fn cells_crossing_bruteforce(&self, h: &Hyperplane) -> Vec<CellId> {
        (0..self.cell_count() as CellId)
            .filter(|&id| {
                let (bl, tr) = self.cell_bounds(id);
                h.crosses_box(bl, tr)
            })
            .collect()
    }

    /// The maximum angular diameter over all cells, measured on the main
    /// diagonals. Used to verify the Theorem 6 premise.
    #[must_use]
    pub fn max_cell_diameter(&self) -> f64 {
        let mut max = 0.0f64;
        for id in 0..self.cell_count() as CellId {
            max = max.max(self.cell_diameter(id));
        }
        max
    }

    /// Angular diameter of one cell (max over opposite-corner pairs).
    #[must_use]
    pub fn cell_diameter(&self, id: CellId) -> f64 {
        let (bl, tr) = self.cell_bounds(id);
        let k = bl.len();
        let mut max = 0.0f64;
        // All 2^(k-1) opposite-corner pairs (corner c vs its complement).
        for mask in 0..(1u32 << k.saturating_sub(1)) {
            let mut a = Vec::with_capacity(k);
            let mut b = Vec::with_capacity(k);
            for j in 0..k {
                if mask >> j & 1 == 1 {
                    a.push(tr[j]);
                    b.push(bl[j]);
                } else {
                    a.push(bl[j]);
                    b.push(tr[j]);
                }
            }
            max = max.max(angular_distance(&a, &b));
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::approx_error_bound;

    #[test]
    fn d2_grid_is_interval_partition() {
        let g = AngleGrid::equal_area(2, 100);
        assert_eq!(g.dim(), 1);
        assert!(g.cell_count() >= 99 && g.cell_count() <= 101);
        // Cells tile [0, π/2].
        let mut total = 0.0;
        for id in 0..g.cell_count() as CellId {
            let (bl, tr) = g.cell_bounds(id);
            total += tr[0] - bl[0];
        }
        assert!((total - HALF_PI).abs() < 1e-9);
    }

    #[test]
    fn d3_grid_cell_count_near_target() {
        let g = AngleGrid::equal_area(3, 1000);
        let n = g.cell_count();
        assert!((500..=2200).contains(&n), "expected ≈1000 cells, got {n}");
    }

    #[test]
    fn locate_agrees_with_bounds() {
        let g = AngleGrid::equal_area(3, 500);
        let probes = [
            vec![0.1, 0.2],
            vec![1.5, 1.5],
            vec![0.0, 0.0],
            vec![HALF_PI, HALF_PI],
            vec![0.77, 0.01],
        ];
        for p in &probes {
            let id = g.locate(p);
            let (bl, tr) = g.cell_bounds(id);
            for j in 0..g.dim() {
                assert!(
                    bl[j] - 1e-12 <= p[j] && p[j] <= tr[j] + 1e-12,
                    "probe {p:?} not inside cell {id} [{bl:?}, {tr:?}]"
                );
            }
        }
    }

    #[test]
    fn locate_boundary_angles_map_to_valid_cells() {
        // θ = 0 and θ = π/2 exactly, per axis and jointly, for both
        // schemes and several dimensions: the returned cell must exist
        // and its bounds must contain the (clamped) probe.
        for d in [2usize, 3, 4] {
            for g in [AngleGrid::equal_area(d, 300), AngleGrid::uniform(d, 300)] {
                let dim = g.dim();
                let mut probes: Vec<Vec<f64>> = vec![vec![0.0; dim], vec![HALF_PI; dim]];
                for axis in 0..dim {
                    let mut lo = vec![0.3; dim];
                    lo[axis] = 0.0;
                    let mut hi = vec![0.3; dim];
                    hi[axis] = HALF_PI;
                    probes.push(lo);
                    probes.push(hi);
                }
                // Slightly out-of-domain probes clamp instead of escaping.
                probes.push(vec![-1e-12; dim]);
                probes.push(vec![HALF_PI + 1e-12; dim]);
                for p in probes {
                    let id = g.locate(&p);
                    assert!((id as usize) < g.cell_count(), "cell out of range");
                    let (bl, tr) = g.cell_bounds(id);
                    for j in 0..dim {
                        let c = p[j].clamp(0.0, HALF_PI);
                        assert!(
                            bl[j] - 1e-12 <= c && c <= tr[j] + 1e-12,
                            "boundary probe {p:?} outside cell {id} on axis {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn locate_non_finite_coordinates_clamp() {
        let g = AngleGrid::equal_area(3, 200);
        let pos = g.locate(&[f64::INFINITY, f64::INFINITY]);
        assert_eq!(pos, g.locate(&[HALF_PI, HALF_PI]));
        let neg = g.locate(&[f64::NEG_INFINITY, f64::NAN]);
        assert_eq!(neg, g.locate(&[0.0, 0.0]));
    }

    #[test]
    fn center_into_matches_center() {
        let g = AngleGrid::equal_area(3, 100);
        let mut buf = vec![7.0; 5];
        for id in 0..g.cell_count() as CellId {
            g.center_into(id, &mut buf);
            assert_eq!(buf, g.center(id));
        }
    }

    #[test]
    fn every_cell_center_locates_to_itself() {
        let g = AngleGrid::equal_area(3, 300);
        for id in 0..g.cell_count() as CellId {
            let c = g.center(id);
            assert_eq!(g.locate(&c), id, "center of {id} mislocated");
        }
    }

    #[test]
    fn equal_area_diameters_bounded() {
        let g = AngleGrid::equal_area(3, 2000);
        let max_d = g.max_cell_diameter();
        // Theorem 6 premise: the diameter must stay within the bound used
        // by approx_error_bound (which is 4·asin(...) for two hops; one
        // cell diameter is at most half of it).
        let bound = approx_error_bound(3, 2000) / 2.0;
        assert!(
            max_d <= bound * 1.75,
            "max diameter {max_d} far exceeds per-cell bound {bound}"
        );
    }

    #[test]
    fn equal_area_beats_uniform_on_max_diameter_per_cell() {
        // For the same cell count, the equal-area layout should not have a
        // larger worst-case angular diameter than the uniform grid in d=3.
        let ea = AngleGrid::equal_area(3, 1500);
        let un = AngleGrid::uniform(3, ea.cell_count());
        assert!(ea.max_cell_diameter() <= un.max_cell_diameter() * 1.05);
    }

    #[test]
    fn neighbors_symmetric_and_nontrivial() {
        let g = AngleGrid::equal_area(3, 200);
        for id in 0..g.cell_count() as CellId {
            let ns = g.neighbors(id);
            assert!(!ns.is_empty(), "cell {id} has no neighbours");
            assert!(!ns.contains(&id));
            for n in ns {
                assert!(
                    g.neighbors(n).contains(&id),
                    "asymmetric neighbour pair ({id}, {n})"
                );
            }
        }
    }

    #[test]
    fn cells_crossing_matches_bruteforce() {
        let g = AngleGrid::equal_area(3, 400);
        let planes = [
            Hyperplane::new(vec![1.0, 1.0], 1.0).unwrap(),
            Hyperplane::new(vec![1.0, -1.0], 0.0).unwrap(),
            Hyperplane::new(vec![0.3, 1.0], 0.9).unwrap(),
            Hyperplane::new(vec![1.0, 0.0], 1.3).unwrap(),
        ];
        for h in &planes {
            let mut fast = g.cells_crossing(h);
            let mut brute = g.cells_crossing_bruteforce(h);
            fast.sort_unstable();
            brute.sort_unstable();
            assert_eq!(fast, brute, "mismatch for {h:?}");
        }
    }

    #[test]
    fn crossing_prunes_most_cells() {
        let g = AngleGrid::equal_area(3, 2000);
        let h = Hyperplane::new(vec![1.0, 1.0], 1.0).unwrap();
        let crossing = g.cells_crossing(&h).len();
        assert!(
            crossing * 4 < g.cell_count(),
            "a single plane should cross a small fraction of cells: {crossing}/{}",
            g.cell_count()
        );
    }

    #[test]
    fn uniform_grid_counts() {
        let g = AngleGrid::uniform(3, 400);
        // Uniform: k rows per axis with k² ≈ 400.
        let n = g.cell_count();
        assert!((350..=450).contains(&n), "{n}");
    }

    #[test]
    fn d4_grid_construction_and_locate() {
        let g = AngleGrid::equal_area(4, 3000);
        assert_eq!(g.dim(), 3);
        assert!(g.cell_count() > 500);
        let p = vec![0.5, 1.0, 0.2];
        let id = g.locate(&p);
        let (bl, tr) = g.cell_bounds(id);
        for j in 0..3 {
            assert!(bl[j] <= p[j] && p[j] <= tr[j]);
        }
    }

    #[test]
    fn cells_tile_box_volume_d3() {
        // Σ θ-volume of cells = (π/2)² regardless of scheme.
        for g in [AngleGrid::equal_area(3, 700), AngleGrid::uniform(3, 700)] {
            let mut vol = 0.0;
            for id in 0..g.cell_count() as CellId {
                let (bl, tr) = g.cell_bounds(id);
                vol += (tr[0] - bl[0]) * (tr[1] - bl[1]);
            }
            assert!((vol - HALF_PI * HALF_PI).abs() < 1e-6, "vol {vol}");
        }
    }
}
