//! Convex and dominance layers — the paper's §8 top-k pruning extension.
//!
//! The paper observes that when the fairness oracle only inspects the top-k
//! of the ranking, items outside the first `k` *convex layers* can never
//! enter the top-k under any linear scoring function, so their ordering
//! exchanges are irrelevant and the arrangement shrinks from `n^{2(d−1)}`
//! to `n_k^{2(d−1)}`.
//!
//! Two filters are provided:
//!
//! * [`convex_layers_2d`] — exact onion peeling in two dimensions using the
//!   upper-right convex hull (only hull points maximize a non-negative
//!   linear function).
//! * [`dominance_layers`] — repeated skyline peeling in any dimension. If
//!   item `t` sits in dominance layer `m`, there is a chain of `m − 1`
//!   items each dominating the next down to `t`, and every dominator scores
//!   at least as high under any monotone linear function; hence the top-k is
//!   contained in the first `k` dominance layers. Dominance layers are a
//!   superset of convex layers (valid but looser), which keeps the filter
//!   sound in every dimension.

use crate::dual::dominates;

/// Assign each 2-D item to its convex (onion) layer, 1-based. Layer 1 is
/// the upper-right convex hull of the full set, layer 2 the hull of the
/// rest, and so on.
///
/// Only the *upper-right* hull matters for maximization with non-negative
/// weights, so interior-but-Pareto points land in deeper layers exactly
/// when no non-negative weight vector ranks them first among the remnant.
///
/// # Panics
/// If any item does not have exactly 2 attributes.
#[must_use]
pub fn convex_layers_2d(items: &[Vec<f64>]) -> Vec<usize> {
    for t in items {
        assert_eq!(t.len(), 2, "convex_layers_2d requires 2-D items");
    }
    let n = items.len();
    let mut layer = vec![0usize; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut current = 0usize;
    while !remaining.is_empty() {
        current += 1;
        let hull = upper_right_hull(items, &remaining);
        for &i in &hull {
            layer[i] = current;
        }
        remaining.retain(|i| layer[*i] == 0);
    }
    layer
}

/// Indices (into `items`) of the upper-right convex hull of the subset
/// `active`: the points that maximize `w·t` for some `w ≥ 0, w ≠ 0`.
fn upper_right_hull(items: &[Vec<f64>], active: &[usize]) -> Vec<usize> {
    if active.len() <= 2 {
        return active.to_vec();
    }
    // Sort by x descending, y ascending for ties; walk building an upper
    // chain in the direction of decreasing x / increasing y.
    let mut pts: Vec<usize> = active.to_vec();
    pts.sort_by(|&a, &b| {
        items[b][0]
            .total_cmp(&items[a][0])
            .then(items[a][1].total_cmp(&items[b][1]))
    });
    // Andrew-monotone-chain style scan keeping right turns only.
    let mut hull: Vec<usize> = Vec::new();
    for &i in &pts {
        while hull.len() >= 2 {
            let a = &items[hull[hull.len() - 2]];
            let b = &items[hull[hull.len() - 1]];
            let c = &items[i];
            let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    // The chain runs from the max-x point to the max-y point; points below
    // the starting x-max's y or left of the ending y-max's x are already
    // excluded by the scan. Remove chain points strictly dominated within
    // the chain endpoints (concave ends cannot win any non-negative w).
    hull
}

/// Assign each item to its dominance (skyline) layer, 1-based: layer 1 is
/// the skyline of the full set, layer 2 the skyline of the rest, and so on.
/// Items tied on every attribute share a layer.
#[must_use]
pub fn dominance_layers(items: &[Vec<f64>]) -> Vec<usize> {
    let n = items.len();
    let mut layer = vec![0usize; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut current = 0usize;
    while !remaining.is_empty() {
        current += 1;
        // An item stays in this round's skyline iff nothing remaining
        // dominates it.
        for &a in &remaining {
            let dominated = remaining
                .iter()
                .any(|&b| b != a && dominates(&items[b], &items[a]));
            if !dominated {
                layer[a] = current;
            }
        }
        let before = remaining.len();
        remaining.retain(|i| layer[*i] == 0);
        debug_assert!(remaining.len() < before, "skyline peel must progress");
    }
    layer
}

/// Indices of items within the first `k` layers of a layer assignment —
/// the candidate set that can reach the top-k under some linear function.
#[must_use]
pub fn top_k_candidates(layers: &[usize], k: usize) -> Vec<usize> {
    layers
        .iter()
        .enumerate()
        .filter_map(|(i, &l)| (l <= k).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(t: &[f64], w: &[f64]) -> f64 {
        t.iter().zip(w).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn dominance_layers_simple_chain() {
        let items = vec![
            vec![3.0, 3.0], // dominates everything: layer 1
            vec![2.0, 2.0], // layer 2
            vec![1.0, 1.0], // layer 3
        ];
        assert_eq!(dominance_layers(&items), vec![1, 2, 3]);
    }

    #[test]
    fn dominance_layers_antichain_single_layer() {
        let items = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        assert_eq!(dominance_layers(&items), vec![1, 1, 1]);
    }

    #[test]
    fn dominance_layers_ties_share_layer() {
        let items = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(dominance_layers(&items), vec![1, 1]);
    }

    #[test]
    fn convex_layers_hull_first() {
        let items = vec![
            vec![4.0, 0.5],
            vec![0.5, 4.0],
            vec![3.0, 3.0],
            vec![1.0, 1.0], // strictly inside: deeper layer
        ];
        let layers = convex_layers_2d(&items);
        assert_eq!(layers[0], 1);
        assert_eq!(layers[1], 1);
        assert_eq!(layers[2], 1);
        assert!(layers[3] > 1);
    }

    #[test]
    fn top1_always_in_first_convex_layer() {
        // Deterministic pseudo-random points; for many weight vectors the
        // top-1 item must be in layer 1.
        let mut seed = 0x5eedu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 10_000.0
        };
        let items: Vec<Vec<f64>> = (0..60).map(|_| vec![next(), next()]).collect();
        let layers = convex_layers_2d(&items);
        for step in 0..20 {
            let ang = step as f64 / 19.0 * std::f64::consts::FRAC_PI_2;
            let w = [ang.cos(), ang.sin()];
            let best = (0..items.len())
                .max_by(|&a, &b| score(&items[a], &w).total_cmp(&score(&items[b], &w)))
                .unwrap();
            assert_eq!(
                layers[best], 1,
                "top-1 item {best} for w={w:?} not in layer 1"
            );
        }
    }

    #[test]
    fn topk_within_first_k_dominance_layers() {
        let mut seed = 0xabcdu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 10_000.0
        };
        let items: Vec<Vec<f64>> = (0..80).map(|_| vec![next(), next(), next()]).collect();
        let layers = dominance_layers(&items);
        let k = 5usize;
        let candidates = top_k_candidates(&layers, k);
        for step in 0..10 {
            let a = 0.1 + step as f64 / 10.0;
            let w = [a, 1.0 - a / 2.0, 0.4];
            let mut order: Vec<usize> = (0..items.len()).collect();
            order.sort_by(|&x, &y| score(&items[y], &w).total_cmp(&score(&items[x], &w)));
            for &top in order.iter().take(k) {
                assert!(
                    candidates.contains(&top),
                    "top-{k} item {top} missing from candidate set"
                );
            }
        }
    }

    #[test]
    fn candidate_filter_shrinks_input() {
        let mut seed = 0x7777u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 10_000.0
        };
        let items: Vec<Vec<f64>> = (0..200).map(|_| vec![next(), next()]).collect();
        let layers = dominance_layers(&items);
        let candidates = top_k_candidates(&layers, 3);
        assert!(candidates.len() < items.len() / 2, "{}", candidates.len());
    }

    #[test]
    fn empty_input() {
        assert!(dominance_layers(&[]).is_empty());
        assert!(convex_layers_2d(&[]).is_empty());
        assert!(top_k_candidates(&[], 3).is_empty());
    }
}
