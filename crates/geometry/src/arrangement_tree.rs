//! The arrangement tree (paper §4.2, Algorithms 5 and 9).
//!
//! A binary tree in which every internal node carries a hyperplane; the left
//! edge means `h⁻` and the right edge `h⁺`, so each *null link* is a region
//! of the arrangement described by the constraints along its root path.
//! Inserting a hyperplane only descends into subtrees whose region it
//! touches, pruning the linear region scan of the flat
//! [`crate::arrangement::Arrangement`] — the paper's Figure 18 measures
//! exactly this effect.
//!
//! [`ArrangementTree::insert_with`] is the early-stopping variant used by
//! MARKCELL/ATC⁺ (Algorithm 9): every time a leaf region is split, witness
//! points of the two child regions are offered to a caller-supplied probe;
//! the first accepted witness aborts the remaining construction.

use fairrank_lp::{interior_point, Constraint};

use crate::arrangement::{fast_feasible, proper_cut, touches};
use crate::hyperplane::{Hyperplane, Sign};
use crate::HALF_PI;

type Link = Option<u32>;

#[derive(Debug, Clone)]
struct Node {
    h: Hyperplane,
    left: Link,
    right: Link,
}

/// A hierarchical index over the arrangement of hyperplanes.
#[derive(Debug, Clone)]
pub struct ArrangementTree {
    dim: usize,
    box_lo: f64,
    box_hi: f64,
    split_margin: f64,
    /// Constraints restricting the whole tree to a sub-region of the box
    /// (MARKCELL restricts the arrangement to one grid cell — paper §5.1).
    base: Vec<Constraint>,
    nodes: Vec<Node>,
    root: Link,
    /// Cumulative number of region-feasibility LPs, for the Figure 18
    /// cost comparison.
    pub lp_calls: u64,
}

impl ArrangementTree {
    /// Empty tree over `[0, π/2]^dim`.
    ///
    /// # Panics
    /// If `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> ArrangementTree {
        ArrangementTree::with_box(dim, 0.0, HALF_PI)
    }

    /// Empty tree over a custom box (same bound on every axis).
    ///
    /// # Panics
    /// If `dim == 0` or the box is empty.
    #[must_use]
    pub fn with_box(dim: usize, lo: f64, hi: f64) -> ArrangementTree {
        assert!(dim > 0, "arrangement tree needs at least one angle axis");
        assert!(lo < hi, "empty box");
        ArrangementTree {
            dim,
            box_lo: lo,
            box_hi: hi,
            split_margin: 1e-7,
            base: Vec::new(),
            nodes: Vec::new(),
            root: None,
            lp_calls: 0,
        }
    }

    /// Empty tree restricted to an axis-aligned sub-box `[bl, tr]` of the
    /// angle space — the per-cell arrangement of MARKCELL (paper §5.1).
    ///
    /// # Panics
    /// If `dim == 0` or the box is empty on some axis.
    #[must_use]
    pub fn for_cell(bl: &[f64], tr: &[f64]) -> ArrangementTree {
        let dim = bl.len();
        assert!(dim > 0, "arrangement tree needs at least one angle axis");
        assert_eq!(bl.len(), tr.len());
        let mut base = Vec::with_capacity(2 * dim);
        for j in 0..dim {
            assert!(bl[j] < tr[j], "empty cell box on axis {j}");
            let mut lo_row = vec![0.0; dim];
            lo_row[j] = 1.0;
            base.push(Constraint::ge(lo_row.clone(), bl[j]));
            lo_row[j] = 1.0;
            base.push(Constraint::le(lo_row, tr[j]));
        }
        ArrangementTree {
            dim,
            box_lo: 0.0,
            box_hi: HALF_PI,
            split_margin: 1e-9,
            base,
            nodes: Vec::new(),
            root: None,
            lp_calls: 0,
        }
    }

    /// Ambient dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of regions (null links): `#nodes + 1`.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.nodes.len() + 1
    }

    /// Number of internal nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert a hyperplane (Algorithm 5, AT⁺). Returns the number of
    /// regions split.
    pub fn insert(&mut self, h: &Hyperplane) -> usize {
        assert_eq!(h.dim(), self.dim, "hyperplane dimension mismatch");
        let mut sigma: Vec<Constraint> = self.base.clone();
        let mut splits = 0usize;
        self.root = self.insert_rec(
            self.root,
            h,
            &mut sigma,
            &mut splits,
            &mut |_| false,
            &mut None,
        );
        splits
    }

    /// Insert a hyperplane, offering a strict interior witness point of
    /// every newly created child region to `probe` (Algorithm 9, ATC⁺).
    /// Returns the first witness `probe` accepts, if any; construction of
    /// the remaining subtrees is skipped from that moment on.
    pub fn insert_with<F>(&mut self, h: &Hyperplane, probe: &mut F) -> Option<Vec<f64>>
    where
        F: FnMut(&[f64]) -> bool,
    {
        assert_eq!(h.dim(), self.dim, "hyperplane dimension mismatch");
        let mut sigma: Vec<Constraint> = self.base.clone();
        let mut splits = 0usize;
        let mut found: Option<Vec<f64>> = None;
        self.root = self.insert_rec(self.root, h, &mut sigma, &mut splits, probe, &mut found);
        found
    }

    fn insert_rec<F>(
        &mut self,
        link: Link,
        h: &Hyperplane,
        sigma: &mut Vec<Constraint>,
        splits: &mut usize,
        probe: &mut F,
        found: &mut Option<Vec<f64>>,
    ) -> Link
    where
        F: FnMut(&[f64]) -> bool,
    {
        if found.is_some() {
            return link;
        }
        match link {
            None => {
                // Leaf region σ: split only on a proper cut.
                self.lp_calls += 2;
                if !proper_cut(
                    sigma,
                    h,
                    self.dim,
                    self.box_lo,
                    self.box_hi,
                    self.split_margin,
                ) {
                    return None;
                }
                *splits += 1;
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    h: h.clone(),
                    left: None,
                    right: None,
                });
                // Offer witnesses of the two new child regions.
                for side in [Sign::Minus, Sign::Plus] {
                    sigma.push(h.constraint(side, 0.0));
                    self.lp_calls += 1;
                    if let Some(ip) = interior_point(sigma, self.dim, self.box_lo, self.box_hi) {
                        if probe(&ip.point) {
                            *found = Some(ip.point);
                            sigma.pop();
                            break;
                        }
                    }
                    sigma.pop();
                }
                Some(idx)
            }
            Some(i) => {
                let node_h = self.nodes[i as usize].h.clone();
                for side in [Sign::Minus, Sign::Plus] {
                    if found.is_some() {
                        break;
                    }
                    sigma.push(node_h.constraint(side, 0.0));
                    self.lp_calls += 1;
                    if touches(sigma, h, self.dim, self.box_lo, self.box_hi) {
                        let child = match side {
                            Sign::Minus => self.nodes[i as usize].left,
                            Sign::Plus => self.nodes[i as usize].right,
                        };
                        let new_child = self.insert_rec(child, h, sigma, splits, probe, found);
                        match side {
                            Sign::Minus => self.nodes[i as usize].left = new_child,
                            Sign::Plus => self.nodes[i as usize].right = new_child,
                        }
                    }
                    sigma.pop();
                }
                Some(i)
            }
        }
    }

    /// Enumerate all regions as constraint sets (root-to-null paths).
    /// Regions that became empty through sibling refinements are filtered
    /// out by a feasibility check.
    #[must_use]
    pub fn regions(&self) -> Vec<Vec<Constraint>> {
        let mut out = Vec::with_capacity(self.region_count());
        let mut sigma: Vec<Constraint> = self.base.clone();
        self.collect(self.root, &mut sigma, &mut out);
        out
    }

    fn collect(&self, link: Link, sigma: &mut Vec<Constraint>, out: &mut Vec<Vec<Constraint>>) {
        match link {
            None => {
                if fast_feasible(sigma, self.dim, self.box_lo, self.box_hi) {
                    out.push(sigma.clone());
                }
            }
            Some(i) => {
                let node = &self.nodes[i as usize];
                sigma.push(node.h.constraint(Sign::Minus, 0.0));
                self.collect(node.left, sigma, out);
                sigma.pop();
                sigma.push(node.h.constraint(Sign::Plus, 0.0));
                self.collect(node.right, sigma, out);
                sigma.pop();
            }
        }
    }

    /// A strict interior witness point for each region, paired with the
    /// region's constraints — the probe set SATREGIONS hands to the oracle.
    #[must_use]
    pub fn region_witnesses(&self) -> Vec<(Vec<Constraint>, Vec<f64>)> {
        self.regions()
            .into_iter()
            .filter_map(|cs| {
                interior_point(&cs, self.dim, self.box_lo, self.box_hi).map(|ip| (cs, ip.point))
            })
            .collect()
    }

    /// Locate the region containing `theta` and return its constraints.
    /// Points lying exactly on a node hyperplane are routed to the `h⁻`
    /// side, matching the closed `≤` semantics of region constraints.
    #[must_use]
    pub fn region_of(&self, theta: &[f64]) -> Vec<Constraint> {
        let mut sigma = self.base.clone();
        let mut link = self.root;
        while let Some(i) = link {
            let node = &self.nodes[i as usize];
            if node.h.eval(theta) > 0.0 {
                sigma.push(node.h.constraint(Sign::Plus, 0.0));
                link = node.right;
            } else {
                sigma.push(node.h.constraint(Sign::Minus, 0.0));
                link = node.left;
            }
        }
        sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Arrangement;

    fn hp(normal: Vec<f64>, offset: f64) -> Hyperplane {
        Hyperplane::new(normal, offset).unwrap()
    }

    #[test]
    fn empty_tree_one_region() {
        let t = ArrangementTree::new(2);
        assert_eq!(t.region_count(), 1);
        assert_eq!(t.regions().len(), 1);
    }

    #[test]
    fn single_insert_two_regions() {
        let mut t = ArrangementTree::new(2);
        assert_eq!(t.insert(&hp(vec![1.0, 1.0], 1.0)), 1);
        assert_eq!(t.region_count(), 2);
        assert_eq!(t.regions().len(), 2);
    }

    #[test]
    fn non_crossing_plane_ignored() {
        let mut t = ArrangementTree::new(2);
        assert_eq!(t.insert(&hp(vec![1.0, 1.0], 10.0)), 0);
        assert_eq!(t.region_count(), 1);
    }

    #[test]
    fn matches_flat_arrangement_region_count() {
        let planes = [
            hp(vec![1.0, 0.0], 0.5),
            hp(vec![0.0, 1.0], 0.5),
            hp(vec![1.0, 1.0], 1.3),
            hp(vec![1.0, -0.7], 0.2),
            hp(vec![0.4, 1.0], 0.9),
        ];
        let mut flat = Arrangement::new(2);
        let mut tree = ArrangementTree::new(2);
        for p in &planes {
            flat.insert(p.clone());
            tree.insert(p);
        }
        assert_eq!(flat.region_count(), tree.region_count());
        assert_eq!(tree.regions().len(), tree.region_count());
    }

    #[test]
    fn region_witnesses_are_interior() {
        let mut t = ArrangementTree::new(3);
        t.insert(&hp(vec![1.0, 0.5, 0.5], 0.9));
        t.insert(&hp(vec![0.2, 1.0, -0.3], 0.4));
        let ws = t.region_witnesses();
        assert_eq!(ws.len(), t.region_count());
        for (cs, p) in ws {
            for c in cs {
                assert!(c.satisfied(&p, 1e-9), "{c} violated at {p:?}");
            }
        }
    }

    #[test]
    fn region_of_descends_correctly() {
        let mut t = ArrangementTree::new(2);
        t.insert(&hp(vec![1.0, 0.0], 0.7));
        t.insert(&hp(vec![0.0, 1.0], 0.7));
        let cs = t.region_of(&[0.2, 1.0]);
        // Should pin θ₁ ≤ 0.7 and θ₂ ≥ 0.7.
        assert!(cs.iter().all(|c| c.satisfied(&[0.2, 1.0], 1e-9)));
        assert!(cs.iter().any(|c| !c.satisfied(&[1.0, 1.0], 1e-9)));
    }

    #[test]
    fn early_stop_returns_satisfying_witness() {
        let mut t = ArrangementTree::new(2);
        t.insert(&hp(vec![1.0, 0.0], 0.7));
        // Probe accepts only points with θ₂ > 1.0.
        let mut calls = 0usize;
        let found = t.insert_with(&hp(vec![0.0, 1.0], 1.0), &mut |p| {
            calls += 1;
            p[1] > 1.0
        });
        let p = found.expect("the h⁺ side satisfies the probe");
        assert!(p[1] > 1.0);
        assert!(calls >= 1);
    }

    #[test]
    fn early_stop_none_when_probe_rejects() {
        let mut t = ArrangementTree::new(2);
        let found = t.insert_with(&hp(vec![1.0, 1.0], 1.0), &mut |_| false);
        assert!(found.is_none());
        assert_eq!(t.region_count(), 2, "tree still grows when probe rejects");
    }

    #[test]
    fn lp_call_accounting_grows() {
        let mut t = ArrangementTree::new(2);
        t.insert(&hp(vec![1.0, 0.0], 0.5));
        let after_one = t.lp_calls;
        t.insert(&hp(vec![0.0, 1.0], 0.5));
        assert!(t.lp_calls > after_one);
    }

    #[test]
    fn deep_tree_consistency() {
        // Insert a fan of lines and verify region_count == nodes + 1 and all
        // enumerated regions feasible.
        let mut t = ArrangementTree::new(2);
        for k in 1..=8 {
            let ang = 0.15 * k as f64;
            t.insert(&hp(vec![ang.sin(), ang.cos()], 0.8));
        }
        assert_eq!(t.region_count(), t.node_count() + 1);
        let regions = t.regions();
        assert!(!regions.is_empty());
        for cs in &regions {
            assert!(fast_feasible(cs, 2, 0.0, HALF_PI));
        }
    }
}
