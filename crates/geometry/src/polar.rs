//! The angle coordinate system (paper §4.1 and Appendix A.1).
//!
//! A ray from the origin through the positive orthant of `R^d` is identified
//! by `d − 1` angles `Θ = (θ_1, …, θ_{d−1})`, each in `[0, π/2]`. The
//! paper's convention (Eq. 8, with the sentinel `Θ_0 = π/2`):
//!
//! ```text
//!   p_k = sin Θ_k · Π_{l=k+1}^{d−1} cos Θ_l        0 ≤ k < d
//! ```
//!
//! so that `p_0 = Π cos Θ_l` and `p_{d−1} = sin Θ_{d−1}`. The distance
//! between two ranking functions is the angle between their rays
//! (Eq. 9–10); we compute it as `acos` of the dot product of the unit
//! vectors, which is algebraically identical to the paper's expanded product
//! formula and numerically better behaved.

use crate::vector::{dot, norm};
use crate::{GEOM_EPS, HALF_PI};

/// Convert a polar representation `(r, Θ)` to Cartesian coordinates.
///
/// `angles.len() + 1` is the Cartesian dimension. All angles are expected in
/// `[0, π/2]` for first-orthant rays, but the formula is total.
#[must_use]
pub fn to_cartesian(r: f64, angles: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(angles.len() + 1);
    to_cartesian_into(r, angles, &mut out);
    out
}

/// [`to_cartesian`] into a caller-owned buffer (cleared and refilled) —
/// the probe loops convert angles to weights once per oracle probe, and
/// reusing the buffer keeps the steady path allocation-free.
pub fn to_cartesian_into(r: f64, angles: &[f64], out: &mut Vec<f64>) {
    let d = angles.len() + 1;
    out.clear();
    out.resize(d, 0.0);
    // Suffix products of cosines: suffix[k] = Π_{l ≥ k} cos θ_l (angle index).
    // Build in reverse while emitting components.
    let mut suffix = 1.0;
    for k in (1..d).rev() {
        let theta = angles[k - 1];
        out[k] = r * theta.sin() * suffix;
        suffix *= theta.cos();
    }
    out[0] = r * suffix;
}

/// Convert a Cartesian point to its polar representation `(r, Θ)`.
///
/// Inverse of [`to_cartesian`] for non-negative points; zero prefixes map to
/// angle `π/2` when the component is positive and `0` when it is zero, so
/// axis-aligned rays round-trip exactly.
#[must_use]
pub fn to_polar(point: &[f64]) -> (f64, Vec<f64>) {
    let d = point.len();
    let r = norm(point);
    let mut angles = vec![0.0; d.saturating_sub(1)];
    let mut prefix_sq = point[0] * point[0];
    for k in 1..d {
        let p = point[k];
        let prefix = prefix_sq.max(0.0).sqrt();
        // atan2 is exact on both boundaries (atan2(0, x≥0) = 0 for the
        // axis-aligned case, atan2(p>0, 0) = π/2 for a zero prefix, and
        // IEEE atan2(+0, +0) = 0), so no epsilon guard belongs here: an
        // absolute-tolerance collapse to 0 would misdirect rays whose
        // leading components are merely small on the caller's scale.
        angles[k - 1] = p.atan2(prefix);
        prefix_sq += p * p;
    }
    (r, angles)
}

/// Angular distance between two rays given by their angle vectors
/// (paper Eq. 10). Result in `[0, π]`; for first-orthant rays it lies in
/// `[0, π/2]`.
#[must_use]
pub fn angular_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let va = to_cartesian(1.0, a);
    let vb = to_cartesian(1.0, b);
    angular_distance_cartesian(&va, &vb)
}

/// Angular distance between two rays given by (not necessarily unit)
/// direction vectors.
#[must_use]
pub fn angular_distance_cartesian(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0).acos()
}

/// The paper's expanded cosine formula (Eq. 9), kept verbatim for
/// cross-validation against the dot-product implementation.
///
/// `cos θ_ij = Σ_k sin Θ⁽ⁱ⁾_k sin Θ⁽ʲ⁾_k Π_{l>k} cos Θ⁽ⁱ⁾_l cos Θ⁽ʲ⁾_l`
/// with the `Θ_0 = π/2` sentinel prepended.
#[must_use]
pub fn cos_angle_paper_formula(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dm1 = a.len();
    // k ranges over 0..=dm1 where index 0 is the sentinel Θ_0 = π/2.
    let angle = |v: &[f64], k: usize| if k == 0 { HALF_PI } else { v[k - 1] };
    let mut total = 0.0;
    for k in 0..=dm1 {
        let mut term = angle(a, k).sin() * angle(b, k).sin();
        for l in k + 1..=dm1 {
            term *= angle(a, l).cos() * angle(b, l).cos();
        }
        total += term;
    }
    total
}

/// Clamp an angle vector into the legal box `[0, π/2]^{d−1}`.
#[must_use]
pub fn clamp_angles(angles: &[f64]) -> Vec<f64> {
    angles.iter().map(|&t| t.clamp(0.0, HALF_PI)).collect()
}

/// Convert a weight vector to its angle representation, normalizing scale.
///
/// Returns `None` for the zero vector or vectors with negative components
/// beyond tolerance (the ranking model requires non-negative weights).
#[must_use]
pub fn weights_to_angles(weights: &[f64]) -> Option<Vec<f64>> {
    if weights.len() < 2 {
        return None;
    }
    if weights.iter().any(|&w| !w.is_finite() || w < -GEOM_EPS) {
        return None;
    }
    let (r, angles) = to_polar(weights);
    if r <= GEOM_EPS {
        return None;
    }
    Some(clamp_angles(&angles))
}

/// Convert an angle vector back to a unit weight vector.
#[must_use]
pub fn angles_to_weights(angles: &[f64]) -> Vec<f64> {
    to_cartesian(1.0, angles)
        .into_iter()
        .map(|w| w.max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn cartesian_2d_matches_cos_sin() {
        let p = to_cartesian(1.0, &[FRAC_PI_4]);
        assert_close(p[0], FRAC_PI_4.cos());
        assert_close(p[1], FRAC_PI_4.sin());
    }

    #[test]
    fn cartesian_axis_rays() {
        // θ = 0 → x-axis; θ = π/2 → y-axis.
        let x = to_cartesian(1.0, &[0.0]);
        assert_close(x[0], 1.0);
        assert_close(x[1], 0.0);
        let y = to_cartesian(1.0, &[FRAC_PI_2]);
        assert_close(y[0], 0.0);
        assert_close(y[1], 1.0);
    }

    #[test]
    fn cartesian_into_matches_and_reuses_buffer() {
        let mut buf = vec![9.0; 7]; // stale, oversized content must vanish
        to_cartesian_into(2.0, &[0.3, 1.1], &mut buf);
        assert_eq!(buf, to_cartesian(2.0, &[0.3, 1.1]));
        let cap = buf.capacity();
        to_cartesian_into(1.0, &[0.8, 0.2], &mut buf);
        assert_eq!(buf, to_cartesian(1.0, &[0.8, 0.2]));
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn cartesian_3d_unit_norm() {
        let p = to_cartesian(1.0, &[0.3, 1.1]);
        assert_close(norm(&p), 1.0);
        // Last component is sin of the last angle.
        assert_close(p[2], 1.1_f64.sin());
    }

    #[test]
    fn roundtrip_2d() {
        let (r, a) = to_polar(&[3.0, 3.0]);
        assert_close(r, 18.0_f64.sqrt());
        assert_close(a[0], FRAC_PI_4);
        let p = to_cartesian(r, &a);
        assert_close(p[0], 3.0);
        assert_close(p[1], 3.0);
    }

    #[test]
    fn roundtrip_4d() {
        let original = [0.5, 1.5, 2.5, 0.25];
        let (r, a) = to_polar(&original);
        let back = to_cartesian(r, &a);
        for (o, b) in original.iter().zip(&back) {
            assert_close(*o, *b);
        }
    }

    #[test]
    fn paper_example_distances() {
        // §2: distance between f = x + y and f' = 100x + 100y is 0;
        // between f = x + y and f'' = x it is π/4.
        let (_, f) = to_polar(&[1.0, 1.0]);
        let (_, f1) = to_polar(&[100.0, 100.0]);
        let (_, f2) = to_polar(&[1.0, 0.0]);
        assert_close(angular_distance(&f, &f1), 0.0);
        assert_close(angular_distance(&f, &f2), FRAC_PI_4);
    }

    #[test]
    fn distance_agrees_with_paper_formula() {
        let cases: [(&[f64], &[f64]); 4] = [
            (&[0.2, 0.4], &[1.1, 0.3]),
            (&[0.0, 0.0], &[FRAC_PI_2, FRAC_PI_2]),
            (&[0.7, 0.1, 1.2], &[0.3, 0.9, 0.4]),
            (&[0.5], &[1.0]),
        ];
        for (a, b) in cases {
            let via_dot = angular_distance(a, b).cos();
            let via_paper = cos_angle_paper_formula(a, b);
            assert!(
                (via_dot - via_paper).abs() < 1e-9,
                "{a:?} vs {b:?}: {via_dot} vs {via_paper}"
            );
        }
    }

    #[test]
    fn distance_symmetric_and_identity() {
        let a = [0.3, 0.8, 0.2];
        let b = [1.2, 0.1, 0.9];
        assert_close(angular_distance(&a, &b), angular_distance(&b, &a));
        assert_close(angular_distance(&a, &a), 0.0);
    }

    #[test]
    fn weights_to_angles_validation() {
        assert!(weights_to_angles(&[0.0, 0.0]).is_none());
        assert!(weights_to_angles(&[1.0]).is_none());
        assert!(weights_to_angles(&[-0.5, 1.0]).is_none());
        assert!(weights_to_angles(&[f64::NAN, 1.0]).is_none());
        let a = weights_to_angles(&[1.0, 1.0]).unwrap();
        assert_close(a[0], FRAC_PI_4);
    }

    #[test]
    fn angles_to_weights_non_negative() {
        let w = angles_to_weights(&[0.0, FRAC_PI_2]);
        assert!(w.iter().all(|&x| x >= 0.0));
        assert_close(norm(&w), 1.0);
    }

    #[test]
    fn zero_prefix_angle_convention() {
        // Point on the y-axis in 3D: prefix (x) = 0.
        let (_, a) = to_polar(&[0.0, 1.0, 0.0]);
        assert_close(a[0], FRAC_PI_2);
        assert_close(a[1], 0.0);
        let p = to_cartesian(1.0, &a);
        assert_close(p[0], 0.0);
        assert_close(p[1], 1.0);
        assert_close(p[2], 0.0);
    }
}
