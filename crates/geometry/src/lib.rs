//! # fairrank-geometry
//!
//! The combinatorial-geometry substrate behind *Designing Fair Ranking
//! Schemes* (Asudeh et al., SIGMOD 2019).
//!
//! A linear scoring function `f_w(t) = Σ w_j t[j]` with non-negative weights
//! is a **ray** from the origin of `R^d`; scaling the weight vector does not
//! change the induced ranking, so the space of ranking functions is the
//! positive orthant of the unit sphere, parametrized by `d − 1` angles in
//! `[0, π/2]` (the paper's *angle coordinate system*). This crate provides:
//!
//! * [`vector`] / [`matrix`] — the small dense linear algebra the paper
//!   leans on (`Θ⁻¹ × ι` in HYPERPOLAR, solving `d × d` systems);
//! * [`polar`] — hyperspherical parametrization (paper Eq. 8) and angular
//!   distance (Eq. 9–10), the metric in which "closest satisfactory
//!   function" is defined;
//! * [`dual`] — the dual transform `d(t): Σ t[k]·x_k = 1` and 2-D ordering
//!   exchanges (Eq. 1–3);
//! * [`hyperplane`] — ordering-exchange hyperplanes in angle coordinates and
//!   exact box-crossing tests;
//! * [`arrangement`] — incremental construction of the arrangement of
//!   hyperplanes (the engine of SATREGIONS, Algorithm 4);
//! * [`arrangement_tree`] — the paper's arrangement-tree index (Algorithms 5
//!   and 9) with subtree pruning and early-stop search;
//! * [`grid`] — the equal-area angle-space partitioning of §5 / Appendix A.2
//!   (ANGLEPARTITIONING, Algorithm 12) with cell lookup, neighbours and the
//!   Theorem 6 approximation bound;
//! * [`interval`] — sorted angular intervals, the 2-D satisfactory-region
//!   index behind 2DONLINE;
//! * [`layers`] — convex/dominance layers for the §8 top-k pruning
//!   extension;
//! * [`sphere`] — `Γ`, first-orthant sphere areas and the Eq. 11–14 cell
//!   geometry.

pub mod arrangement;
pub mod arrangement_tree;
pub mod dual;
pub mod grid;
pub mod hyperplane;
pub mod interval;
pub mod layers;
pub mod matrix;
pub mod polar;
pub mod sphere;
pub mod vector;

pub use arrangement::{Arrangement, RegionId};
pub use arrangement_tree::ArrangementTree;
pub use grid::{AngleGrid, CellId};
pub use hyperplane::{Hyperplane, Sign};
pub use interval::{AngularIntervals, NearestId};
pub use polar::{angular_distance, to_cartesian, to_polar};

/// Upper bound of every angle coordinate: the space of non-negative weight
/// rays is `[0, π/2]^{d−1}`.
pub const HALF_PI: f64 = std::f64::consts::FRAC_PI_2;

/// Shared numeric tolerance for geometric predicates.
pub const GEOM_EPS: f64 = 1e-9;
