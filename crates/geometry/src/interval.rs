//! Sorted angular intervals over `[0, π/2]` — the 2-D satisfactory-region
//! index produced by 2DRAYSWEEP and searched by 2DONLINE.
//!
//! The paper stores region borders as `⟨θ, 0/1⟩` flags (Algorithm 1's `S`);
//! we normalize to disjoint, sorted, closed intervals, which makes the
//! online binary search (Algorithm 2) and the nearest-boundary query easy
//! to state and test.

use crate::{GEOM_EPS, HALF_PI};

/// Which interval (or interval endpoint) [`AngularIntervals::nearest`]
/// resolves a query angle to — see [`AngularIntervals::nearest_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NearestId {
    /// The query lies inside the interval at this index (the
    /// [`AngularIntervals::locate`] answer); `nearest` returns the query
    /// itself.
    Inside(usize),
    /// The query snaps to the *start* endpoint of the interval at this
    /// index.
    Start(usize),
    /// The query snaps to the *end* endpoint of the interval at this
    /// index.
    End(usize),
}

/// A set of disjoint, sorted, closed angular intervals within `[0, π/2]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AngularIntervals {
    /// Disjoint `[start, end]` pairs, sorted by `start`.
    intervals: Vec<(f64, f64)>,
}

impl AngularIntervals {
    /// Empty set.
    #[must_use]
    pub fn new() -> Self {
        AngularIntervals::default()
    }

    /// Build from possibly unsorted, possibly touching intervals; clamps to
    /// `[0, π/2]`, drops empty/invalid pairs and merges overlaps.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut v: Vec<(f64, f64)> = pairs
            .into_iter()
            .filter_map(|(s, e)| {
                if s.is_nan() || e.is_nan() {
                    return None;
                }
                let s = s.clamp(0.0, HALF_PI);
                let e = e.clamp(0.0, HALF_PI);
                (e >= s).then_some((s, e))
            })
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(v.len());
        for (s, e) in v {
            match merged.last_mut() {
                Some(last) if s <= last.1 + GEOM_EPS => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        AngularIntervals { intervals: merged }
    }

    /// The interval list (disjoint, sorted).
    #[must_use]
    pub fn as_slice(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Number of disjoint intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total angular measure covered.
    #[must_use]
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(|(s, e)| e - s).sum()
    }

    /// Whether `theta` lies in some interval (binary search, `O(log k)`).
    #[must_use]
    pub fn contains(&self, theta: f64) -> bool {
        self.locate(theta).is_some()
    }

    /// Index of the interval containing `theta`, if any.
    #[must_use]
    pub fn locate(&self, theta: f64) -> Option<usize> {
        if self.intervals.is_empty() || theta.is_nan() {
            return None;
        }
        // partition_point: first interval with start > theta.
        let idx = self
            .intervals
            .partition_point(|&(s, _)| s <= theta + GEOM_EPS);
        if idx == 0 {
            return None;
        }
        let (s, e) = self.intervals[idx - 1];
        (theta >= s - GEOM_EPS && theta <= e + GEOM_EPS).then_some(idx - 1)
    }

    /// The angle inside the set closest to `theta` (the 2DONLINE answer):
    /// `theta` itself when contained, otherwise the nearest interval
    /// endpoint, with exact ties broken toward the endpoint *above*
    /// `theta` (deterministic, and stable under adding candidates).
    /// `None` when the set is empty (no satisfactory function).
    ///
    /// Defined by [`AngularIntervals::nearest_id`]: the two methods
    /// resolve the same interval/endpoint by construction, which is what
    /// lets region-identity callers key caches on the id.
    #[must_use]
    pub fn nearest(&self, theta: f64) -> Option<f64> {
        match self.nearest_id(theta)? {
            NearestId::Inside(_) => Some(theta),
            NearestId::Start(i) => Some(self.intervals[i].0),
            NearestId::End(i) => Some(self.intervals[i].1),
        }
    }

    /// The *identity* of the answer [`AngularIntervals::nearest`] gives
    /// for `theta`: which interval contains it, or which endpoint it
    /// snaps to — including the exact-tie break toward the endpoint
    /// above `theta`.
    ///
    /// Two queries with the same `NearestId` snap to the same angle (or
    /// are both contained), so the id partitions `[0, π/2]` into ranges
    /// over which the nearest-answer structure is constant — the 2-D
    /// backend's region identity for answer caching.
    #[must_use]
    pub fn nearest_id(&self, theta: f64) -> Option<NearestId> {
        if self.intervals.is_empty() || theta.is_nan() {
            return None;
        }
        if let Some(i) = self.locate(theta) {
            return Some(NearestId::Inside(i));
        }
        let idx = self.intervals.partition_point(|&(s, _)| s < theta);
        // Exactly two candidates can be nearest: the start of the first
        // interval above theta and the end of the last interval below it.
        // Fold every candidate through one comparison that updates the
        // (distance, identity) pair together — a candidate list can then
        // grow without the distance going stale against the stored id.
        let above =
            (idx < self.intervals.len()).then(|| (self.intervals[idx].0, NearestId::Start(idx)));
        let below = (idx > 0).then(|| (self.intervals[idx - 1].1, NearestId::End(idx - 1)));
        let mut best: Option<(f64, NearestId)> = None;
        for (angle, id) in [above, below].into_iter().flatten() {
            let d = (angle - theta).abs();
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Like [`AngularIntervals::nearest`], but endpoint answers are nudged
    /// strictly *into* the interval by up to `nudge` (never more than half
    /// the interval width).
    ///
    /// Interval borders are ordering-exchange angles where two items tie,
    /// so the ranking exactly at a border is ambiguous; a function a hair
    /// inside the interval induces the ordering the sweep actually
    /// validated. The added distance is at most `nudge`.
    #[must_use]
    pub fn nearest_interior(&self, theta: f64, nudge: f64) -> Option<f64> {
        let answer = self.nearest(theta)?;
        let idx = self
            .intervals
            .iter()
            .position(|&(s, e)| answer >= s - GEOM_EPS && answer <= e + GEOM_EPS)?;
        let (s, e) = self.intervals[idx];
        let step = nudge.min((e - s) * 0.5).max(0.0);
        if (answer - s).abs() <= GEOM_EPS {
            Some((answer + step).min(e))
        } else if (answer - e).abs() <= GEOM_EPS {
            Some((answer - step).max(s))
        } else {
            Some(answer) // already strictly interior
        }
    }

    /// Complement within `[0, π/2]`.
    #[must_use]
    pub fn complement(&self) -> AngularIntervals {
        let mut out = Vec::with_capacity(self.intervals.len() + 1);
        let mut cursor = 0.0;
        for &(s, e) in &self.intervals {
            if s > cursor + GEOM_EPS {
                out.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if cursor < HALF_PI - GEOM_EPS {
            out.push((cursor, HALF_PI));
        }
        AngularIntervals { intervals: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_merges_and_sorts() {
        let ivs = AngularIntervals::from_pairs([(0.5, 0.7), (0.1, 0.3), (0.65, 0.9)]);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs.as_slice()[0], (0.1, 0.3));
        assert!((ivs.as_slice()[1].0 - 0.5).abs() < 1e-12);
        assert!((ivs.as_slice()[1].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn clamps_to_quadrant() {
        let ivs = AngularIntervals::from_pairs([(-1.0, 0.2), (1.0, 9.0)]);
        assert_eq!(ivs.as_slice()[0].0, 0.0);
        assert!((ivs.as_slice()[1].1 - HALF_PI).abs() < 1e-12);
    }

    #[test]
    fn drops_invalid() {
        let ivs = AngularIntervals::from_pairs([(0.5, 0.4), (f64::NAN, 1.0)]);
        assert!(ivs.is_empty());
    }

    #[test]
    fn contains_and_locate() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.3), (0.8, 1.0)]);
        assert!(ivs.contains(0.2));
        assert!(ivs.contains(0.1));
        assert!(ivs.contains(0.3));
        assert!(!ivs.contains(0.5));
        assert_eq!(ivs.locate(0.9), Some(1));
        assert_eq!(ivs.locate(0.0), None);
    }

    #[test]
    fn nearest_inside_is_identity() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.3)]);
        assert_eq!(ivs.nearest(0.2), Some(0.2));
    }

    #[test]
    fn nearest_picks_closer_endpoint() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.3), (0.8, 1.0)]);
        assert!((ivs.nearest(0.35).unwrap() - 0.3).abs() < 1e-12);
        assert!((ivs.nearest(0.75).unwrap() - 0.8).abs() < 1e-12);
        // Exactly between 0.3 and 0.8 → ties broken toward the right start
        // or left end deterministically; accept either endpoint.
        let mid = ivs.nearest(0.55).unwrap();
        assert!((mid - 0.3).abs() < 1e-12 || (mid - 0.8).abs() < 1e-12);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        assert_eq!(AngularIntervals::new().nearest(0.3), None);
    }

    #[test]
    fn nearest_equidistant_breaks_toward_upper_endpoint() {
        // Query exactly between the end of one interval and the start of
        // the next (0.4 and 0.6 around 0.5, binary-exact): the tie must
        // break deterministically toward the endpoint above the query.
        let ivs = AngularIntervals::from_pairs([(0.125, 0.25), (0.75, 1.0)]);
        let q = 0.5;
        assert_eq!(q - 0.25, 0.75 - q, "setup must be exactly equidistant");
        assert_eq!(ivs.nearest(q), Some(0.75));
    }

    #[test]
    fn nearest_scans_correctly_with_three_intervals() {
        // Regression for the stale-best bug: with the left endpoint
        // evaluated after the right one, a stored distance that is not
        // updated alongside the angle would corrupt any later comparison.
        // Three intervals exercise queries in both gaps.
        let ivs = AngularIntervals::from_pairs([(0.1, 0.2), (0.6, 0.7), (1.2, 1.3)]);
        assert_eq!(ivs.nearest(0.25), Some(0.2)); // left end closer
        assert_eq!(ivs.nearest(0.55), Some(0.6)); // right start closer
        assert_eq!(ivs.nearest(0.75), Some(0.7));
        assert_eq!(ivs.nearest(1.15), Some(1.2));
    }

    #[test]
    fn nearest_matches_exhaustive_endpoint_scan() {
        // The returned angle must be an argmin over *all* endpoints — the
        // invariant the two-candidate shortcut relies on.
        let ivs = AngularIntervals::from_pairs([(0.05, 0.1), (0.4, 0.5), (0.9, 1.1), (1.4, 1.5)]);
        for step in 0..=300 {
            let q = step as f64 / 300.0 * HALF_PI;
            let got = ivs.nearest(q).unwrap();
            let best = ivs
                .as_slice()
                .iter()
                .flat_map(|&(s, e)| [s, e])
                .map(|p| (p - q).abs())
                .fold(f64::INFINITY, f64::min);
            let got_dist = if ivs.contains(q) {
                0.0
            } else {
                (got - q).abs()
            };
            let true_dist = if ivs.contains(q) { 0.0 } else { best };
            assert!(
                (got_dist - true_dist).abs() < 1e-12,
                "q={q}: got {got} (d={got_dist}), optimum d={true_dist}"
            );
        }
    }

    #[test]
    fn boundary_angles_locate_and_snap_in_domain() {
        // θ = 0 and θ = π/2 exactly (axis-aligned queries like w = [1, 0]).
        let touching = AngularIntervals::from_pairs([(0.0, 0.2), (1.0, HALF_PI)]);
        assert!(touching.contains(0.0));
        assert!(touching.contains(HALF_PI));
        assert_eq!(touching.nearest(0.0), Some(0.0));
        assert_eq!(touching.nearest(HALF_PI), Some(HALF_PI));
        // Interior-only set: boundary queries snap to the nearest endpoint
        // and the answer stays inside [0, π/2].
        let interior = AngularIntervals::from_pairs([(0.4, 0.6)]);
        assert_eq!(interior.nearest(0.0), Some(0.4));
        assert_eq!(interior.nearest(HALF_PI), Some(0.6));
        for q in [0.0, HALF_PI] {
            let a = interior.nearest_interior(q, 1e-7).unwrap();
            assert!((0.0..=HALF_PI).contains(&a));
            assert!(interior.contains(a));
        }
    }

    #[test]
    fn measure_sums() {
        let ivs = AngularIntervals::from_pairs([(0.0, 0.25), (0.5, 1.0)]);
        assert!((ivs.measure() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn complement_partitions_quadrant() {
        let ivs = AngularIntervals::from_pairs([(0.2, 0.4), (1.0, HALF_PI)]);
        let comp = ivs.complement();
        assert!((ivs.measure() + comp.measure() - HALF_PI).abs() < 1e-9);
        assert!(comp.contains(0.0));
        assert!(comp.contains(0.7));
        assert!(!comp.contains(0.3));
    }

    #[test]
    fn complement_of_empty_is_full() {
        let comp = AngularIntervals::new().complement();
        assert_eq!(comp.len(), 1);
        assert!((comp.measure() - HALF_PI).abs() < 1e-12);
    }
}
