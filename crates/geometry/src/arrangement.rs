//! Incremental construction of the arrangement of hyperplanes in the angle
//! coordinate system (the engine of SATREGIONS, paper Algorithm 4).
//!
//! A *region* is a maximal connected subset of the box `[0, π/2]^{d−1}` on
//! which no ordering-exchange hyperplane changes sign; inside a region the
//! induced ranking of the items — and therefore the fairness-oracle verdict
//! — is constant. Hyperplanes are inserted one at a time; each insertion
//! splits every region it *properly cuts* (both open sides non-empty, see
//! DESIGN.md F4) into its `h⁻` and `h⁺` children.
//!
//! Feasibility of candidate regions is decided by Seidel's randomized LP
//! with a simplex fallback; strict interior witness points (needed to probe
//! the fairness oracle with an unambiguous ordering) come from the Chebyshev
//! LP.

use fairrank_lp::seidel::{solve_seidel, SeidelOutcome};
use fairrank_lp::{interior_point, is_feasible, Constraint};

use crate::hyperplane::{Hyperplane, Sign};
use crate::HALF_PI;

/// Identifier of a hyperplane within an [`Arrangement`].
pub type HyperplaneId = u32;

/// Identifier of a region within an [`Arrangement`].
pub type RegionId = u32;

/// A convex region: the intersection of half-spaces of previously inserted
/// hyperplanes with the angle box.
#[derive(Debug, Clone, Default)]
pub struct Region {
    /// The half-spaces bounding this region, in insertion order. Only
    /// hyperplanes that properly cut the region appear here.
    pub halfspaces: Vec<(HyperplaneId, Sign)>,
}

/// Statistics of one hyperplane insertion, used by the Figure 18/19
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertStats {
    /// Number of regions examined (all regions present before insertion).
    pub regions_checked: usize,
    /// Number of regions split by the hyperplane.
    pub splits: usize,
}

/// An incrementally built arrangement of hyperplanes over the angle box.
#[derive(Debug, Clone)]
pub struct Arrangement {
    dim: usize,
    box_lo: f64,
    box_hi: f64,
    split_margin: f64,
    hyperplanes: Vec<Hyperplane>,
    regions: Vec<Region>,
}

impl Arrangement {
    /// An empty arrangement over `[0, π/2]^dim` — a single region.
    ///
    /// # Panics
    /// If `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Arrangement {
        Arrangement::with_box(dim, 0.0, HALF_PI)
    }

    /// An empty arrangement over a custom box `[lo, hi]^dim` (used by
    /// MARKCELL to restrict the arrangement to one grid cell).
    ///
    /// # Panics
    /// If `dim == 0` or the box is empty.
    #[must_use]
    pub fn with_box(dim: usize, lo: f64, hi: f64) -> Arrangement {
        assert!(dim > 0, "arrangement needs at least one angle axis");
        assert!(lo < hi, "empty box");
        Arrangement {
            dim,
            box_lo: lo,
            box_hi: hi,
            split_margin: 1e-7,
            hyperplanes: Vec::new(),
            regions: vec![Region::default()],
        }
    }

    /// Ambient dimension (number of angle coordinates, `d − 1`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The inserted hyperplanes.
    #[must_use]
    pub fn hyperplanes(&self) -> &[Hyperplane] {
        &self.hyperplanes
    }

    /// Number of regions currently in the arrangement.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterator over region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> {
        0..self.regions.len() as RegionId
    }

    /// The half-space description of a region.
    #[must_use]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id as usize]
    }

    /// The linear constraints of a region (excluding the implicit box).
    #[must_use]
    pub fn constraints_of(&self, id: RegionId) -> Vec<Constraint> {
        self.regions[id as usize]
            .halfspaces
            .iter()
            .map(|&(h, s)| self.hyperplanes[h as usize].constraint(s, 0.0))
            .collect()
    }

    /// A point strictly inside the region (margin > 0 against every
    /// bounding hyperplane and the box), suitable for probing the fairness
    /// oracle with an unambiguous ordering.
    #[must_use]
    pub fn interior_point_of(&self, id: RegionId) -> Option<Vec<f64>> {
        let cs = self.constraints_of(id);
        interior_point(&cs, self.dim, self.box_lo, self.box_hi).map(|ip| ip.point)
    }

    /// Insert a hyperplane, splitting every region it properly cuts
    /// (Algorithm 4, lines 9–18). Returns insertion statistics.
    pub fn insert(&mut self, h: Hyperplane) -> InsertStats {
        assert_eq!(h.dim(), self.dim, "hyperplane dimension mismatch");
        let hid = self.hyperplanes.len() as HyperplaneId;
        self.hyperplanes.push(h);
        let h = &self.hyperplanes[hid as usize];

        let before = self.regions.len();
        let mut splits = 0usize;
        let mut constraints: Vec<Constraint> = Vec::new();
        for rid in 0..before {
            constraints.clear();
            constraints.extend(
                self.regions[rid]
                    .halfspaces
                    .iter()
                    .map(|&(hh, s)| self.hyperplanes[hh as usize].constraint(s, 0.0)),
            );
            if !proper_cut(
                &constraints,
                h,
                self.dim,
                self.box_lo,
                self.box_hi,
                self.split_margin,
            ) {
                continue;
            }
            // Split: existing region keeps the Plus side, the new region
            // takes the Minus side (Algorithm 4 appends (h,+) to R and
            // creates R' with (h,−)).
            let mut minus_region = self.regions[rid].clone();
            minus_region.halfspaces.push((hid, Sign::Minus));
            self.regions[rid].halfspaces.push((hid, Sign::Plus));
            self.regions.push(minus_region);
            splits += 1;
        }
        InsertStats {
            regions_checked: before,
            splits,
        }
    }

    /// Build the full arrangement of a set of hyperplanes, returning the
    /// per-insertion statistics (used by the Figure 19 experiment).
    pub fn insert_all(&mut self, hs: impl IntoIterator<Item = Hyperplane>) -> Vec<InsertStats> {
        hs.into_iter().map(|h| self.insert(h)).collect()
    }

    /// The box bounds `(lo, hi)`.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.box_lo, self.box_hi)
    }
}

/// Does `h` properly cut the region `{θ ∈ box : constraints}` — are both
/// open sides non-empty?
pub(crate) fn proper_cut(
    constraints: &[Constraint],
    h: &Hyperplane,
    dim: usize,
    lo: f64,
    hi: f64,
    margin: f64,
) -> bool {
    let mut with_side = Vec::with_capacity(constraints.len() + 1);
    with_side.extend_from_slice(constraints);
    with_side.push(h.constraint(Sign::Minus, margin));
    if !fast_feasible(&with_side, dim, lo, hi) {
        return false;
    }
    *with_side.last_mut().expect("non-empty") = h.constraint(Sign::Plus, margin);
    fast_feasible(&with_side, dim, lo, hi)
}

/// Does `h` touch the region at all (used for subtree pruning in the
/// arrangement tree: feasibility of the region together with `a·θ = b`)?
pub(crate) fn touches(
    constraints: &[Constraint],
    h: &Hyperplane,
    dim: usize,
    lo: f64,
    hi: f64,
) -> bool {
    let mut with_eq = Vec::with_capacity(constraints.len() + 1);
    with_eq.extend_from_slice(constraints);
    with_eq.push(h.equality());
    fast_feasible(&with_eq, dim, lo, hi)
}

/// Feasibility via Seidel with simplex fallback.
pub(crate) fn fast_feasible(constraints: &[Constraint], dim: usize, lo: f64, hi: f64) -> bool {
    let zero = vec![0.0; dim];
    match solve_seidel(constraints, &zero, lo, hi, 0x5eed_cafe) {
        Some(SeidelOutcome::Optimal(_)) => true,
        Some(SeidelOutcome::Infeasible) => false,
        None => is_feasible(constraints, dim, lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(normal: Vec<f64>, offset: f64) -> Hyperplane {
        Hyperplane::new(normal, offset).unwrap()
    }

    #[test]
    fn empty_arrangement_single_region() {
        let a = Arrangement::new(2);
        assert_eq!(a.region_count(), 1);
        let p = a.interior_point_of(0).unwrap();
        assert!(p.iter().all(|&v| (0.0..=HALF_PI).contains(&v)));
    }

    #[test]
    fn one_cutting_hyperplane_two_regions() {
        let mut a = Arrangement::new(2);
        let stats = a.insert(hp(vec![1.0, 1.0], 1.0));
        assert_eq!(stats.splits, 1);
        assert_eq!(a.region_count(), 2);
        // The two regions lie on opposite sides.
        let h = &a.hyperplanes()[0];
        let p0 = a.interior_point_of(0).unwrap();
        let p1 = a.interior_point_of(1).unwrap();
        let s0 = h.side(&p0, 1e-12).unwrap();
        let s1 = h.side(&p1, 1e-12).unwrap();
        assert_ne!(s0, s1);
    }

    #[test]
    fn missing_hyperplane_does_not_split() {
        let mut a = Arrangement::new(2);
        // Plane far outside the box [0, π/2]²: x + y = 10.
        let stats = a.insert(hp(vec![1.0, 1.0], 10.0));
        assert_eq!(stats.splits, 0);
        assert_eq!(a.region_count(), 1);
    }

    #[test]
    fn tangent_hyperplane_does_not_split() {
        // Touches the box only at the corner (0,0): x + y = 0.
        let mut a = Arrangement::new(2);
        let stats = a.insert(hp(vec![1.0, 1.0], 0.0));
        assert_eq!(stats.splits, 0);
        assert_eq!(a.region_count(), 1);
    }

    #[test]
    fn two_crossing_lines_four_regions() {
        let mut a = Arrangement::new(2);
        a.insert(hp(vec![1.0, 0.0], 0.7)); // vertical θ₁ = 0.7
        a.insert(hp(vec![0.0, 1.0], 0.7)); // horizontal θ₂ = 0.7
        assert_eq!(a.region_count(), 4);
        // All four quadrant combinations realized.
        let mut seen = std::collections::HashSet::new();
        for rid in a.region_ids() {
            let p = a.interior_point_of(rid).unwrap();
            seen.insert((p[0] > 0.7, p[1] > 0.7));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn parallel_lines_three_regions() {
        let mut a = Arrangement::new(2);
        a.insert(hp(vec![1.0, 0.0], 0.4));
        a.insert(hp(vec![1.0, 0.0], 1.0));
        assert_eq!(a.region_count(), 3);
    }

    #[test]
    fn three_general_lines_seven_regions() {
        // Classic: n lines in general position → 1 + n + C(n,2) regions.
        let mut a = Arrangement::new(2);
        a.insert(hp(vec![1.0, 0.0], 0.5));
        a.insert(hp(vec![0.0, 1.0], 0.5));
        a.insert(hp(vec![1.0, 1.0], 1.3));
        assert_eq!(a.region_count(), 7);
    }

    #[test]
    fn duplicate_hyperplane_no_double_split() {
        let mut a = Arrangement::new(2);
        a.insert(hp(vec![1.0, 1.0], 1.0));
        let stats = a.insert(hp(vec![1.0, 1.0], 1.0));
        assert_eq!(stats.splits, 0, "re-inserting the same plane is a no-op");
        assert_eq!(a.region_count(), 2);
    }

    #[test]
    fn interior_points_satisfy_region_constraints() {
        let mut a = Arrangement::new(3);
        a.insert(hp(vec![1.0, 1.0, 0.2], 1.0));
        a.insert(hp(vec![0.3, -1.0, 1.0], 0.2));
        for rid in a.region_ids() {
            let p = a.interior_point_of(rid).unwrap();
            for c in a.constraints_of(rid) {
                assert!(c.satisfied(&p, 1e-9), "{c} violated at {p:?}");
            }
        }
    }

    #[test]
    fn restricted_box_arrangement() {
        let mut a = Arrangement::with_box(2, 0.2, 0.4);
        // Crosses the small box.
        let s1 = a.insert(hp(vec![1.0, 0.0], 0.3));
        assert_eq!(s1.splits, 1);
        // Crosses the full angle box but not this cell.
        let s2 = a.insert(hp(vec![1.0, 0.0], 1.0));
        assert_eq!(s2.splits, 0);
    }

    #[test]
    fn region_count_growth_matches_2d_formula() {
        // k lines in general position inside the box: regions = 1 + Σ (1 + crossings).
        // Here all pairs cross inside the box, so after k inserts:
        // 1 + k + C(k,2).
        let mut a = Arrangement::new(2);
        let lines = [
            hp(vec![1.0, 0.3], 0.8),
            hp(vec![0.3, 1.0], 0.8),
            hp(vec![1.0, 1.0], 1.4),
            hp(vec![1.0, -0.5], 0.3),
        ];
        for (k, h) in lines.into_iter().enumerate() {
            a.insert(h);
            let k = k + 1;
            assert_eq!(a.region_count(), 1 + k + k * (k - 1) / 2);
        }
    }
}
