//! Hypersphere surface geometry for the angle-space partitioning
//! (paper Eq. 11–14 and Theorem 6).

/// `Γ(d/2)` for positive integer `d`, computed exactly from the recurrence
/// (`Γ(n) = (n−1)!`, `Γ(n + ½) = (2n−1)!!/2ⁿ · √π`).
///
/// # Panics
/// If `d == 0`.
#[must_use]
pub fn gamma_half_integer(d: usize) -> f64 {
    assert!(d > 0, "gamma_half_integer requires d ≥ 1");
    if d.is_multiple_of(2) {
        // Γ(d/2) = (d/2 − 1)!
        let n = d / 2;
        (1..n).map(|k| k as f64).product()
    } else {
        // Γ(d/2) = Γ(n + 1/2) with n = (d−1)/2 = (2n−1)!!/2ⁿ √π
        let n = (d - 1) / 2;
        let mut v = std::f64::consts::PI.sqrt();
        for k in 0..n {
            v *= 0.5 + k as f64; // Γ(x+1) = x Γ(x) climbing from Γ(1/2)
        }
        v
    }
}

/// Surface area of the first orthant of the unit `(d−1)`-sphere in `R^d`
/// (paper Eq. 11): `η = π^{d/2} / (2^{d−1} Γ(d/2))`.
#[must_use]
pub fn first_orthant_area(d: usize) -> f64 {
    let pi = std::f64::consts::PI;
    pi.powf(d as f64 / 2.0) / (2f64.powi(d as i32 - 1) * gamma_half_integer(d))
}

/// Target per-cell surface area for `n_cells` equal-area cells
/// (paper Eq. 12).
#[must_use]
pub fn cell_area(d: usize, n_cells: usize) -> f64 {
    first_orthant_area(d) / n_cells.max(1) as f64
}

/// Side length `γ` of the hypercube base of an equal-area cell
/// (paper Eq. 13–14): the `(d−1)`-th root of the cell area, converted to an
/// angle via the chord relation `γ_angle = 2 asin(side/2)`.
#[must_use]
pub fn cell_side_angle(d: usize, n_cells: usize) -> f64 {
    debug_assert!(d >= 2);
    let side = cell_area(d, n_cells).powf(1.0 / (d as f64 - 1.0));
    2.0 * (side / 2.0).clamp(0.0, 1.0).asin()
}

/// The Theorem 6 guarantee: an upper bound on `θ_app − θ_opt` for the
/// grid-based approximate index with `n_cells` cells in `d` scoring
/// dimensions:
///
/// `θ_app ≤ θ_opt + 4 asin( (√(d−1)/2) · (π^{d/2} / (N 2^{d−1} Γ(d/2)))^{1/(d−1)} )`.
#[must_use]
pub fn approx_error_bound(d: usize, n_cells: usize) -> f64 {
    let eta_cell = cell_area(d, n_cells);
    let side = eta_cell.powf(1.0 / (d as f64 - 1.0));
    let arg = ((d as f64 - 1.0).sqrt() / 2.0) * side;
    4.0 * arg.clamp(0.0, 1.0).asin()
}

/// Surface measure density of the angle parametrization at `angles`:
/// `Π_{k=1}^{d−1} cos^{k−1}(θ_k)` — the Jacobian of paper Eq. 8. Integrating
/// this over `[0, π/2]^{d−1}` yields [`first_orthant_area`].
#[must_use]
pub fn surface_density(angles: &[f64]) -> f64 {
    angles
        .iter()
        .enumerate()
        .map(|(i, &t)| t.cos().powi(i as i32))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HALF_PI;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn gamma_small_values() {
        assert_close(gamma_half_integer(2), 1.0, 1e-12); // Γ(1)
        assert_close(gamma_half_integer(4), 1.0, 1e-12); // Γ(2)
        assert_close(gamma_half_integer(6), 2.0, 1e-12); // Γ(3)
        assert_close(gamma_half_integer(8), 6.0, 1e-12); // Γ(4)
        assert_close(gamma_half_integer(1), PI.sqrt(), 1e-12); // Γ(1/2)
        assert_close(gamma_half_integer(3), PI.sqrt() / 2.0, 1e-12); // Γ(3/2)
        assert_close(gamma_half_integer(5), 3.0 * PI.sqrt() / 4.0, 1e-12); // Γ(5/2)
    }

    #[test]
    fn first_orthant_areas_match_known_spheres() {
        // d=2: quarter circle arc length = π/2.
        assert_close(first_orthant_area(2), PI / 2.0, 1e-12);
        // d=3: sphere area 4π, first octant = π/2.
        assert_close(first_orthant_area(3), PI / 2.0, 1e-12);
        // d=4: 3-sphere area 2π², one of 16 orthants = π²/8.
        assert_close(first_orthant_area(4), PI * PI / 8.0, 1e-12);
    }

    #[test]
    fn density_integrates_to_area_d3() {
        // Midpoint rule over [0, π/2]² for dA = cos θ₂ dθ₁ dθ₂.
        let n = 400;
        let h = HALF_PI / n as f64;
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                let a = [(i as f64 + 0.5) * h, (j as f64 + 0.5) * h];
                total += surface_density(&a) * h * h;
            }
        }
        assert_close(total, first_orthant_area(3), 1e-4);
    }

    #[test]
    fn cell_side_shrinks_with_n() {
        let s1 = cell_side_angle(3, 100);
        let s2 = cell_side_angle(3, 10_000);
        assert!(s2 < s1);
        assert!(s2 > 0.0);
    }

    #[test]
    fn error_bound_monotone_in_n() {
        let b1 = approx_error_bound(3, 1_000);
        let b2 = approx_error_bound(3, 40_000);
        assert!(b2 < b1, "{b2} !< {b1}");
        assert!(b2 > 0.0);
    }

    #[test]
    fn error_bound_paper_setting() {
        // N = 40,000, d = 3 as in the paper's experiments — the bound must
        // be well below the observed distances (~0.6 rad) to be meaningful.
        let b = approx_error_bound(3, 40_000);
        assert!(b < 0.05, "bound {b} too loose for the paper's N");
    }
}
