//! Figure 17 — 2-D offline preprocessing (2DRAYSWEEP) vs `n`, plus the
//! incremental-oracle ablation (design choice 2 in DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank::twod::{ray_sweep, ray_sweep_incremental};
use fairrank_bench::compas_2d;
use fairrank_fairness::Proportionality;

fn bench_ray_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_raysweep");
    group.sample_size(10);
    for n in [100usize, 250, 500, 1000] {
        let ds = compas_2d(n);
        let race = ds.type_attribute("race").unwrap().clone();
        let k = ((n as f64) * 0.3).round() as usize;
        let oracle = Proportionality::new(&race, k).with_max_share(0, 0.60);
        group.bench_with_input(BenchmarkId::new("blackbox", n), &n, |b, _| {
            b.iter(|| black_box(ray_sweep(&ds, &oracle).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| black_box(ray_sweep_incremental(&ds, &[&oracle]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ray_sweep);
criterion_main!(benches);
