//! §6.4 — sampling for large-scale settings: build the index on a
//! uniform sample of the DOT-like flights and validate on the full data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fairrank::approximate::BuildOptions;
use fairrank::sampling::{build_on_sample, validate_against};
use fairrank_bench::{dot_flights, dot_oracle};
use fairrank_fairness::FairnessOracle;

fn bench_sampled_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_dot");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let full = dot_flights(20_000);
    let opts = BuildOptions {
        n_cells: 200,
        max_hyperplanes: Some(2_000),
        ..Default::default()
    };
    for sample in [100usize, 250] {
        group.bench_with_input(
            BenchmarkId::new("build_on_sample", sample),
            &sample,
            |b, &m| {
                b.iter(|| {
                    black_box(
                        build_on_sample(
                            &full,
                            m,
                            0xD07,
                            |s| Box::new(dot_oracle(s)) as Box<dyn FairnessOracle>,
                            &opts,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    // Validation pass over the full data, per assigned function.
    let (index, _) = build_on_sample(
        &full,
        250,
        0xD07,
        |s| Box::new(dot_oracle(s)) as Box<dyn FairnessOracle>,
        &opts,
    )
    .unwrap();
    let full_oracle = dot_oracle(&full);
    group.bench_function("validate_against_full", |b| {
        b.iter(|| black_box(validate_against(&index, &full, &full_oracle)));
    });
    group.finish();
}

criterion_group!(benches, bench_sampled_build);
criterion_main!(benches);
