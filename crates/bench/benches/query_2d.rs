//! §6.3 — 2DONLINE query answering vs merely ordering the data.
//!
//! The paper reports ≈30 µs per 2DONLINE query against ≈25 ms to rank
//! 6,889 items; the reproduction target is the orders-of-magnitude gap
//! and the `O(log n)` independence of the online path from `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank::twod::{online_2d, ray_sweep};
use fairrank_bench::{compas_2d, query_fan};
use fairrank_fairness::Proportionality;

fn bench_online_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("query2d");
    for n in [500usize, 2000, 6889] {
        let ds = compas_2d(n);
        let race = ds.type_attribute("race").unwrap().clone();
        let k = ((n as f64) * 0.3).round() as usize;
        let oracle = Proportionality::new(&race, k).with_max_share(0, 0.60);
        let sweep = ray_sweep(&ds, &oracle).unwrap();
        let queries: Vec<[f64; 2]> = query_fan(1, 64)
            .into_iter()
            .map(|q| [q[0].cos(), q[0].sin()])
            .collect();

        let mut qi = 0usize;
        group.bench_with_input(BenchmarkId::new("online", n), &n, |b, _| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(online_2d(&sweep.intervals, &queries[qi]).unwrap())
            });
        });
        let mut qj = 0usize;
        group.bench_with_input(BenchmarkId::new("ordering_only", n), &n, |b, _| {
            b.iter(|| {
                qj = (qj + 1) % queries.len();
                black_box(ds.rank(&queries[qj]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online_2d);
criterion_main!(benches);
