//! Figures 22 & 23 — the approximate preprocessing pipeline
//! (CELLPLANE× → MARKCELL → CELLCOLORING) end to end, vs `n` and vs `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank_bench::{compas_d, compas_d3, default_compas_oracle};

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_build_vs_n");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for n in [50usize, 100, 200] {
        let ds = compas_d3(n);
        let oracle = default_compas_oracle(&ds);
        let opts = BuildOptions {
            n_cells: 300,
            max_hyperplanes: Some(2_000),
            max_hyperplanes_per_cell: Some(16),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ApproxIndex::build(&ds, &oracle, &opts).unwrap()));
        });
    }
    group.finish();
}

fn bench_vs_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig23_build_vs_d");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for d in [3usize, 4, 5] {
        let ds = compas_d(60, d);
        let oracle = default_compas_oracle(&ds);
        let opts = BuildOptions {
            n_cells: 300,
            max_hyperplanes: Some(1_000),
            max_hyperplanes_per_cell: Some(if d >= 5 { 8 } else { 16 }),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(ApproxIndex::build(&ds, &oracle, &opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_n, bench_vs_d);
criterion_main!(benches);
