//! Figures 18 & 19 — incremental arrangement construction: the flat
//! baseline region scan vs the arrangement tree (design choice 1 in
//! DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank::md::exchange_hyperplanes;
use fairrank_bench::compas_d3;
use fairrank_geometry::arrangement::Arrangement;
use fairrank_geometry::arrangement_tree::ArrangementTree;
use fairrank_geometry::Hyperplane;

fn hyperplane_prefix(count: usize) -> Vec<Hyperplane> {
    let ds = compas_d3(60);
    let mut hs = exchange_hyperplanes(&ds);
    assert!(hs.len() >= count, "workload too small: {}", hs.len());
    hs.truncate(count);
    hs
}

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_arrangement");
    group.sample_size(10);
    for count in [25usize, 50, 100] {
        let hs = hyperplane_prefix(count);
        group.bench_with_input(BenchmarkId::new("flat_baseline", count), &count, |b, _| {
            b.iter(|| {
                let mut arr = Arrangement::new(2);
                for h in &hs {
                    arr.insert(h.clone());
                }
                black_box(arr.region_count())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("arrangement_tree", count),
            &count,
            |b, _| {
                b.iter(|| {
                    let mut tree = ArrangementTree::new(2);
                    for h in &hs {
                        tree.insert(h);
                    }
                    black_box(tree.region_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
