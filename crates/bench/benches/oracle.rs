//! Fairness-oracle kernels: one full FM1/FM2 evaluation over a ranking
//! (the `O_n` term in the paper's Theorem 1/3 complexity bounds) and the
//! O(1) incremental swap update the 2-D sweep exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank_bench::{compas_2d, default_compas_oracle, dot_flights, dot_oracle};
use fairrank_fairness::{FairnessOracle, SweepState};

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_full_eval");
    for n in [1000usize, 6889, 40_000] {
        let (ranking, oracle): (Vec<u32>, Box<dyn FairnessOracle>) = if n <= 6889 {
            let ds = compas_2d(n);
            let oracle = default_compas_oracle(&ds);
            (ds.rank(&[0.7, 0.3]), Box::new(oracle))
        } else {
            let ds = dot_flights(n);
            let oracle = dot_oracle(&ds);
            (ds.rank(&[0.5, 0.3, 0.2]), Box::new(oracle))
        };
        group.bench_with_input(BenchmarkId::new("is_satisfactory", n), &n, |b, _| {
            b.iter(|| black_box(oracle.is_satisfactory(&ranking)));
        });
    }
    group.finish();
}

fn bench_incremental_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_incremental");
    let ds = compas_2d(6889);
    let oracle = default_compas_oracle(&ds);
    let ranking = ds.rank(&[0.7, 0.3]);
    let k = oracle.k();
    let mut state = SweepState::new(ranking.clone(), &[&oracle]);
    // Swap a pair straddling the top-k boundary back and forth: the
    // worst case for the incremental update (it must adjust counts).
    let (a, b) = (ranking[k - 1], ranking[k]);
    group.bench_function("swap_at_topk_boundary", |bch| {
        bch.iter(|| {
            state.swap_items(a, b);
            black_box(state.is_satisfactory())
        });
    });
    // Swap deep below the boundary: must be near-free.
    let (c1, c2) = (ranking[k + 100], ranking[k + 101]);
    group.bench_function("swap_below_topk", |bch| {
        bch.iter(|| {
            state.swap_items(c1, c2);
            black_box(state.is_satisfactory())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_full_evaluation, bench_incremental_swap);
criterion_main!(benches);
