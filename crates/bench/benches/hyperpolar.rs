//! Figure 20 — HYPERPOLAR hyperplane construction: |H| and time vs `n`
//! (d = 3), plus the per-pair kernel cost across dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank::md::{exchange_hyperplane, exchange_hyperplanes};
use fairrank_bench::{compas_d, compas_d3};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_hyperpolar");
    group.sample_size(10);
    for n in [100usize, 250, 500, 1000] {
        let ds = compas_d3(n);
        group.bench_with_input(BenchmarkId::new("exchange_hyperplanes", n), &n, |b, _| {
            b.iter(|| black_box(exchange_hyperplanes(&ds)));
        });
    }
    group.finish();
}

fn bench_pair_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperpolar_pair_kernel");
    for d in [3usize, 4, 5, 6] {
        let ds = compas_d(64, d);
        // A fixed non-dominating pair per dimension.
        let pair = (0..ds.len())
            .flat_map(|i| (i + 1..ds.len()).map(move |j| (i, j)))
            .find(|&(i, j)| exchange_hyperplane(&ds.row(i), &ds.row(j)).is_some())
            .expect("some non-dominating pair exists");
        group.bench_with_input(BenchmarkId::new("single_pair", d), &d, |b, _| {
            b.iter(|| black_box(exchange_hyperplane(&ds.row(pair.0), &ds.row(pair.1))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_pair_kernel);
criterion_main!(benches);
