//! LP/NLP kernels under the region machinery: simplex feasibility,
//! Chebyshev centers, Seidel's randomized LP (design choice 5), and the
//! Frank–Wolfe variants (away steps on/off) behind MDBASELINE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank_geometry::HALF_PI;
use fairrank_lp::{
    chebyshev_center, feasible_point, minimize_over_polytope, seidel, simplex, Constraint,
    FwOptions, LinearProgram,
};

const SEIDEL_SEED: u64 = 0x5E1DE1;

/// A deterministic stack of half-space constraints shaped like the
/// region constraints the arrangement produces in the angle box.
fn region_constraints(count: usize, vars: usize) -> Vec<Constraint> {
    let mut out = Vec::with_capacity(count);
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..count {
        let a: Vec<f64> = (0..vars).map(|_| next() * 2.0 - 1.0).collect();
        let b = 0.3 + next();
        out.push(if i % 2 == 0 {
            Constraint::le(a, b)
        } else {
            Constraint::ge(a, -b)
        });
    }
    out
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_feasibility");
    for m in [8usize, 32, 128] {
        let cs = region_constraints(m, 3);
        group.bench_with_input(BenchmarkId::new("simplex_feasible_point", m), &m, |b, _| {
            b.iter(|| black_box(feasible_point(&cs, 3, 0.0, HALF_PI)));
        });
        group.bench_with_input(BenchmarkId::new("chebyshev_center", m), &m, |b, _| {
            b.iter(|| black_box(chebyshev_center(&cs, 3, 0.0, HALF_PI)));
        });
        let objective = [1.0, -0.5, 0.25];
        let lp = LinearProgram::minimize(objective.to_vec())
            .with_constraints(cs.iter().cloned())
            .with_box(0.0, HALF_PI);
        group.bench_with_input(BenchmarkId::new("simplex_optimize", m), &m, |b, _| {
            b.iter(|| black_box(simplex::solve(&lp)));
        });
        group.bench_with_input(BenchmarkId::new("seidel_optimize", m), &m, |b, _| {
            b.iter(|| {
                black_box(seidel::solve_seidel(
                    &cs,
                    &objective,
                    0.0,
                    HALF_PI,
                    SEIDEL_SEED,
                ))
            });
        });
    }
    group.finish();
}

fn bench_frank_wolfe(c: &mut Criterion) {
    let mut group = c.benchmark_group("frank_wolfe");
    let cs = vec![Constraint::ge(vec![1.0, 0.0], 1.0)];
    let target = [0.2f64, 0.3];
    let objective = |x: &[f64]| {
        x.iter()
            .zip(&target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
    };
    for (name, away) in [("away_steps", true), ("vanilla", false)] {
        let opts = FwOptions {
            away_steps: away,
            max_iters: 120,
            ..FwOptions::default()
        };
        group.bench_function(BenchmarkId::new("face_optimum", name), |b| {
            b.iter(|| {
                black_box(
                    minimize_over_polytope(objective, &cs, 0.0, HALF_PI, &[1.3, 0.3], &opts)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility, bench_frank_wolfe);
criterion_main!(benches);
