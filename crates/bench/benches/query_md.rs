//! §6.3 (MD) + Figure 16 — MDONLINE lookups vs ordering the data, and
//! the full `FairRanker::respond` path the Figure 16 validation uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_bench::{compas_d, default_compas_oracle, query_fan};
use fairrank_geometry::polar::to_cartesian;

fn build_options(d: usize) -> BuildOptions {
    BuildOptions {
        n_cells: 2_000,
        max_hyperplanes: Some(3_000),
        max_hyperplanes_per_cell: Some(if d >= 5 { 16 } else { 48 }),
        ..Default::default()
    }
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("querymd_lookup");
    for d in [3usize, 4, 5, 6] {
        let ds = compas_d(500, d);
        let oracle = default_compas_oracle(&ds);
        let index = ApproxIndex::build(&ds, &oracle, &build_options(d)).unwrap();
        let queries = query_fan(d - 1, 64);
        let mut qi = 0usize;
        group.bench_with_input(BenchmarkId::new("mdonline", d), &d, |b, _| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(index.lookup(&queries[qi]))
            });
        });
        let weights: Vec<Vec<f64>> = queries.iter().map(|q| to_cartesian(1.0, q)).collect();
        let mut qj = 0usize;
        group.bench_with_input(BenchmarkId::new("ordering_only", d), &d, |b, _| {
            b.iter(|| {
                qj = (qj + 1) % weights.len();
                black_box(ds.rank(&weights[qj]))
            });
        });
    }
    group.finish();
}

fn bench_suggest(c: &mut Criterion) {
    // Figure 16's unit of work: one full respond() round trip, including
    // the oracle check on the query itself.
    let mut group = c.benchmark_group("fig16_suggest");
    let d = 3usize;
    let ds = compas_d(500, d);
    let oracle = default_compas_oracle(&ds);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(Strategy::MdApprox)
        .approx_options(build_options(d))
        .build()
        .unwrap();
    let reqs: Vec<SuggestRequest> = query_fan(d - 1, 64)
        .iter()
        .map(|q| SuggestRequest::new(to_cartesian(1.0, q)))
        .collect();
    let mut qi = 0usize;
    group.bench_function("suggest_round_trip", |b| {
        b.iter(|| {
            qi = (qi + 1) % reqs.len();
            black_box(ranker.respond(&reqs[qi]).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_suggest);
criterion_main!(benches);
