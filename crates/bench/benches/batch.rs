//! Batched oracle evaluation and rank-workspace reuse: the workspace /
//! batch paths against their per-probe counterparts.
//!
//! Three comparisons, each pairing an amortized path with the serial
//! baseline it must beat:
//!
//! * `rank_alloc` vs `rank_workspace` vs `rank_workspace_topk` — one
//!   oracle probe's ranking cost at COMPAS scale (the MARKCELL inner
//!   loop).
//! * `oracle_serial` vs `oracle_batched` — FM1 verdicts for a batch of
//!   rankings (the SATREGIONS / sampling-validation oracle pass).
//! * `suggest_serial` vs `suggest_batch` — the full online multi-query
//!   path (through the unified `respond*` request/response API).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fairrank::{FairRanker, SuggestRequest};
use fairrank_bench::{compas_2d, default_compas_oracle, query_fan};
use fairrank_datasets::RankWorkspace;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::polar::to_cartesian;

fn bench_rank_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_rank_paths");
    let ds = compas_2d(6889);
    let oracle = default_compas_oracle(&ds);
    let top_k = oracle.top_k_bound();
    let w = [0.7, 0.3];

    group.bench_function("rank_alloc", |b| {
        b.iter(|| black_box(ds.rank(&w)));
    });
    let mut ws = RankWorkspace::with_capacity(ds.len());
    group.bench_function("rank_workspace", |b| {
        b.iter(|| black_box(ws.rank(&ds, &w).len()));
    });
    let mut ws2 = RankWorkspace::with_capacity(ds.len());
    group.bench_function("rank_workspace_topk", |b| {
        b.iter(|| black_box(ws2.rank_with_bound(&ds, &w, top_k).len()));
    });
    group.finish();
}

fn bench_oracle_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_oracle_verdicts");
    let ds = compas_2d(2000);
    let oracle = default_compas_oracle(&ds);
    let rankings: Vec<Vec<u32>> = query_fan(1, 64)
        .iter()
        .map(|q| ds.rank(&to_cartesian(1.0, q)))
        .collect();
    let refs: Vec<&[u32]> = rankings.iter().map(Vec::as_slice).collect();

    group.bench_function("oracle_serial", |b| {
        b.iter(|| {
            let verdicts: Vec<bool> = refs.iter().map(|r| oracle.is_satisfactory(r)).collect();
            black_box(verdicts)
        });
    });
    group.bench_function("oracle_batched", |b| {
        b.iter(|| black_box(oracle.is_satisfactory_batch(&refs)));
    });
    group.finish();
}

fn bench_suggest_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_suggest");
    let ds = compas_2d(1500);
    let oracle = default_compas_oracle(&ds);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .build()
        .unwrap();
    let reqs: Vec<SuggestRequest> = query_fan(1, 64)
        .iter()
        .map(|q| SuggestRequest::new(to_cartesian(1.0, q)))
        .collect();

    group.bench_function("suggest_serial", |b| {
        b.iter(|| {
            let answers: Vec<_> = reqs.iter().map(|r| ranker.respond(r).unwrap()).collect();
            black_box(answers)
        });
    });
    group.bench_function("suggest_batch", |b| {
        b.iter(|| black_box(ranker.respond_batch(&reqs).unwrap()));
    });
    // The sharded serving path: index-decided fairness per shard (the
    // 2-D intervals answer the pre-check in O(log n)) plus worker
    // threads. Answers are element-wise identical to `respond`
    // (tests/serving_equivalence.rs).
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("suggest_batch_parallel_{shards}shard"), |b| {
            b.iter(|| black_box(ranker.respond_batch_parallel(&reqs, shards).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rank_paths,
    bench_oracle_batch,
    bench_suggest_batch
);
criterion_main!(benches);
