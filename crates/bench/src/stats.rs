//! Small statistics helpers for experiment series: medians, cumulative
//! distributions, and least-squares growth-exponent estimation (used to
//! check the *shape* claims of the paper — e.g. "|H| grows ~n²").

/// Median of a slice (empty → `None`). Does not require sorted input.
#[must_use]
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let m = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[m]
    } else {
        0.5 * (v[m - 1] + v[m])
    })
}

/// Arithmetic mean (empty → `None`).
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Nearest-rank percentile of an **already sorted** slice (empty →
/// `NaN`), using the ceiling convention: the p-th percentile is the
/// smallest element with at least `⌈p·n⌉` elements at or below it. This
/// is the textbook nearest-rank definition — unlike `round()`-based
/// indexing it never reports a value *below* the requested rank (e.g.
/// p99 of 100 samples is the 99th order statistic, never the 98.5-ish
/// one rounding would pick), and p100 is exactly the maximum.
#[must_use]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Cumulative counts of `values` at the given thresholds: element `i` is
/// `#{v ≤ thresholds[i]}` — the series behind the paper's Figure 16.
#[must_use]
pub fn cumulative_at(values: &[f64], thresholds: &[f64]) -> Vec<usize> {
    thresholds
        .iter()
        .map(|&t| values.iter().filter(|&&v| v <= t).count())
        .collect()
}

/// Least-squares slope of `log y` against `log x` — the growth exponent
/// `b` in `y ≈ a·x^b`. Points with non-positive coordinates are skipped.
/// Returns `None` with fewer than two usable points.
#[must_use]
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn percentile_boundaries() {
        // len 1: every percentile is the single element.
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        // len 2: p50 is the first element (rank ⌈0.5·2⌉ = 1), p99 and
        // p100 the second.
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.99), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 1.0), 2.0);
        // len 100 (values 1..=100): p50 = 50th order statistic, p99 the
        // 99th — the case round()-indexing gets wrong (it picks index
        // 98 of 0..=99, i.e. the 99th, only by accident of rounding;
        // at p50 it picks 50.0 ↦ index 50, the 51st).
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        // Empty → NaN.
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn cumulative_counts() {
        let v = [0.1, 0.3, 0.5, 0.7];
        assert_eq!(cumulative_at(&v, &[0.2, 0.4, 0.6, 1.0]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn loglog_slope_recovers_exponent() {
        // y = 3 x^2
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64, 3.0 * (i as f64).powi(2)))
            .collect();
        let b = loglog_slope(&pts).unwrap();
        assert!((b - 2.0).abs() < 1e-9, "{b}");
    }

    #[test]
    fn loglog_slope_degenerate() {
        assert!(loglog_slope(&[(1.0, 1.0)]).is_none());
        assert!(loglog_slope(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
        // All x identical → vertical line.
        assert!(loglog_slope(&[(2.0, 1.0), (2.0, 3.0)]).is_none());
    }
}
