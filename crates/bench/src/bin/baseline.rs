//! Record the perf trajectory: run the `query_md` / `lp_kernels` /
//! `batch` bench workloads and a reduced-scale experiment series with
//! fixed parameters, and write the numbers to `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p fairrank-bench --bin baseline             # writes BENCH_baseline.json
//! cargo run --release -p fairrank-bench --bin baseline -- out.json
//! ```
//!
//! The workloads are deterministic (fixed seeds, fixed scales) so the
//! *relative* series — batched vs per-probe, workspace vs allocating,
//! index lookup vs re-sort — is comparable across commits; absolute
//! numbers shift with the machine, so CI only checks that this binary
//! and the benches still compile and the equivalence tests pass.

use std::fmt::Write as _;
use std::time::Duration;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::twod::ray_sweep;
use fairrank::{DatasetUpdate, FairRanker, Strategy, SuggestRequest};
use fairrank_bench::{compas_2d, compas_d, default_compas_oracle, query_fan, time, time_avg};
use fairrank_datasets::kernels;
use fairrank_datasets::RankWorkspace;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::polar::to_cartesian;
use fairrank_geometry::HALF_PI;
use fairrank_lp::{chebyshev_center, feasible_point, seidel, simplex, Constraint, LinearProgram};
use fairrank_serve::FairRankService;

/// Deterministic half-space stack, mirroring the `lp_kernels` bench.
fn region_constraints(count: usize, vars: usize) -> Vec<Constraint> {
    let mut out = Vec::with_capacity(count);
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..count {
        let a: Vec<f64> = (0..vars).map(|_| next() * 2.0 - 1.0).collect();
        let b = 0.3 + next();
        out.push(if i % 2 == 0 {
            Constraint::le(a, b)
        } else {
            Constraint::ge(a, -b)
        });
    }
    out
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 1000.0).round() / 1000.0
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let mut series: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, v: f64| {
        println!("{name:56} {v:>12.3}");
        series.push((name.to_string(), v));
    };

    // --- lp_kernels (m = 32 constraints, 3 vars) --------------------
    let cs = region_constraints(32, 3);
    push(
        "lp.feasible_point_m32_us",
        us(time_avg(200, || feasible_point(&cs, 3, 0.0, HALF_PI))),
    );
    push(
        "lp.chebyshev_center_m32_us",
        us(time_avg(200, || chebyshev_center(&cs, 3, 0.0, HALF_PI))),
    );
    let lp = LinearProgram::minimize(vec![1.0, -0.5, 0.25])
        .with_constraints(cs.iter().cloned())
        .with_box(0.0, HALF_PI);
    push(
        "lp.simplex_optimize_m32_us",
        us(time_avg(200, || simplex::solve(&lp))),
    );
    push(
        "lp.seidel_optimize_m32_us",
        us(time_avg(200, || {
            seidel::solve_seidel(&cs, &[1.0, -0.5, 0.25], 0.0, HALF_PI, 0x5E1DE1)
        })),
    );

    // --- query_md (COMPAS n = 500, d = 3, reduced grid) -------------
    let ds3 = compas_d(500, 3);
    let oracle3 = default_compas_oracle(&ds3);
    let opts = BuildOptions {
        n_cells: 2_000,
        max_hyperplanes: Some(3_000),
        ..Default::default()
    };
    let (index, build_t) = time(|| ApproxIndex::build(&ds3, &oracle3, &opts).unwrap());
    push("querymd.build_n500_d3_ms", us(build_t) / 1000.0);
    let queries = query_fan(2, 64);
    let mut qi = 0usize;
    push(
        "querymd.mdonline_lookup_us",
        us(time_avg(20_000, || {
            qi = (qi + 1) % queries.len();
            index.lookup(&queries[qi])
        })),
    );
    let weights3: Vec<Vec<f64>> = queries.iter().map(|q| to_cartesian(1.0, q)).collect();
    let mut qj = 0usize;
    push(
        "querymd.ordering_only_us",
        us(time_avg(2_000, || {
            qj = (qj + 1) % weights3.len();
            ds3.rank(&weights3[qj])
        })),
    );

    // --- batch / workspace paths (COMPAS 2-D) -----------------------
    let ds2 = compas_2d(6889);
    let oracle2 = default_compas_oracle(&ds2);
    let top_k = oracle2.top_k_bound();
    let w = [0.7, 0.3];
    push(
        "batch.rank_alloc_n6889_us",
        us(time_avg(500, || ds2.rank(&w))),
    );
    let mut ws = RankWorkspace::with_capacity(ds2.len());
    push(
        "batch.rank_workspace_n6889_us",
        us(time_avg(500, || ws.rank(&ds2, &w).len())),
    );
    let mut ws_topk = RankWorkspace::with_capacity(ds2.len());
    push(
        "batch.rank_workspace_topk_n6889_us",
        us(time_avg(500, || {
            ws_topk.rank_with_bound(&ds2, &w, top_k).len()
        })),
    );

    // --- columnar scoring kernels vs the row-major reference arm ----
    // `kernel.score_all_rowmajor_*` re-implements the pre-columnar hot
    // loop (one scalar dot product per item over a flat row-major
    // buffer); `kernel.score_all_columnar_*` is `kernels::score_all_into`
    // over the same data — bit-identical output
    // (tests/columnar_equivalence.rs), so the ratio is pure layout +
    // vectorization. d = 7 is COMPAS' full scoring width.
    let ds7 = compas_d(6889, 7);
    let w7: Vec<f64> = (0..7).map(|j| 0.15 + j as f64 * 0.11).collect();
    let flat7 = ds7.to_row_major();
    let mut out_ref = vec![0.0f64; ds7.len()];
    push(
        "kernel.score_all_rowmajor_n6889_d7_us",
        us(time_avg(500, || {
            for (i, o) in out_ref.iter_mut().enumerate() {
                *o = flat7[i * 7..(i + 1) * 7]
                    .iter()
                    .zip(&w7)
                    .map(|(x, b)| x * b)
                    .sum();
            }
            out_ref[6888]
        })),
    );
    let mut out_col: Vec<f64> = Vec::new();
    push(
        "kernel.score_all_columnar_n6889_d7_us",
        us(time_avg(500, || {
            kernels::score_all_into(&ds7, &w7, &mut out_col);
            out_col[6888]
        })),
    );
    // Full rank through the legacy semantics (fresh score + order
    // allocations, full sort over row-major scalar scores) vs the
    // columnar workspace path — the end-to-end ranking arm of the same
    // comparison. The sort is common to both, so the gap here is the
    // scoring pass plus the allocations.
    let flat2 = ds2.to_row_major();
    push(
        "batch.rank_rowmajor_n6889_us",
        us(time_avg(500, || {
            let scores: Vec<f64> = (0..ds2.len())
                .map(|i| {
                    flat2[i * 2..(i + 1) * 2]
                        .iter()
                        .zip(&w)
                        .map(|(x, b)| x * b)
                        .sum()
                })
                .collect();
            let mut order: Vec<u32> = (0..ds2.len() as u32).collect();
            order.sort_unstable_by(|a, b| {
                scores[*b as usize]
                    .total_cmp(&scores[*a as usize])
                    .then(a.cmp(b))
            });
            order
        })),
    );
    let mut ws_col = RankWorkspace::with_capacity(ds2.len());
    push(
        "batch.rank_columnar_n6889_us",
        us(time_avg(500, || ws_col.rank(&ds2, &w).len())),
    );
    let mut ws_col_topk = RankWorkspace::with_capacity(ds2.len());
    push(
        "batch.rank_columnar_topk_n6889_us",
        us(time_avg(500, || {
            ws_col_topk.rank_with_bound(&ds2, &w, top_k).len()
        })),
    );

    let ds_serve = compas_2d(1500);
    let oracle_serve = default_compas_oracle(&ds_serve);
    let (ranker, sweep_t) = time(|| {
        FairRanker::builder(ds_serve.clone(), Box::new(oracle_serve))
            .build()
            .unwrap()
    });
    push("experiments.raysweep_build_n1500_ms", us(sweep_t) / 1000.0);
    let serve_reqs: Vec<SuggestRequest> = query_fan(1, 64)
        .iter()
        .map(|q| SuggestRequest::new(to_cartesian(1.0, q)))
        .collect();
    push(
        "batch.suggest_serial_64q_us",
        us(time_avg(30, || {
            serve_reqs
                .iter()
                .map(|r| ranker.respond(r).unwrap())
                .collect::<Vec<_>>()
        })),
    );
    push(
        "batch.suggest_batch_64q_us",
        us(time_avg(30, || ranker.respond_batch(&serve_reqs).unwrap())),
    );
    // Sharded serving: the 2-D backend decides fairness from the index
    // (O(log n) per query instead of the O(n log n) oracle ranking), and
    // shards run on scoped worker threads. Same answers as `respond`
    // (tests/serving_equivalence.rs); the 4-shard series is the
    // committed throughput reference against `batch.suggest_batch_64q_us`.
    for shards in [1usize, 2, 4] {
        push(
            &format!("batch.suggest_parallel_{shards}shard_64q_us"),
            us(time_avg(30, || {
                ranker.respond_batch_parallel(&serve_reqs, shards).unwrap()
            })),
        );
    }

    // --- service_throughput (async micro-batched serving) -----------
    // The FairRankService front door: requests/s sustained end to end —
    // bounded-queue submission, micro-batch coalescing (size-triggered
    // at `max_batch`), snapshot serving, one-shot completion — over the
    // same COMPAS n = 1500 ranker and 64-query fan as the batch series.
    // Answers are bit-identical to `respond_batch`
    // (tests/service_equivalence.rs); this series tracks the pipeline
    // overhead and its scaling across worker counts and batch sizes.
    // The answer cache is disabled here so the series keeps measuring
    // the raw pipeline (and doubles as the reference arm for the cached
    // series below).
    for workers in [1usize, 2, 4] {
        for max_batch in [1usize, 16, 64] {
            let service = FairRankService::builder(ranker.snapshot())
                .workers(workers)
                .max_batch(max_batch)
                .max_delay(Duration::from_micros(100))
                .queue_capacity(4096)
                .cache(false)
                .build();
            let total = 512usize;
            let (_, elapsed) = time(|| {
                let futures: Vec<_> = serve_reqs
                    .iter()
                    .cycle()
                    .take(total)
                    .map(|r| service.submit(r.clone()).unwrap())
                    .collect();
                for fut in futures {
                    fut.wait().unwrap();
                }
            });
            service.shutdown();
            let rps = (total as f64 / elapsed.as_secs_f64()).round();
            push(
                &format!("service.throughput_{workers}w_{max_batch}b_rps"),
                rps,
            );
        }
    }

    // --- cached serving (region-identity answer cache) --------------
    // The same front door with the verdict cache enabled (the default):
    // the 64-query fan lands in a handful of weight-space regions, so
    // steady-state traffic replays cached verdicts and skips the
    // per-query oracle ranking pass — the `service.throughput_4w_64b_rps`
    // series above (cache disabled) is the reference arm. Answers stay
    // bit-identical (tests/cache_equivalence.rs).
    {
        let service = FairRankService::builder(ranker.snapshot())
            .workers(4)
            .max_batch(64)
            .max_delay(Duration::from_micros(100))
            .queue_capacity(4096)
            .build();
        // One warm-up pass seeds every region the fan touches.
        for req in &serve_reqs {
            service.suggest(req.clone()).unwrap();
        }
        let total = 4096usize;
        let (_, elapsed) = time(|| {
            let futures: Vec<_> = serve_reqs
                .iter()
                .cycle()
                .take(total)
                .map(|r| service.submit(r.clone()).unwrap())
                .collect();
            for fut in futures {
                fut.wait().unwrap();
            }
        });
        let cache_stats = service.stats().cache.expect("cache enabled by default");
        service.shutdown();
        push(
            "service.throughput_cached_rps",
            (total as f64 / elapsed.as_secs_f64()).round(),
        );
        push(
            "service.cache_hit_rate",
            (cache_stats.hit_rate() * 1000.0).round() / 1000.0,
        );
    }

    // --- update_throughput (live updates vs full rebuild) -----------
    // The incremental-maintenance headline: one 2-D insert maintains the
    // event list + reuses top-k-certified sector verdicts, against the
    // O(n²) sweep a rebuild pays. Same COMPAS n = 1500 as the serving
    // series; answers are property-tested identical to rebuilds.
    let ds_upd = compas_2d(1500);
    let oracle_upd = default_compas_oracle(&ds_upd);
    let (mut live, rebuild_t) = time(|| {
        FairRanker::builder(ds_upd.clone(), Box::new(oracle_upd))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap()
    });
    let rebuild_us = us(rebuild_t);
    push("update.twod_full_rebuild_ms", rebuild_us / 1000.0);
    // Mid-scoring inserts: the common case for live item churn.
    let mut salt = 0u64;
    let insert_t = us(time_avg(32, || {
        salt += 1;
        let s = (salt % 97) as f64 / 97.0;
        live.update(DatasetUpdate::Insert {
            scores: vec![0.25 + 0.5 * s, 0.75 - 0.5 * s],
            groups: vec![(salt % 2) as u32, (salt % 3) as u32, 0, 1],
        })
        .unwrap()
    }));
    push("update.twod_insert_us", insert_t);
    push(
        "update.twod_insert_speedup_x",
        (rebuild_us / insert_t * 100.0).round() / 100.0,
    );
    let mut item = 100u32;
    push(
        "update.twod_rescore_us",
        us(time_avg(16, || {
            item = (item * 31 + 7) % live.dataset().len() as u32;
            let s = f64::from(item % 89) / 89.0;
            live.update(DatasetUpdate::Rescore {
                item,
                scores: vec![0.2 + 0.6 * s, 0.8 - 0.6 * s],
            })
            .unwrap()
        })),
    );
    push(
        "update.twod_remove_us",
        us(time_avg(16, || {
            item = (item * 17 + 3) % live.dataset().len() as u32;
            live.update(DatasetUpdate::Remove { item }).unwrap()
        })),
    );
    // Approximate grid at reduced scale (no hyperplane cap: the capped
    // config falls back to full rebuilds by design).
    let ds_grid = compas_d(80, 3);
    let oracle_grid = default_compas_oracle(&ds_grid);
    let grid_opts = BuildOptions {
        n_cells: 500,
        max_hyperplanes: None,
        ..Default::default()
    };
    let (mut grid_live, grid_build_t) = time(|| {
        FairRanker::builder(ds_grid.clone(), Box::new(oracle_grid))
            .strategy(Strategy::MdApprox)
            .approx_options(grid_opts)
            .build()
            .unwrap()
    });
    push("update.approx_build_n80_ms", us(grid_build_t) / 1000.0);
    let mut gsalt = 0u64;
    push(
        "update.approx_insert_ms",
        us(time_avg(8, || {
            gsalt += 1;
            let s = (gsalt % 89) as f64 / 89.0;
            grid_live
                .update(DatasetUpdate::Insert {
                    scores: vec![0.3 + 0.4 * s, 0.7 - 0.4 * s, 0.5],
                    groups: vec![(gsalt % 2) as u32, (gsalt % 3) as u32, 0, 1],
                })
                .unwrap()
        })) / 1000.0,
    );

    // --- reduced experiments series (fig16-shaped 2-D pipeline) -----
    let ds_fig = compas_2d(1000);
    let oracle_fig = default_compas_oracle(&ds_fig);
    let (sweep, fig_t) = time(|| ray_sweep(&ds_fig, &oracle_fig).unwrap());
    push("experiments.fig16_raysweep_n1000_ms", us(fig_t) / 1000.0);
    push("experiments.fig16_sectors", sweep.sector_count as f64);
    push("experiments.fig16_oracle_calls", sweep.oracle_calls as f64);

    // --- serialize ---------------------------------------------------
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(
        "  \"note\": \"reduced-scale perf baseline; absolute numbers are machine-dependent, compare relative series across commits\",\n",
    );
    json.push_str("  \"generator\": \"cargo run --release -p fairrank-bench --bin baseline\",\n");
    json.push_str("  \"series\": {\n");
    for (i, (name, v)) in series.iter().enumerate() {
        let sep = if i + 1 == series.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {v}{sep}");
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("\nwrote {out_path}");
}
