//! Regenerate every table and figure of the paper's evaluation (§6) as
//! text series.
//!
//! ```text
//! cargo run -p fairrank-bench --release --bin experiments            # all, quick
//! cargo run -p fairrank-bench --release --bin experiments -- --full  # paper scale
//! cargo run -p fairrank-bench --release --bin experiments -- fig17 fig18
//! ```
//!
//! Quick mode shrinks `n`, the hyperplane counts and the grid so the full
//! suite finishes in minutes; `--full` runs the paper-scale parameters
//! (hours, like the original Python experiments). Absolute timings are
//! not comparable to the paper's 2.6 GHz / Python 2.7 testbed — the
//! reproduction targets are the *shapes*: growth exponents, crossovers,
//! and which variant wins (see EXPERIMENTS.md).

use std::collections::BTreeSet;
use std::time::Instant;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::md::exchange_hyperplanes;
use fairrank::sampling::{build_on_sample, validate_against};
use fairrank::twod::{online_2d, ray_sweep};
use fairrank::{FairRanker, KnownFairness, Strategy, SuggestRequest};
use fairrank_bench::stats::{cumulative_at, loglog_slope, mean, median};
use fairrank_bench::{
    compas_2d, compas_d, compas_d3, compas_full, default_compas_oracle, dot_flights, dot_oracle,
    fmt_duration, query_fan, time, time_avg,
};
use fairrank_datasets::synthetic::compas;
use fairrank_datasets::Dataset;
use fairrank_fairness::{Conjunction, FairnessOracle, Proportionality};
use fairrank_geometry::arrangement::Arrangement;
use fairrank_geometry::arrangement_tree::ArrangementTree;
use fairrank_geometry::grid::{AngleGrid, PartitionScheme};
use fairrank_geometry::polar::{angular_distance, to_cartesian, to_polar};
use fairrank_geometry::HALF_PI;

struct Ctx {
    full: bool,
}

type Experiment = (&'static str, fn(&Ctx));

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let chosen: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ctx = Ctx { full };

    let experiments: &[Experiment] = &[
        ("fig16", fig16),
        ("validation", validation_regions),
        ("fig17", fig17),
        ("fig18", fig18_fig19),
        ("fig19", fig18_fig19),
        ("fig20", fig20),
        ("fig21", fig21),
        ("fig22", fig22),
        ("fig23", fig23),
        ("query2d", query2d),
        ("querymd", querymd),
        ("sampling", sampling),
        ("ablation-grid", ablation_grid),
        ("ablation-pruning", ablation_pruning),
    ];

    let known: BTreeSet<&str> = experiments.iter().map(|e| e.0).collect();
    for c in &chosen {
        assert!(
            known.contains(c.as_str()),
            "unknown experiment id {c:?}; known: {known:?}"
        );
    }

    println!(
        "# fairrank experiment suite ({} mode)\n",
        if full { "full/paper-scale" } else { "quick" }
    );
    let t0 = Instant::now();
    let mut ran = BTreeSet::new();
    for (id, f) in experiments {
        if !chosen.is_empty() && !chosen.contains(*id) {
            continue;
        }
        if !ran.insert(*f as usize) {
            continue; // fig18/fig19 share one runner
        }
        let t = Instant::now();
        f(&ctx);
        println!("  [{id} done in {}]\n", fmt_duration(t.elapsed()));
    }
    println!("total: {}", fmt_duration(t0.elapsed()));
}

// =====================================================================
// §6.2  Figure 16 — cumulative θ(f, f′) over 100 random queries
// =====================================================================

fn fig16(ctx: &Ctx) {
    let n = if ctx.full { 6889 } else { 500 };
    println!("## fig16 — validation: θ(f, f′) over 100 random queries");
    println!("paper: COMPAS d=3, FM1(race ≤60% of top-30%); 52/100 queries already fair;");
    println!("paper: all 48 repairs at θ<0.6, 38 of 48 at θ<0.4");
    println!("here:  synthetic COMPAS n={n}, same constraint\n");

    let ds = compas_d3(n);
    let oracle = default_compas_oracle(&ds);
    let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
        .strategy(Strategy::MdApprox)
        .approx_options(BuildOptions {
            n_cells: if ctx.full { 40_000 } else { 2_000 },
            max_hyperplanes: Some(if ctx.full { 60_000 } else { 10_000 }),
            max_hyperplanes_per_cell: Some(if ctx.full { 48 } else { 24 }),
            ..Default::default()
        })
        .build()
        .expect("build");

    let mut fair = 0usize;
    let mut distances = Vec::new();
    for q in query_fan(2, 100) {
        let w = to_cartesian(1.0, &q);
        let sug = ranker
            .respond(&SuggestRequest::new(w))
            .expect("valid query");
        match sug.fairness {
            KnownFairness::AlreadyFair => fair += 1,
            KnownFairness::Suggested { distance } => distances.push(distance),
            KnownFairness::Infeasible => unreachable!("default model is satisfiable"),
        }
    }
    let thresholds = [0.2, 0.4, 0.6, HALF_PI];
    let cum = cumulative_at(&distances, &thresholds);
    println!(
        "already fair: {fair}/100; repaired: {}/100",
        distances.len()
    );
    for (t, c) in thresholds.iter().zip(&cum) {
        println!("  θ(f,f') < {t:.2}: {c} of {} repairs", distances.len());
    }
    println!(
        "  max θ = {:.4}, median θ = {:.4}",
        distances.iter().fold(0.0f64, |a, &b| a.max(b)),
        median(&distances).unwrap_or(0.0)
    );
}

// =====================================================================
// §6.2  narrative validation experiments (region layouts, FM2)
// =====================================================================

fn validation_regions(ctx: &Ctx) {
    let n = if ctx.full { 6889 } else { 1000 };
    println!("## validation — §6.2 region-layout narratives (n={n})");

    // (a) age (inverted; lower is better) + juv_other_count, FM1 on
    // age_binary: at most 70% of the top-100 in the younger group. The
    // paper finds a single satisfactory region hugging the
    // juv_other_count axis (weight on age near 0, boundary angle ≈ 0.31).
    let full_ds = compas_full(n);
    let ds = full_ds
        .project(&[compas::AGE_ATTR, 1])
        .expect("age + juv_other_count");
    // The caps below are recalibrated to the synthetic generator's
    // realized group/score couplings (stronger than the real COMPAS
    // columns'); the paper's caps are quoted next to each. What is
    // reproduced is the *layout*: (a) one wedge hugging the
    // juv_other_count axis, (b) regions covering almost everything,
    // (c) a stricter model with wider gaps but still-moderate worst-case
    // distance.
    let k = 100.min(n);
    let age_attr = ds.type_attribute("age_binary").expect("present");
    // (a) paper cap: ≤70% young. Synthetic juv counts tie heavily and the
    // inverted-age tiebreak fills ties youngest-first, so the share near
    // the juv axis is ≈0.90; the cap reproducing the paper's wedge is 90%.
    let oracle = Proportionality::new(age_attr, k).with_max_count(0, (k * 90) / 100);
    let sweep = ray_sweep(&ds, &oracle).expect("2d sweep");
    println!(
        "(a) FM1 on age_binary (≤90% young in top-{k}; paper: ≤70%): {} satisfactory region(s), measure {:.3} rad",
        sweep.intervals.len(),
        sweep.intervals.measure()
    );
    println!("    paper: exactly one region, hugging the juv axis (age weight ≈ 0, boundary ≤ 0.31 from it)");
    if let Some(&(lo, hi)) = sweep.intervals.as_slice().last() {
        println!(
            "    last region here: [{lo:.3}, {hi:.3}] — within {:.3} rad of the juv axis (θ = π/2)",
            HALF_PI - lo
        );
    }

    // (b) same scoring attributes, FM1 on race: many regions; every query
    // within a small θ of a satisfactory function. Paper cap: ≤60 AA
    // (base ≈51% + 9 pts); recalibrated: ≤62 (base 50% + 12 pts).
    let race = ds.type_attribute("race").expect("present");
    let oracle_b = Proportionality::new(race, k).with_max_count(0, (k * 62) / 100);
    let sweep_b = ray_sweep(&ds, &oracle_b).expect("2d sweep");
    let worst_b = worst_distance_2d(&sweep_b.intervals);
    println!(
        "(b) FM1 on race (≤62 AA in top-{k}; paper: ≤60): {} region(s); worst-case θ to a fair function = {:.4}",
        sweep_b.intervals.len(),
        worst_b
    );
    println!("    paper: several regions, worst-case θ < 0.11");

    // (c) FM2: juv_other_count + c_days_from_compas; caps on sex, race
    // and age bucket simultaneously. Stricter model, wider gaps; the
    // paper still finds θ(f, f′) < 0.28 everywhere. Paper caps:
    // ≤90 male / ≤60 AA / ≤52 aged ≤30; recalibrated: ≤90 / ≤82 / ≤58
    // (both scoring attributes couple AA-positively in the generator).
    let ds_c = full_ds.project(&[1, 0]).expect("juv + c_days");
    let sex = ds_c.type_attribute("sex").expect("present");
    let race_c = ds_c.type_attribute("race").expect("present");
    let age_bucket = ds_c.type_attribute("age_bucketized").expect("present");
    let fm2 = Conjunction::new()
        .and(Proportionality::new(sex, k).with_max_count(0, (k * 90) / 100))
        .and(Proportionality::new(race_c, k).with_max_count(0, (k * 82) / 100))
        .and(Proportionality::new(age_bucket, k).with_max_count(0, (k * 58) / 100));
    let sweep_c = ray_sweep(&ds_c, &fm2).expect("2d sweep");
    let worst_c = worst_distance_2d(&sweep_c.intervals);
    println!(
        "(c) FM2 (≤90 male, ≤82 AA, ≤58 young in top-{k}; paper: 90/60/52): {} region(s); worst-case θ = {:.4}",
        sweep_c.intervals.len(),
        worst_c
    );
    println!("    paper: wider gaps than (b), worst-case θ < 0.28");
}

/// Worst-case angular distance from any function in `[0, π/2]` to the
/// nearest satisfactory interval (∞ if none).
fn worst_distance_2d(intervals: &fairrank_geometry::AngularIntervals) -> f64 {
    if intervals.is_empty() {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for s in 0..=2000 {
        let theta = s as f64 / 2000.0 * HALF_PI;
        let nearest = intervals.nearest(theta).expect("non-empty");
        worst = worst.max((nearest - theta).abs());
    }
    worst
}

// =====================================================================
// §6.4  Figure 17 — 2-D preprocessing: #exchanges and time vs n
// =====================================================================

fn fig17(ctx: &Ctx) {
    let ns: &[usize] = if ctx.full {
        &[100, 250, 500, 1000, 2000, 4000, 6000]
    } else {
        &[100, 250, 500, 1000, 2000]
    };
    println!("## fig17 — 2DRAYSWEEP: ordering exchanges and time vs n (d=2)");
    println!("paper: exchanges ≪ n² upper bound (450k at n=4000, not 16M); time slope ≈ n³ with O(n) oracle\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "n", "exchanges", "n² bound", "time"
    );
    let mut pts_ex = Vec::new();
    let mut pts_t = Vec::new();
    for &n in ns {
        let ds = compas_2d(n);
        let race = ds.type_attribute("race").expect("race");
        let k = ((n as f64) * 0.3).round() as usize;
        let oracle = Proportionality::new(race, k).with_max_share(0, 0.60);
        let (sweep, t) = time(|| ray_sweep(&ds, &oracle).expect("sweep"));
        println!(
            "{n:>6} {:>12} {:>12} {:>12}",
            sweep.exchange_count,
            n * (n - 1) / 2,
            fmt_duration(t)
        );
        pts_ex.push((n as f64, sweep.exchange_count as f64));
        pts_t.push((n as f64, t.as_secs_f64()));
    }
    println!(
        "growth exponents: exchanges ~ n^{:.2} (≤2), time ~ n^{:.2} (paper: steeper than exchanges)",
        loglog_slope(&pts_ex).unwrap_or(f64::NAN),
        loglog_slope(&pts_t).unwrap_or(f64::NAN)
    );
}

// =====================================================================
// §6.4  Figures 18 & 19 — arrangement: baseline vs tree; |R| growth
// =====================================================================

fn fig18_fig19(ctx: &Ctx) {
    let n = if ctx.full { 120 } else { 60 };
    let caps: &[usize] = if ctx.full {
        &[50, 100, 150, 250, 400, 600, 800]
    } else {
        &[25, 50, 100, 150, 250]
    };
    let baseline_limit = if ctx.full { 250 } else { 150 };
    println!("## fig18/fig19 — arrangement construction: flat baseline vs arrangement tree (d=3)");
    println!("paper (fig18): baseline needs ~8000 s for 250 hyperplanes; the tree extends to 1200 in the same budget");
    println!("paper (fig19): |R| reaches >5000 regions by ~250 hyperplanes; later insertions cost more\n");

    let ds = compas_d3(n);
    let hyperplanes = exchange_hyperplanes(&ds);
    println!(
        "dataset: synthetic COMPAS n={n}, |H| = {}",
        hyperplanes.len()
    );
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "hyperplanes", "baseline time", "tree time", "|R| (tree)"
    );

    let mut pts_regions = Vec::new();
    for &cap in caps {
        let cap = cap.min(hyperplanes.len());
        // Flat incremental arrangement (Algorithm 4's linear region scan).
        let base_t = if cap <= baseline_limit {
            let (_, t) = time(|| {
                let mut arr = Arrangement::new(2);
                for h in hyperplanes.iter().take(cap) {
                    arr.insert(h.clone());
                }
                arr.region_count()
            });
            fmt_duration(t)
        } else {
            "(skipped)".to_string()
        };
        // Arrangement tree (Algorithm 5).
        let (regions, tree_t) = time(|| {
            let mut tree = ArrangementTree::new(2);
            for h in hyperplanes.iter().take(cap) {
                tree.insert(h);
            }
            tree.region_count()
        });
        println!(
            "{cap:>12} {base_t:>14} {:>14} {regions:>10}",
            fmt_duration(tree_t)
        );
        pts_regions.push((cap as f64, regions as f64));
    }
    println!(
        "fig19 shape: |R| ~ h^{:.2} (theory for d=3: up to h²)",
        loglog_slope(&pts_regions).unwrap_or(f64::NAN)
    );
}

// =====================================================================
// §6.4  Figure 20 — |H| and hyperplane-construction time vs n (d=3)
// =====================================================================

fn fig20(ctx: &Ctx) {
    let ns: &[usize] = if ctx.full {
        &[100, 250, 500, 1000, 2000, 4000, 6000]
    } else {
        &[100, 250, 500, 1000, 2000]
    };
    println!("## fig20 — HYPERPOLAR: |H| and construction time vs n (d=3)");
    println!("paper: |H| approaches n²/2 as d grows (fewer dominated pairs than 2-D); time linear in |H|\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "n", "|H|", "pairs", "|H|/pairs", "time"
    );
    let mut pts = Vec::new();
    for &n in ns {
        let ds = compas_d3(n);
        let (hs, t) = time(|| exchange_hyperplanes(&ds));
        let pairs = n * (n - 1) / 2;
        println!(
            "{n:>6} {:>12} {pairs:>12} {:>10.3} {:>12}",
            hs.len(),
            hs.len() as f64 / pairs as f64,
            fmt_duration(t)
        );
        pts.push((n as f64, hs.len() as f64));
    }
    println!(
        "growth: |H| ~ n^{:.2} (paper: → 2.0 as d increases)",
        loglog_slope(&pts).unwrap_or(f64::NAN)
    );
}

// =====================================================================
// §6.4  Figure 21 — |HC[c]| distribution (n=100, d=4)
// =====================================================================

fn fig21(ctx: &Ctx) {
    let n_cells = if ctx.full { 6000 } else { 2000 };
    println!("## fig21 — hyperplanes crossing each cell (n=100, d=4, N≈{n_cells})");
    println!("paper: >5000 of 6000 cells crossed by <100 hyperplanes; a small busy tail\n");

    let ds = compas_d(100, 4);
    let hyperplanes = exchange_hyperplanes(&ds);
    let grid = AngleGrid::equal_area(4, n_cells);
    let mut hc = vec![0usize; grid.cell_count()];
    for h in &hyperplanes {
        for c in grid.cells_crossing(h) {
            hc[c as usize] += 1;
        }
    }
    hc.sort_unstable();
    let quantile = |q: f64| hc[((hc.len() - 1) as f64 * q) as usize];
    println!("|H| = {}, cells = {}", hyperplanes.len(), grid.cell_count());
    println!(
        "|HC[c]| quantiles: p10={} p50={} p90={} p99={} max={}",
        quantile(0.10),
        quantile(0.50),
        quantile(0.90),
        quantile(0.99),
        hc.last().copied().unwrap_or(0)
    );
    let below100 = hc.iter().filter(|&&v| v < 100).count();
    println!(
        "cells with <100 crossing hyperplanes: {below100}/{} ({:.1}%)",
        hc.len(),
        100.0 * below100 as f64 / hc.len() as f64
    );
}

// =====================================================================
// §6.4  Figure 22 — preprocessing phase times vs n (d=3)
// =====================================================================

fn fig22(ctx: &Ctx) {
    let (ns, n_cells): (&[usize], usize) = if ctx.full {
        (&[200, 500, 1000, 2000, 4000, 6000], 40_000)
    } else {
        (&[200, 500, 1000], 1_000)
    };
    println!("## fig22 — approximate preprocessing, phase times vs n (d=3, N={n_cells})");
    println!("paper: cell-plane assignment grows fastest with n (|H| ~ n²); markcell dominates the total\n");
    print_phase_header();
    for &n in ns {
        let ds = compas_d3(n);
        let oracle = default_compas_oracle(&ds);
        let index = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells,
                max_hyperplanes: Some(if ctx.full { 100_000 } else { 20_000 }),
                max_hyperplanes_per_cell: Some(if ctx.full { 48 } else { 24 }),
                ..Default::default()
            },
        )
        .expect("build");
        print_phase_row(&format!("n={n}"), &index);
    }
}

// =====================================================================
// §6.4  Figure 23 — preprocessing phase times vs d (n=100)
// =====================================================================

fn fig23(ctx: &Ctx) {
    let (ds_list, n_cells): (Vec<usize>, usize) = if ctx.full {
        (vec![3, 4, 5, 6], 40_000)
    } else {
        (vec![3, 4, 5], 1_000)
    };
    println!("## fig23 — approximate preprocessing, phase times vs d (n=100, N={n_cells})");
    println!("paper: all phases grow steeply with d (arrangement complexity ~ |H|^(d−1)); markcell dominates\n");
    print_phase_header();
    for &d in &ds_list {
        let ds = compas_d(100, d);
        let oracle = default_compas_oracle(&ds);
        let index = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells,
                max_hyperplanes: if ctx.full { None } else { Some(2_000) },
                max_hyperplanes_per_cell: Some(match (ctx.full, d >= 5) {
                    (_, true) => 12,
                    (true, false) => 48,
                    (false, false) => 24,
                }),
                ..Default::default()
            },
        )
        .expect("build");
        print_phase_row(&format!("d={d}"), &index);
    }
}

fn print_phase_header() {
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "|H|", "sat cells", "hyperplane", "cellplane", "markcell", "coloring", "total"
    );
}

fn print_phase_row(label: &str, index: &ApproxIndex) {
    let s = index.stats();
    println!(
        "{label:>8} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        s.hyperplane_count,
        s.satisfied_cells,
        fmt_duration(s.hyperplane_time),
        fmt_duration(s.cellplane_time),
        fmt_duration(s.markcell_time),
        fmt_duration(s.coloring_time),
        fmt_duration(s.total_time())
    );
}

// =====================================================================
// §6.3  query answering — 2-D
// =====================================================================

fn query2d(ctx: &Ctx) {
    let n = if ctx.full { 6889 } else { 2000 };
    println!("## query2d — 2DONLINE vs ordering the data (n={n})");
    println!("paper: 2DONLINE ≈ 30 µs; merely ordering by f ≈ 25 ms (n=6889)\n");

    let ds = compas_2d(n);
    let race = ds.type_attribute("race").expect("race");
    let k = ((n as f64) * 0.3).round() as usize;
    let oracle = Proportionality::new(race, k).with_max_share(0, 0.60);
    let (sweep, prep) = time(|| ray_sweep(&ds, &oracle).expect("sweep"));
    println!(
        "offline: {} intervals from {} exchanges in {}",
        sweep.intervals.len(),
        sweep.exchange_count,
        fmt_duration(prep)
    );

    let queries: Vec<[f64; 2]> = query_fan(1, 30)
        .into_iter()
        .map(|q| [q[0].cos(), q[0].sin()])
        .collect();
    let mut qi = 0usize;
    let online = time_avg(3000, || {
        qi = (qi + 1) % queries.len();
        online_2d(&sweep.intervals, &queries[qi]).expect("valid")
    });
    let mut qj = 0usize;
    let ordering = time_avg(30, || {
        qj = (qj + 1) % queries.len();
        ds.rank(&queries[qj])
    });
    println!(
        "2DONLINE: {} per query; ordering only: {} per query ({}x)",
        fmt_duration(online),
        fmt_duration(ordering),
        (ordering.as_nanos() as f64 / online.as_nanos().max(1) as f64).round()
    );
}

// =====================================================================
// §6.3  query answering — multi-dimensional
// =====================================================================

fn querymd(ctx: &Ctx) {
    let n = if ctx.full { 6889 } else { 1000 };
    let dims: &[usize] = if ctx.full { &[3, 4, 5, 6] } else { &[3, 4, 5] };
    println!("## querymd — MDONLINE vs ordering the data (n={n})");
    println!("paper: MDONLINE < 200 µs for d=3…6, independent of n; ordering ≈ 25 ms\n");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "d", "MDONLINE", "ordering", "ratio"
    );

    for &d in dims {
        let ds = compas_d(n, d);
        let oracle = default_compas_oracle(&ds);
        // The lookup timing (the claim under test) depends only on the
        // grid, not on how much of H was indexed, so quick mode builds a
        // deliberately small index.
        let index = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells: if ctx.full { 40_000 } else { 1_000 },
                max_hyperplanes: Some(if ctx.full { 5_000 } else { 2_000 }),
                max_hyperplanes_per_cell: Some(match d {
                    _ if ctx.full => 48,
                    3 => 24,
                    4 => 16,
                    _ => 8,
                }),
                ..Default::default()
            },
        )
        .expect("build");
        let queries = query_fan(d - 1, 50);
        let mut qi = 0usize;
        let lookup = time_avg(3000, || {
            qi = (qi + 1) % queries.len();
            index.lookup(&queries[qi])
        });
        let weights: Vec<Vec<f64>> = queries.iter().map(|q| to_cartesian(1.0, q)).collect();
        let mut qj = 0usize;
        let ordering = time_avg(30, || {
            qj = (qj + 1) % weights.len();
            ds.rank(&weights[qj])
        });
        println!(
            "{d:>4} {:>14} {:>14} {:>10.0}",
            fmt_duration(lookup),
            fmt_duration(ordering),
            ordering.as_nanos() as f64 / lookup.as_nanos().max(1) as f64
        );
    }
}

// =====================================================================
// §6.4  sampling for large-scale settings (DOT)
// =====================================================================

fn sampling(ctx: &Ctx) {
    let n = if ctx.full { 1_322_024 } else { 200_000 };
    println!("## sampling — §5.4/§6.4 on DOT-like flights (n={n})");
    println!("paper: preprocess a 1,000-row sample (N=40,000) in 1,276 s; 100% of assigned functions valid on all 1.32M rows\n");

    let (full, gen_t) = time(|| dot_flights(n));
    println!(
        "generated {} flights in {}",
        full.len(),
        fmt_duration(gen_t)
    );
    let full_oracle = dot_oracle(&full);

    let ((index, sample), prep_t) = time(|| {
        build_on_sample(
            &full,
            1000,
            0xD07,
            |s| Box::new(dot_oracle(s)) as Box<dyn FairnessOracle>,
            &BuildOptions {
                n_cells: if ctx.full { 40_000 } else { 4_000 },
                max_hyperplanes: Some(30_000),
                ..Default::default()
            },
        )
        .expect("build")
    });
    println!(
        "preprocessed {}-row sample in {} ({} cells, {} distinct functions)",
        sample.len(),
        fmt_duration(prep_t),
        index.grid().cell_count(),
        index.functions().len()
    );

    let (report, val_t) = time(|| validate_against(&index, &full, &full_oracle));
    println!(
        "validation on the full data: {}/{} functions satisfactory ({:.1}%) in {}",
        report.satisfactory,
        report.functions_checked,
        100.0 * report.success_rate(),
        fmt_duration(val_t)
    );
}

// =====================================================================
// Ablation — equal-area vs uniform angle grid (Theorem 6 premise)
// =====================================================================

fn ablation_grid(ctx: &Ctx) {
    let n = if ctx.full { 500 } else { 200 };
    println!("## ablation-grid — equal-area vs uniform partitioning (n={n}, d=3)");
    println!("claim: Theorem 6's bound assumes equal-area cells; uniform grids have oversized cells near θ=0\n");

    let ds = compas_d3(n);
    let oracle = default_compas_oracle(&ds);
    println!(
        "{:>12} {:>10} {:>14} {:>14} {:>14}",
        "scheme", "cells", "max diameter", "mean answer θ", "worst answer θ"
    );
    for scheme in [PartitionScheme::EqualArea, PartitionScheme::Uniform] {
        let index = ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells: 1_000,
                scheme,
                max_hyperplanes: Some(10_000),
                ..Default::default()
            },
        )
        .expect("build");
        let grid = index.grid();
        let max_diam = grid.max_cell_diameter();
        let mut dists = Vec::new();
        for q in query_fan(2, 200) {
            if let Some(f) = index.lookup(&q) {
                dists.push(angular_distance(f, &q));
            }
        }
        println!(
            "{:>12} {:>10} {:>14.4} {:>14.4} {:>14.4}",
            format!("{scheme:?}"),
            grid.cell_count(),
            max_diam,
            mean(&dists).unwrap_or(f64::NAN),
            dists.iter().fold(0.0f64, |a, &b| a.max(b))
        );
    }
    println!("note: answer θ includes genuinely-unfair queries, so the mean is not the Theorem 6 error itself;");
    println!("the comparison between schemes at equal N is the ablation");
}

// =====================================================================
// Ablation — §8 dominance/convex-layer pruning
// =====================================================================

fn ablation_pruning(ctx: &Ctx) {
    let n = if ctx.full { 2000 } else { 600 };
    println!("## ablation-pruning — §8 top-k layer pre-filter (n={n})");
    println!("claim: for top-k oracles, exchanges among items outside the first k layers are irrelevant\n");
    println!(
        "{:>22} {:>4} {:>8} {:>10} {:>10} {:>8}",
        "dataset", "k", "kept", "|H| full", "|H| kept", "ratio"
    );
    let cases: Vec<(&str, Dataset)> = vec![
        ("compas d=2", compas_2d(n)),
        ("compas d=3", compas_d3(n)),
        (
            "correlated d=3",
            fairrank_datasets::synthetic::generic::correlated(n, 3, 0.8, 0.0, 11),
        ),
    ];
    for (name, ds) in cases {
        let k = (n / 20).max(5);
        let keep = fairrank::pruning::top_k_candidate_items(&ds, k);
        let sub = ds.subset(&keep);
        let h_full = exchange_hyperplanes(&ds).len();
        let h_kept = exchange_hyperplanes(&sub).len();
        println!(
            "{name:>22} {k:>4} {:>8} {h_full:>10} {h_kept:>10} {:>8.3}",
            keep.len(),
            h_kept as f64 / h_full.max(1) as f64
        );
    }
}

// =====================================================================
// smoke utilities used by several experiments
// =====================================================================

#[allow(dead_code)]
fn assert_fair(ds: &Dataset, oracle: &dyn FairnessOracle, angles: &[f64]) {
    let w = to_cartesian(1.0, angles);
    assert!(oracle.is_satisfactory(&ds.rank(&w)));
    let (_, back) = to_polar(&w);
    debug_assert_eq!(back.len(), angles.len());
}
