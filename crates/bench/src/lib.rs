//! Shared harness for the benchmark suite and the `experiments` binary.
//!
//! Every table and figure of the paper's §6 is regenerated from the
//! workloads defined here, so the Criterion benches and the textual
//! experiment series measure exactly the same configurations.
//!
//! The paper's defaults (§6.1):
//!
//! * **COMPAS** — 6,889 individuals, 7 scoring attributes; default
//!   fairness model FM1: at most 60% African-American among the
//!   top-ranked 30%.
//! * **DOT** — 1,322,024 flights, 3 scoring attributes; FM1 over
//!   `airline_name` with caps 5% above each major carrier's base share
//!   in the top 10%.

use std::time::{Duration, Instant};

use fairrank_datasets::synthetic::{compas, dot};
use fairrank_datasets::Dataset;
use fairrank_fairness::Proportionality;

pub mod stats;

/// The paper's default COMPAS configuration at a chosen scale.
#[must_use]
pub fn compas_full(n: usize) -> Dataset {
    compas::generate(&compas::CompasConfig {
        n,
        ..Default::default()
    })
}

/// COMPAS projected to the paper's §6.2 validation attributes
/// (`start`, `c_days_from_compas`, `juv_other_count`; d = 3).
#[must_use]
pub fn compas_d3(n: usize) -> Dataset {
    compas_full(n)
        .project(&compas::validation_projection())
        .expect("projection indices valid")
}

/// COMPAS projected to the first `d` scoring attributes "in the same
/// ordering provided in the description of \[the\] COMPAS dataset" (§6.3).
///
/// # Panics
/// If `d` exceeds the 7 available attributes.
#[must_use]
pub fn compas_d(n: usize, d: usize) -> Dataset {
    let attrs: Vec<usize> = (0..d).collect();
    compas_full(n).project(&attrs).expect("d ≤ 7")
}

/// COMPAS projected to 2 attributes for the 2-D experiments.
#[must_use]
pub fn compas_2d(n: usize) -> Dataset {
    compas_d(n, 2)
}

/// The paper's default fairness model: FM1 on `race`, at most 60%
/// African-American among the top 30%.
///
/// # Panics
/// If `ds` has no `race` type attribute.
#[must_use]
pub fn default_compas_oracle(ds: &Dataset) -> Proportionality {
    let race = ds.type_attribute("race").expect("COMPAS has race");
    let k = ((ds.len() as f64) * 0.30).round().max(1.0) as usize;
    Proportionality::new(race, k).with_max_share(0, 0.60)
}

/// DOT-like flights at a chosen scale.
#[must_use]
pub fn dot_flights(n: usize) -> Dataset {
    dot::generate(&dot::DotConfig {
        n,
        ..Default::default()
    })
}

/// The §6.4 DOT oracle: top 10%, each major carrier's share at most 5%
/// above its base proportion.
///
/// # Panics
/// If `ds` has no `airline_name` type attribute.
#[must_use]
pub fn dot_oracle(ds: &Dataset) -> Proportionality {
    let airline = ds
        .type_attribute("airline_name")
        .expect("DOT has airline_name");
    let props = airline.group_proportions();
    let majors = dot::major_carrier_groups();
    Proportionality::new(airline, ds.len() / 10).with_proportional_caps(&props, 0.05, Some(&majors))
}

/// Deterministic query fan: `count` angle vectors spread over the open
/// cube `(0, π/2)^dim` by a low-discrepancy (Halton-like) sequence.
#[must_use]
pub fn query_fan(dim: usize, count: usize) -> Vec<Vec<f64>> {
    const PRIMES: [u64; 6] = [2, 3, 5, 7, 11, 13];
    let mut out = Vec::with_capacity(count);
    for i in 1..=count {
        let mut q = Vec::with_capacity(dim);
        for (k, &p) in PRIMES.iter().take(dim).enumerate() {
            let mut f = 1.0;
            let mut r = 0.0;
            let mut n = (i + 7 * k) as u64;
            while n > 0 {
                f /= p as f64;
                r += f * (n % p) as f64;
                n /= p;
            }
            q.push((0.02 + 0.96 * r) * fairrank_geometry::HALF_PI);
        }
        out.push(q);
    }
    out
}

/// Wall-clock one closure call.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Wall-clock the average of `reps` calls (for µs-scale online paths).
pub fn time_avg<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed() / reps.max(1) as u32
}

/// Format a duration compactly for series output.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.2} s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_schemas() {
        let c = compas_d3(50);
        assert_eq!(c.dim(), 3);
        assert_eq!(c.len(), 50);
        assert!(c.type_attribute("race").is_some());

        let c2 = compas_2d(30);
        assert_eq!(c2.dim(), 2);

        let f = dot_flights(100);
        assert_eq!(f.dim(), 3);
        assert!(f.type_attribute("airline_name").is_some());
    }

    #[test]
    fn default_oracle_matches_paper_parameters() {
        use fairrank_fairness::FairnessOracle as _;
        let ds = compas_d3(100);
        let oracle = default_compas_oracle(&ds);
        assert_eq!(oracle.k(), 30); // 30% of 100
        let ranking = ds.rank(&[1.0, 1.0, 1.0]);
        let _ = oracle.is_satisfactory(&ranking); // well-formed
    }

    #[test]
    fn query_fan_is_deterministic_and_interior() {
        let a = query_fan(2, 40);
        let b = query_fan(2, 40);
        assert_eq!(a, b);
        for q in &a {
            for &v in q {
                assert!(v > 0.0 && v < fairrank_geometry::HALF_PI);
            }
        }
        // Spread: no two identical queries.
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn fmt_duration_scales() {
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
