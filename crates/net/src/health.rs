//! Shared serving-health state: how a replica's tail loop tells its
//! HTTP front end that the answers it is serving are stale.
//!
//! A replica keeps serving its last good snapshot when its replication
//! stream dies — that is the design, not a bug — but a load balancer
//! must be able to see the difference between "serving and current" and
//! "serving but frozen at version V". [`HealthHandle`] is the one-word
//! channel between the two: the replication supervisor marks it stale
//! (with a reason and the last applied version) when the tail dies, and
//! fresh again after a successful re-bootstrap; the server's `/healthz`
//! turns a stale mark into a non-200 response carrying both fields.

use std::sync::{Arc, Mutex};

/// Why a serving tier is stale, and how far it got.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleInfo {
    /// Human-readable cause (stream error, version gap, writer close).
    pub reason: String,
    /// The dataset version the service had applied when it went stale —
    /// what its answers are frozen at.
    pub last_applied: u64,
}

/// A cloneable handle to one serving tier's staleness flag. All clones
/// observe the same state; the default state is fresh.
#[derive(Debug, Clone, Default)]
pub struct HealthHandle {
    stale: Arc<Mutex<Option<StaleInfo>>>,
}

impl HealthHandle {
    /// A fresh (healthy) handle.
    #[must_use]
    pub fn new() -> HealthHandle {
        HealthHandle::default()
    }

    /// Mark the tier stale: answers are frozen at `last_applied`.
    pub fn mark_stale(&self, reason: impl Into<String>, last_applied: u64) {
        *self.stale.lock().expect("health lock poisoned") = Some(StaleInfo {
            reason: reason.into(),
            last_applied,
        });
    }

    /// Clear the staleness mark (the tier has caught back up).
    pub fn mark_fresh(&self) {
        *self.stale.lock().expect("health lock poisoned") = None;
    }

    /// The current staleness mark, `None` while healthy.
    #[must_use]
    pub fn staleness(&self) -> Option<StaleInfo> {
        self.stale.lock().expect("health lock poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let h = HealthHandle::new();
        let peer = h.clone();
        assert!(h.staleness().is_none());
        peer.mark_stale("tail died", 7);
        let info = h.staleness().expect("stale mark visible through clone");
        assert_eq!(info.last_applied, 7);
        assert_eq!(info.reason, "tail died");
        h.mark_fresh();
        assert!(peer.staleness().is_none());
    }
}
