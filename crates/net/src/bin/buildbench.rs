//! `buildbench`: the offline index-construction benchmark.
//!
//! Records the build-wall series the parallel builders were written
//! for, at the largest scales that finish in minutes on one box:
//!
//! * `querymd.build_compas_n6889_d3_{serial,par}_ms` — the full-COMPAS
//!   MD grid build (all 6,889 individuals over the paper's §6.2
//!   validation attributes, capped hyperplane budget), serial vs
//!   all-cores. Full scoring width (d = 7) stays out of reach offline:
//!   the per-cell arrangements in the 6-dimensional angle space blow up
//!   combinatorially even under the per-cell cap. The parallel arm is
//!   bit-identical to the serial one (tests/build_equivalence.rs); the
//!   ratio is pure MARKCELL parallelism.
//! * `querymd.build_exact_n70_d3_{serial,par}_ms` — the exact
//!   SATREGIONS arrangement at a scale where `O(h^{d-1})` still fits.
//! * `twod.build_dot2d_n6000_{serial,par}_ms` — the 2-D ray sweep over
//!   DOT-like flights projected to two delay attributes, serial vs
//!   sector-sharded.
//! * `dot.{score_all_us,rank_ms,rank_topk_ms}_n1322024` — query-side
//!   cost at the paper's full DOT scale (1,322,024 flights): one
//!   columnar scoring pass, one full workspace rank, and one
//!   top-k-bounded rank under the §6.4 oracle.
//! * `service.throughput_cached_rps` / `service.cache_hit_rate` —
//!   re-recorded with the exact `baseline` recipe so the committed
//!   number and the README prose agree.
//! * `host.build_cores` — the recording host's core count, so the
//!   speedup series is interpretable (on a single-core host the
//!   parallel arms measure sharding overhead, not speedup).
//!
//! Results merge into `BENCH_baseline.json` (pass a different path as
//! the first argument), preserving every series other benches recorded.

use std::time::Duration;

use fairrank::approximate::{ApproxIndex, BuildOptions};
use fairrank::md::SatRegionsOptions;
use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_bench::{
    compas_2d, default_compas_oracle, dot_flights, dot_oracle, query_fan, time, time_avg,
};
use fairrank_datasets::{kernels, RankWorkspace};
use fairrank_fairness::FairnessOracle;
use fairrank_net::json::merge_into_baseline;
use fairrank_serve::FairRankService;

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1000.0).round() / 1000.0
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 1000.0).round() / 1000.0
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let mut series: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, v: f64| {
        println!("{name:48} {v:>14.3}");
        series.push((name.to_string(), v));
    };

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    push("host.build_cores", cores as f64);

    // --- full-COMPAS MD grid build: serial vs parallel MARKCELL -----
    // All 6,889 individuals over the §6.2 validation projection. The
    // hyperplane budget caps the `O(n²)` exchange enumeration (the
    // capped build is sound: every probe is validated against the real
    // oracle); the cell count keeps one arm in tens of seconds so both
    // arms fit one run.
    let ds_md = fairrank_bench::compas_d3(6889);
    let oracle_md = default_compas_oracle(&ds_md);
    let md_opts = |threads: Option<usize>| BuildOptions {
        n_cells: 600,
        max_hyperplanes: Some(1200),
        threads,
        ..Default::default()
    };
    let (_, t_md_serial) =
        time(|| ApproxIndex::build(&ds_md, &oracle_md, &md_opts(Some(1))).unwrap());
    push("querymd.build_compas_n6889_d3_serial_ms", ms(t_md_serial));
    let (_, t_md_par) = time(|| ApproxIndex::build(&ds_md, &oracle_md, &md_opts(Some(0))).unwrap());
    push("querymd.build_compas_n6889_d3_par_ms", ms(t_md_par));
    push(
        "querymd.build_compas_n6889_d3_speedup_x",
        ((t_md_serial.as_secs_f64() / t_md_par.as_secs_f64()) * 100.0).round() / 100.0,
    );

    // --- exact SATREGIONS arrangement: serial vs parallel -----------
    // Small n by necessity: the exact region count grows as
    // `O(h^{d-1})` and h as `O(n²)` — the reason the grid exists.
    let ds_ex = fairrank_bench::compas_d(70, 3);
    let oracle_ex = default_compas_oracle(&ds_ex);
    let build_exact = |threads: usize| {
        FairRanker::builder(ds_ex.clone(), Box::new(oracle_ex.clone()))
            .strategy(Strategy::MdExact)
            .sat_regions_options(SatRegionsOptions {
                threads: Some(threads),
                ..Default::default()
            })
            .build()
            .unwrap()
    };
    let (_, t_ex_serial) = time(|| build_exact(1));
    push("querymd.build_exact_n70_d3_serial_ms", ms(t_ex_serial));
    let (_, t_ex_par) = time(|| build_exact(0));
    push("querymd.build_exact_n70_d3_par_ms", ms(t_ex_par));

    // --- 2-D ray sweep over DOT flights: serial vs sector-sharded ---
    // Projected to (departure_delay, arrival_delay); n is bounded by
    // the sweep's O(n²) event list, not by the dataset generator.
    let ds_2d = dot_flights(6000)
        .project(&[0, 1])
        .expect("projection indices valid");
    let oracle_2d = dot_oracle(&ds_2d);
    let build_2d = |threads: usize| {
        FairRanker::builder(ds_2d.clone(), Box::new(oracle_2d.clone()))
            .strategy(Strategy::TwoD)
            .build_threads(threads)
            .build()
            .unwrap()
    };
    let (_, t_2d_serial) = time(|| build_2d(1));
    push("twod.build_dot2d_n6000_serial_ms", ms(t_2d_serial));
    let (_, t_2d_par) = time(|| build_2d(0));
    push("twod.build_dot2d_n6000_par_ms", ms(t_2d_par));
    push(
        "twod.build_dot2d_n6000_speedup_x",
        ((t_2d_serial.as_secs_f64() / t_2d_par.as_secs_f64()) * 100.0).round() / 100.0,
    );

    // --- query-side cost at full DOT scale (1,322,024 flights) ------
    let ds_dot = dot_flights(1_322_024);
    let w = [0.5, 0.3, 0.2];
    let mut scores: Vec<f64> = Vec::new();
    push(
        "dot.score_all_n1322024_us",
        us(time_avg(20, || {
            kernels::score_all_into(&ds_dot, &w, &mut scores);
            scores[ds_dot.len() - 1]
        })),
    );
    let mut ws = RankWorkspace::with_capacity(ds_dot.len());
    push(
        "dot.rank_n1322024_ms",
        ms(time_avg(10, || ws.rank(&ds_dot, &w).len())),
    );
    let top_k = dot_oracle(&ds_dot).top_k_bound().expect("DOT oracle has k");
    let mut ws_topk = RankWorkspace::with_capacity(ds_dot.len());
    push(
        "dot.rank_topk_n1322024_ms",
        ms(time_avg(10, || {
            ws_topk.rank_with_bound(&ds_dot, &w, Some(top_k)).len()
        })),
    );
    drop(ds_dot);

    // --- cached serving re-record (exact `baseline` bin recipe) -----
    let ds_serve = compas_2d(1500);
    let oracle_serve = default_compas_oracle(&ds_serve);
    let ranker = FairRanker::builder(ds_serve, Box::new(oracle_serve))
        .build()
        .unwrap();
    let serve_reqs: Vec<SuggestRequest> = query_fan(1, 64)
        .iter()
        .map(|q| SuggestRequest::new(vec![q[0].cos(), q[0].sin()]))
        .collect();
    let service = FairRankService::builder(ranker)
        .workers(4)
        .max_batch(64)
        .max_delay(Duration::from_micros(100))
        .queue_capacity(4096)
        .build();
    for req in &serve_reqs {
        service.suggest(req.clone()).unwrap();
    }
    let total = 4096usize;
    let (_, elapsed) = time(|| {
        let futures: Vec<_> = serve_reqs
            .iter()
            .cycle()
            .take(total)
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        for fut in futures {
            fut.wait().unwrap();
        }
    });
    let cache_stats = service.stats().cache.expect("cache enabled by default");
    service.shutdown();
    push(
        "service.throughput_cached_rps",
        (total as f64 / elapsed.as_secs_f64()).round(),
    );
    push(
        "service.cache_hit_rate",
        (cache_stats.hit_rate() * 1000.0).round() / 1000.0,
    );

    let named: Vec<(&str, f64)> = series.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    merge_into_baseline(&path, &named);
    println!("recorded {} series into {path}", named.len());
}
