//! `netbench`: the network-tier load harness.
//!
//! Spawns the whole deployment in-process over loopback — a writer
//! [`FairRankService`] behind an [`HttpServer`], then writer + N
//! replicas — and measures:
//!
//! * `net.saturation_rps` — closed-loop max throughput of one server
//!   (8 keep-alive connections hammering `POST /suggest`).
//! * `net.p50_us` / `net.p99_us` — request latency under paced load at
//!   ~50% of saturation, measured from each request's *scheduled* send
//!   time so queueing delay counts (open-loop style; a coordinated-
//!   omission-free number).
//! * `net.replicas_{1,2,4}_rps` — aggregate closed-loop throughput of a
//!   replicated deployment after convergence, clients spread across the
//!   replica endpoints. The scaling series is the acceptance criterion:
//!   aggregate throughput must grow with replica count.
//! * `telemetry.overhead_pct` — cached-hit throughput cost of the stage
//!   timing layer: the same workload against `.telemetry(true)` vs
//!   `.telemetry(false)` services. The guard fails (exit 1) above 3%.
//!
//! Latency samples buffer into the telemetry crate's mergeable
//! log-linear [`HistogramSnapshot`] (bounded memory at any request
//! count, ≤6.25% relative bucket error) instead of an unbounded
//! `Vec<f64>`; per-connection snapshots merge before the quantile read.
//!
//! Results merge into `BENCH_baseline.json` (pass a different path as
//! the first argument), preserving every series other benches recorded.
//!
//! [`FairRankService`]: fairrank_serve::FairRankService

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fairrank::{FairRanker, Strategy, SuggestRequest};
use fairrank_datasets::synthetic::generic;
use fairrank_datasets::Dataset;
use fairrank_fairness::{FairnessOracle, Proportionality};
use fairrank_net::json::{encode_request, merge_into_baseline};
use fairrank_net::{Client, HttpServer, Replica, ReplicaOptions, ReplicatedWriter, ServerConfig};
use fairrank_serve::FairRankService;
use fairrank_telemetry::HistogramSnapshot;

const DATASET_N: usize = 400;
const SATURATION_CONNS: usize = 8;
const MEASURE: Duration = Duration::from_millis(1500);

fn oracle_for(ds: &Dataset) -> Box<dyn FairnessOracle> {
    let attr = ds.type_attribute("group").expect("synthetic group attr");
    let k = DATASET_N / 10;
    Box::new(Proportionality::new(attr, k).with_max_count(0, k / 2 + k / 4))
}

fn build_service(workers: usize) -> Arc<FairRankService> {
    build_service_telemetry(workers, true)
}

fn build_service_telemetry(workers: usize, telemetry: bool) -> Arc<FairRankService> {
    let ds = generic::uniform(DATASET_N, 2, 0.9, 42);
    let oracle = oracle_for(&ds);
    let ranker = FairRanker::builder(ds, oracle)
        .strategy(Strategy::TwoD)
        .build()
        .expect("build ranker");
    Arc::new(
        FairRankService::builder(ranker)
            .workers(workers)
            .max_batch(16)
            .telemetry(telemetry)
            .build(),
    )
}

/// A fan of valid request bodies, pre-encoded so clients measure the
/// wire, not the encoder.
fn request_bodies(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let t = (i as f64 + 0.5) / count as f64 * std::f64::consts::FRAC_PI_2;
            encode_request(&SuggestRequest::new(vec![0.05 + t.cos(), 0.05 + t.sin()]))
        })
        .collect()
}

/// Closed-loop throughput: `conns` keep-alive connections issue
/// requests back-to-back against `addrs` (round-robin by thread) for
/// the measurement window. Returns successful requests per second.
fn closed_loop_rps(addrs: &[SocketAddr], conns: usize) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let bodies = Arc::new(request_bodies(64));
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            let addr = addrs[i % addrs.len()];
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut j = i;
                while !stop.load(Ordering::Relaxed) {
                    let body = &bodies[j % bodies.len()];
                    j += 1;
                    match client.request("POST", "/suggest", body.as_bytes()) {
                        Ok(resp) if resp.status == 200 => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) if resp.status == 503 => {
                            // Overloaded: honor a (scaled-down) retry
                            // hint rather than hot-spinning the 503 path.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Ok(resp) => panic!("unexpected status {}", resp.status),
                        Err(_) => break,
                    }
                }
            })
        })
        .collect();
    let started = Instant::now();
    std::thread::sleep(MEASURE);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();
    for handle in handles {
        handle.join().expect("client thread");
    }
    served.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64()
}

/// Paced load at `target_rps` split across `conns` connections;
/// latency is measured from each request's scheduled send slot, so time
/// spent queued behind a slow server counts against it. Each connection
/// records into its own [`HistogramSnapshot`] (bounded memory however
/// long the run); the merged histogram is returned — merge order cannot
/// matter, which the telemetry CI gate proves by property.
fn paced_latency_histogram(addr: SocketAddr, conns: usize, target_rps: f64) -> HistogramSnapshot {
    let per_conn_interval = Duration::from_secs_f64(conns as f64 / target_rps.max(1.0));
    let bodies = Arc::new(request_bodies(64));
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = HistogramSnapshot::empty();
                let started = Instant::now();
                let mut slot = per_conn_interval.mul_f64(i as f64 / conns as f64);
                let mut j = i;
                while slot < MEASURE {
                    if let Some(wait) = slot.checked_sub(started.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let body = &bodies[j % bodies.len()];
                    j += 1;
                    let ok = matches!(
                        client.request("POST", "/suggest", body.as_bytes()),
                        Ok(resp) if resp.status == 200
                    );
                    if ok {
                        let done = started.elapsed();
                        latencies.record((done - slot).as_micros() as u64);
                    }
                    slot += per_conn_interval;
                }
                latencies
            })
        })
        .collect();
    let mut all = HistogramSnapshot::empty();
    for handle in handles {
        all.merge(&handle.join().expect("client thread"));
    }
    all
}

/// Writer + `n` replicas over loopback: apply an update burst, wait for
/// convergence, then measure aggregate closed-loop throughput across
/// all endpoints (writer excluded — the series isolates replica
/// scaling).
fn replicated_rps(n: usize) -> f64 {
    let writer_service = build_service(2);
    let writer = ReplicatedWriter::bind(Arc::clone(&writer_service), "127.0.0.1:0")
        .expect("bind replication");
    let replicas: Vec<Replica> = (0..n)
        .map(|_| {
            Replica::connect(
                writer.replication_addr(),
                oracle_for,
                ReplicaOptions::default(),
            )
            .expect("replica connect")
        })
        .collect();
    // A small live-update burst, then convergence: every replica must
    // reach the writer's version before the measurement starts.
    let updates: Vec<fairrank::DatasetUpdate> = (0..4)
        .map(|i| fairrank::DatasetUpdate::Insert {
            scores: vec![0.3 + 0.1 * f64::from(i), 0.6],
            groups: vec![1],
        })
        .collect();
    writer.apply(&updates).expect("apply update burst");
    let target = writer_service.version();
    let deadline = Instant::now() + Duration::from_secs(10);
    while replicas.iter().any(|r| r.version() < target) {
        assert!(Instant::now() < deadline, "replicas failed to converge");
        std::thread::sleep(Duration::from_millis(5));
    }
    let servers: Vec<HttpServer> = replicas
        .iter()
        .map(|r| {
            HttpServer::bind(
                r.service(),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 4,
                    ..ServerConfig::default()
                },
            )
            .expect("bind replica http")
        })
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(HttpServer::local_addr).collect();
    // Offered load scales with the deployment (4 connections per
    // replica) so the load generator never becomes the bottleneck that
    // flattens the scaling series.
    let rps = closed_loop_rps(&addrs, 4 * n);
    for server in servers {
        server.shutdown();
    }
    for replica in replicas {
        replica.shutdown();
    }
    writer.shutdown();
    rps
}

/// Cached-hit throughput with the stage timing layer on vs off, as a
/// percentage lost to telemetry. Best-of-two windows per leg damp
/// scheduler noise; the same 64-request fan repeats, so after warmup
/// the answer cache serves nearly every request — the worst case for
/// timing overhead, since there is no oracle work to hide it behind.
fn telemetry_overhead_pct() -> (f64, f64, f64) {
    let mut best = [0f64; 2];
    for (slot, timing) in [(0usize, true), (1usize, false)] {
        let service = build_service_telemetry(2, timing);
        let server = HttpServer::bind(
            service,
            "127.0.0.1:0",
            ServerConfig {
                threads: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind http");
        let addr = server.local_addr();
        let _ = closed_loop_rps(&[addr], 2); // warm the answer cache
        best[slot] = closed_loop_rps(&[addr], 4).max(closed_loop_rps(&[addr], 4));
        server.shutdown();
    }
    let (on, off) = (best[0], best[1]);
    let pct = ((off - on) / off.max(1.0) * 100.0).max(0.0);
    (on, off, pct)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    // --- single-server saturation + latency -----------------------------
    let service = build_service(2);
    let server = HttpServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            threads: SATURATION_CONNS,
            ..ServerConfig::default()
        },
    )
    .expect("bind http");
    let addr = server.local_addr();

    // Short warmup settles the answer cache and the latency EWMA.
    let _ = closed_loop_rps(&[addr], 2);
    let saturation = closed_loop_rps(&[addr], SATURATION_CONNS);
    println!("net.saturation_rps       {saturation:>12.0}");

    let latencies = paced_latency_histogram(addr, 4, saturation * 0.5);
    let p50 = latencies.quantile(0.50);
    let p99 = latencies.quantile(0.99);
    println!("net.p50_us               {p50:>12.1}   (paced at 50% of saturation)");
    println!("net.p99_us               {p99:>12.1}");
    server.shutdown();
    drop(service);

    // --- replica scaling -------------------------------------------------
    let mut replica_series = Vec::new();
    for n in [1usize, 2, 4] {
        let rps = replicated_rps(n);
        println!("net.replicas_{n}_rps       {rps:>12.0}");
        replica_series.push((n, rps));
    }

    // --- telemetry overhead guard ---------------------------------------
    let (on_rps, off_rps, overhead_pct) = telemetry_overhead_pct();
    println!("telemetry.overhead_pct   {overhead_pct:>12.2}   (on {on_rps:.0} rps, off {off_rps:.0} rps)");

    let series: Vec<(&str, f64)> = vec![
        ("net.saturation_rps", round3(saturation)),
        ("net.p50_us", round3(p50)),
        ("net.p99_us", round3(p99)),
        ("net.replicas_1_rps", round3(replica_series[0].1)),
        ("net.replicas_2_rps", round3(replica_series[1].1)),
        ("net.replicas_4_rps", round3(replica_series[2].1)),
        ("telemetry.overhead_pct", round3(overhead_pct)),
    ];
    merge_into_baseline(&path, &series);
    println!("recorded {} series into {path}", series.len());

    if overhead_pct > 3.0 {
        eprintln!("FAIL: telemetry overhead {overhead_pct:.2}% exceeds the 3% budget");
        std::process::exit(1);
    }
}
