//! `fairrank-net`: the network tier over the fair-ranking service —
//! dependency-free HTTP/1.1 serving, single-writer replication, and the
//! load harness that measures both.
//!
//! The paper's query model ("Designing Fair Ranking Schemes", Asudeh et
//! al., SIGMOD 2019) is an online service: a ranker proposes a scoring
//! function, the index answers with a satisfactory nearby one. The
//! `fairrank-serve` crate takes that to a process-local async pipeline;
//! this crate takes it across the process boundary:
//!
//! * [`HttpServer`] ([`server`]) — a hand-rolled HTTP/1.1 front end
//!   (accept loop → connection-thread pool, keep-alive, fixed-length
//!   bodies) speaking a minimal JSON protocol ([`json`]) over
//!   [`FairRankService`](fairrank_serve::FairRankService). Endpoints:
//!   `POST /suggest`, `POST /suggest_batch`, `GET /stats`,
//!   `GET /healthz`. Overload surfaces as 503 with an honest
//!   `Retry-After` derived from the service's live depth gauge and an
//!   EWMA of observed latency.
//! * [`ReplicatedWriter`] / [`Replica`] ([`replication`]) — a
//!   single-writer, N-reader deployment: replicas bootstrap from a
//!   dataset + ranker snapshot and tail a versioned `TAG_UPDATE_LOG`
//!   stream, all length-prefixed TCP frames of the sealed
//!   [`fairrank::persist`] artifacts.
//! * `netbench` (the crate's binary) — spawns writer + N replicas over
//!   loopback, drives load, and records `net.*` series into
//!   `BENCH_baseline.json`.
//!
//! The tier inherits the stack's core guarantee and proves it end to
//! end: an answer served over HTTP — from the writer or from any
//! replica at the same version — is **bit-identical** to calling
//! [`FairRanker::respond_batch`](fairrank::FairRanker::respond_batch)
//! directly (gated by `tests/net_equivalence.rs`; the f64 round-trip
//! that makes JSON exact is documented in [`json`]). The parsers never
//! panic on malformed input (fuzzed in `tests/net_fuzz.rs`).

pub mod health;
pub mod http;
pub mod json;
pub mod replication;
pub mod server;

pub use health::{HealthHandle, StaleInfo};
pub use replication::{Replica, ReplicaOptions, ReplicatedWriter};
pub use server::{Client, ClientResponse, HttpServer, ServerConfig};
