//! The HTTP front door over [`FairRankService`].
//!
//! ```text
//!  TcpListener ──accept──▶ bounded connection queue ──▶ worker threads
//!                                                          │ per conn:
//!                                                          │ read → parse
//!                                                          │ → route →
//!                                                          ▼ respond
//!                              FairRankService::submit_timeout(...)
//! ```
//!
//! One acceptor thread feeds a small fixed pool of connection threads
//! (keep-alive: each thread owns its connection until the peer closes,
//! so the pool size bounds concurrent *connections*, and the service's
//! own queue bounds concurrent *requests*). Endpoints:
//!
//! * `POST /suggest` — one [`SuggestRequest`] in, one suggestion out.
//! * `POST /suggest_batch` — `{"requests":[…]}` in,
//!   `{"suggestions":[…]}` out, submitted as a burst so the service's
//!   micro-batcher coalesces them.
//! * `GET /stats` — live [`ServiceStats`] (including the `in_flight`
//!   gauge) as JSON.
//! * `GET /healthz` — liveness plus the serving dataset version; a
//!   replica's version advances as it tails the writer's update log,
//!   which is how deployments observe convergence.
//! * `GET /metrics` — Prometheus text exposition over the service's
//!   metric registry (request counters, per-stage latency histograms,
//!   cache and replication counters, build timers). `/stats` is a JSON
//!   view over the *same* registry cells, so the two cannot drift.
//!
//! **Backpressure → 503.** A [`ServiceError::Overloaded`] rejection
//! carries the queue capacity and live depth; the server multiplies
//! depth by the **p95** of observed request latency (EWMA mean as the
//! cold-start fallback) to emit an honest `Retry-After` — seconds until
//! the backlog plausibly drains at tail service rate — instead of a
//! constant.
//!
//! [`SuggestRequest`]: fairrank::SuggestRequest

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairrank_serve::{FairRankService, ServiceError, ServiceStats};
use fairrank_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch};

use crate::http::{parse_request, write_response, Request, MAX_HEAD_BYTES};
use crate::json::{decode_request, encode_request, encode_suggestion, Json};

/// Tuning knobs for [`HttpServer::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection worker threads (each owns one keep-alive connection at
    /// a time). Default 4.
    pub threads: usize,
    /// Per-request admission deadline passed to
    /// [`FairRankService::submit_timeout`]: how long a request may wait
    /// for queue space before the server answers 503. Default 20 ms.
    pub submit_timeout: Duration,
    /// Staleness flag feeding `/healthz` — wire a
    /// [`Replica::health`](crate::Replica::health) handle here so a dead
    /// replication tail turns health checks non-200 instead of the
    /// replica silently serving frozen answers. `None` (the default,
    /// right for a writer or a standalone server) reports healthy
    /// whenever the process is up.
    pub health: Option<crate::health::HealthHandle>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            submit_timeout: Duration::from_millis(20),
            health: None,
        }
    }
}

/// Polling granularity for blocked reads: how quickly an idle
/// connection notices server shutdown.
const READ_TICK: Duration = Duration::from_millis(50);

/// Endpoint names for the `fairrank_http_requests_total` label; every
/// request maps to exactly one (unknown paths count as `other`).
const ENDPOINTS: [&str; 6] = [
    "suggest",
    "suggest_batch",
    "stats",
    "healthz",
    "metrics",
    "other",
];
/// Status classes for the `code` label. The server only emits 2xx, 4xx,
/// and 5xx statuses.
const CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

/// Pre-registered HTTP-tier metric handles — registration happens once
/// at bind, so the per-request path is pure atomics with no registry
/// lookups.
struct HttpMetrics {
    /// `requests[endpoint * CLASSES.len() + class]`.
    requests: Vec<Counter>,
    /// Request latency (admission → answer encoded) per serving
    /// endpoint. Always recorded — the overload `Retry-After` estimate
    /// reads its p95 — from the same `Instant` the EWMA already takes,
    /// so it adds no clock reads.
    suggest_us: Histogram,
    suggest_batch_us: Histogram,
}

impl HttpMetrics {
    fn register(registry: &Registry) -> HttpMetrics {
        let mut requests = Vec::with_capacity(ENDPOINTS.len() * CLASSES.len());
        for endpoint in ENDPOINTS {
            for class in CLASSES {
                requests.push(registry.counter(
                    "fairrank_http_requests_total",
                    "HTTP requests served, by endpoint and status class.",
                    &[("endpoint", endpoint), ("code", class)],
                ));
            }
        }
        let duration = |endpoint: &str| {
            registry.histogram(
                "fairrank_http_request_duration_us",
                "Request latency in microseconds from admission to encoded \
                 answer, by endpoint; the overload Retry-After derives from \
                 this histogram's p95.",
                &[("endpoint", endpoint)],
            )
        };
        HttpMetrics {
            requests,
            suggest_us: duration("suggest"),
            suggest_batch_us: duration("suggest_batch"),
        }
    }
}

struct ServerShared {
    service: Arc<FairRankService>,
    submit_timeout: Duration,
    health: Option<crate::health::HealthHandle>,
    shutdown: AtomicBool,
    /// Pending accepted connections awaiting a worker.
    conns: Mutex<Vec<TcpStream>>,
    conn_ready: Condvar,
    /// EWMA of per-request service latency in microseconds (7/8 decay),
    /// 0 until the first sample. Kept as the cold-start fallback for the
    /// `Retry-After` estimate (and exported as a gauge for comparison
    /// against the histogram p95 that now drives it).
    ewma_us: AtomicU64,
    /// The service's metric registry; the HTTP tier registers its own
    /// families here so one `GET /metrics` scrape covers the stack.
    telemetry: Arc<Registry>,
    http: HttpMetrics,
    ewma_gauge: Gauge,
    /// Wire-side stage spans (`net_parse`/`net_write` series of the
    /// shared `fairrank_stage_duration_us` family); `None` under
    /// `telemetry-off` so no clocks are read.
    stage_parse: Option<Histogram>,
    stage_write: Option<Histogram>,
}

impl ServerShared {
    fn note_latency(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            (7 * old + sample) / 8
        };
        self.ewma_us.store(new, Ordering::Relaxed);
        self.ewma_gauge.set(i64::try_from(new).unwrap_or(i64::MAX));
    }

    /// Seconds until `depth` outstanding requests plausibly drain at the
    /// observed service rate, clamped to `[1, 30]`.
    ///
    /// The per-request estimate is the **p95** of observed request
    /// latency (suggest and suggest_batch merged): a mean under bimodal
    /// load — cache-hit floods punctuated by oracle-pass stragglers —
    /// under-advises clients, while a tail quantile drains the backlog
    /// with high probability. Before any request has completed (nothing
    /// in the histograms), the EWMA mean is the fallback; with neither,
    /// the clamp floor of 1 s applies — deterministically.
    fn retry_after_secs(&self, depth: usize) -> u64 {
        let mut snap = self.http.suggest_us.snapshot();
        snap.merge(&self.http.suggest_batch_us.snapshot());
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let per_request_us = if snap.is_empty() {
            self.ewma_us.load(Ordering::Relaxed)
        } else {
            snap.quantile(0.95) as u64
        }
        .max(1);
        let micros = (depth as u64).saturating_mul(per_request_us);
        micros.div_ceil(1_000_000).clamp(1, 30)
    }

    /// Count one served request by endpoint and status class, sniffing
    /// the status digit from the serialized response head
    /// (`HTTP/1.1 NNN …`) so every branch of `route` is covered without
    /// threading a status back out.
    fn note_request(&self, method: &str, path: &str, response: &[u8]) {
        let endpoint = match (method, path) {
            ("POST", "/suggest") => 0,
            ("POST", "/suggest_batch") => 1,
            ("GET", "/stats") => 2,
            ("GET", "/healthz") => 3,
            ("GET", "/metrics") => 4,
            _ => 5,
        };
        let class = match response.get(9) {
            Some(b'2') => 0,
            Some(b'4') => 1,
            _ => 2,
        };
        self.http.requests[endpoint * CLASSES.len() + class].inc();
    }
}

/// A running HTTP front end. Bind with [`HttpServer::bind`], stop with
/// [`HttpServer::shutdown`] (dropping also shuts down).
pub struct HttpServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and start serving `service`.
    ///
    /// # Errors
    /// [`std::io::Error`] if the listener cannot bind.
    pub fn bind(
        service: Arc<FairRankService>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let telemetry = service.telemetry();
        let http = HttpMetrics::register(&telemetry);
        let ewma_gauge = telemetry.gauge(
            "fairrank_http_latency_ewma_us",
            "EWMA (7/8 decay) of request latency in microseconds — the \
             legacy Retry-After estimator, kept for comparison against \
             the p95 that now drives it.",
            &[],
        );
        let stage = |name: &str| {
            fairrank_telemetry::ENABLED.then(|| {
                telemetry.histogram(
                    "fairrank_stage_duration_us",
                    "Serving pipeline stage durations in microseconds, labeled by stage.",
                    &[("stage", name)],
                )
            })
        };
        let shared = Arc::new(ServerShared {
            service,
            submit_timeout: config.submit_timeout,
            health: config.health,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_ready: Condvar::new(),
            ewma_us: AtomicU64::new(0),
            stage_parse: stage("net_parse"),
            stage_write: stage("net_write"),
            telemetry,
            http,
            ewma_gauge,
        });
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fairrank-net-{i}"))
                    .spawn(move || connection_worker(&shared))
                    .expect("spawn connection worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fairrank-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(HttpServer {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves the port when bound to `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, unwind the worker pool, and join
    /// every server thread. In-flight responses are finished; idle
    /// keep-alive connections are closed at the next read tick.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection to self.
        let _ = TcpStream::connect(self.addr);
        self.shared.conn_ready.notify_all();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut conns = shared.conns.lock().expect("conn queue poisoned");
                conns.push(stream);
                drop(conns);
                shared.conn_ready.notify_one();
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. fd pressure); keep going.
            }
        }
    }
}

fn connection_worker(shared: &ServerShared) {
    loop {
        let stream = {
            let mut conns = shared.conns.lock().expect("conn queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(stream) = conns.pop() {
                    break stream;
                }
                conns = shared.conn_ready.wait(conns).expect("conn queue poisoned");
            }
        };
        serve_connection(shared, stream);
    }
}

/// Keep-alive loop over one connection: read, parse, route, respond,
/// until the peer closes, an error forces a close, or the server shuts
/// down.
fn serve_connection(shared: &ServerShared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Serve every complete request already buffered (pipelining).
        loop {
            // Only a completed parse records: attempts over a partial
            // buffer are re-parsed (from scratch) once more bytes land,
            // so counting them would double-bill the stage.
            let parse_sw = Stopwatch::start_if(shared.stage_parse.is_some());
            match parse_request(&buf) {
                Ok(Some((req, consumed))) => {
                    if let Some(h) = &shared.stage_parse {
                        parse_sw.record(h);
                    }
                    buf.drain(..consumed);
                    let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                    let mut out = Vec::with_capacity(256);
                    route(shared, &req, keep_alive, &mut out);
                    shared.note_request(&req.method, &req.path, &out);
                    let write_sw = Stopwatch::start_if(shared.stage_write.is_some());
                    if stream.write_all(&out).is_err() {
                        return;
                    }
                    if let Some(h) = &shared.stage_write {
                        write_sw.record(h);
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let (status, reason) = e.status();
                    let body = error_body(e.message());
                    let mut out = Vec::with_capacity(128);
                    write_response(&mut out, status, reason, &[], body.as_bytes(), false);
                    let _ = stream.write_all(&out);
                    return;
                }
            }
        }
        if buf.len() > MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES {
            // parse_request caps declared sizes, so this is unreachable
            // in practice; a hard cap keeps a misbehaving peer from
            // growing the buffer without bound regardless.
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_string(), Json::Str(message.to_string()))]).to_text()
}

fn route(shared: &ServerShared, req: &Request, keep_alive: bool, out: &mut Vec<u8>) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/suggest") => suggest_one(shared, &req.body, keep_alive, out),
        ("POST", "/suggest_batch") => suggest_batch(shared, &req.body, keep_alive, out),
        ("GET", "/stats") => {
            let body = stats_json(&shared.service.stats());
            write_response(out, 200, "OK", &JSON_CT, body.as_bytes(), keep_alive);
        }
        ("GET", "/metrics") => {
            // `stats()` refreshes the derived gauges (queue depth,
            // cache residency, version) in the registry; the counters
            // are the very cells `/stats` reports, so the two views
            // cannot drift. Build timers live in the process-global
            // registry — append every global family this service's
            // registry doesn't already expose.
            let _ = shared.service.stats();
            let mut body = shared.telemetry.render();
            let local: std::collections::HashSet<String> =
                shared.telemetry.family_names().into_iter().collect();
            body.push_str(&fairrank_telemetry::global().render_excluding(&local));
            write_response(out, 200, "OK", &PROM_CT, body.as_bytes(), keep_alive);
        }
        ("GET", "/healthz") => {
            // A stale replica is alive but frozen: answer 503 so load
            // balancers rotate it out, with the last applied version and
            // the cause so operators can see how far behind it is.
            let stale = shared.health.as_ref().and_then(|h| h.staleness());
            #[allow(clippy::cast_precision_loss)]
            let mut fields = vec![
                (
                    "status".to_string(),
                    Json::Str(if stale.is_some() { "stale" } else { "ok" }.to_string()),
                ),
                ("stale".to_string(), Json::Bool(stale.is_some())),
                (
                    "version".to_string(),
                    Json::Num(shared.service.version() as f64),
                ),
            ];
            if let Some(info) = stale {
                #[allow(clippy::cast_precision_loss)]
                fields.push((
                    "last_applied".to_string(),
                    Json::Num(info.last_applied as f64),
                ));
                fields.push(("reason".to_string(), Json::Str(info.reason)));
                let body = Json::Obj(fields).to_text();
                write_response(
                    out,
                    503,
                    "Service Unavailable",
                    &JSON_CT,
                    body.as_bytes(),
                    keep_alive,
                );
            } else {
                let body = Json::Obj(fields).to_text();
                write_response(out, 200, "OK", &JSON_CT, body.as_bytes(), keep_alive);
            }
        }
        ("GET" | "POST", _) => {
            let body = error_body("no such endpoint");
            write_response(out, 404, "Not Found", &JSON_CT, body.as_bytes(), keep_alive);
        }
        _ => {
            let body = error_body("method not allowed");
            write_response(
                out,
                405,
                "Method Not Allowed",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
        }
    }
}

const JSON_CT: [(&str, &str); 1] = [("content-type", "application/json")];
const PROM_CT: [(&str, &str); 1] = [("content-type", "text/plain; version=0.0.4; charset=utf-8")];

/// Decode a request body; on failure, write the 400 and return `None`.
fn parse_body(body: &[u8], keep_alive: bool, out: &mut Vec<u8>) -> Option<Json> {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            let body = error_body("request body is not valid utf-8");
            write_response(
                out,
                400,
                "Bad Request",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
            return None;
        }
    };
    match Json::parse(text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            let body = error_body(&e.to_string());
            write_response(
                out,
                400,
                "Bad Request",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
            None
        }
    }
}

fn suggest_one(shared: &ServerShared, body: &[u8], keep_alive: bool, out: &mut Vec<u8>) {
    let Some(doc) = parse_body(body, keep_alive, out) else {
        return;
    };
    let request = match decode_request(&doc) {
        Ok(request) => request,
        Err(e) => {
            let body = error_body(&e.to_string());
            write_response(
                out,
                400,
                "Bad Request",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
            return;
        }
    };
    let started = Instant::now();
    match shared
        .service
        .submit_timeout(request, shared.submit_timeout)
        .and_then(fairrank_serve::SuggestionFuture::wait)
    {
        Ok(suggestion) => {
            let elapsed = started.elapsed();
            shared.note_latency(elapsed);
            shared
                .http
                .suggest_us
                .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
            let body = encode_suggestion(&suggestion);
            write_response(out, 200, "OK", &JSON_CT, body.as_bytes(), keep_alive);
        }
        Err(e) => service_error_response(shared, &e, keep_alive, out),
    }
}

fn suggest_batch(shared: &ServerShared, body: &[u8], keep_alive: bool, out: &mut Vec<u8>) {
    let Some(doc) = parse_body(body, keep_alive, out) else {
        return;
    };
    let Some(items) = doc.get("requests").and_then(Json::as_arr) else {
        let body = error_body("\"requests\" must be an array");
        write_response(
            out,
            400,
            "Bad Request",
            &JSON_CT,
            body.as_bytes(),
            keep_alive,
        );
        return;
    };
    let mut requests = Vec::with_capacity(items.len());
    for item in items {
        match decode_request(item) {
            Ok(request) => requests.push(request),
            Err(e) => {
                let body = error_body(&e.to_string());
                write_response(
                    out,
                    400,
                    "Bad Request",
                    &JSON_CT,
                    body.as_bytes(),
                    keep_alive,
                );
                return;
            }
        }
    }
    // Submit the whole burst before awaiting anything, so the service's
    // micro-batcher sees it as one coalescible wave.
    let started = Instant::now();
    let mut futures = Vec::with_capacity(requests.len());
    for request in requests {
        match shared
            .service
            .submit_timeout(request, shared.submit_timeout)
        {
            Ok(future) => futures.push(future),
            Err(e) => {
                // Futures already admitted are abandoned; their answers
                // complete into dropped receivers, which the service
                // treats as callers that stopped caring.
                service_error_response(shared, &e, keep_alive, out);
                return;
            }
        }
    }
    let mut suggestions = Vec::with_capacity(futures.len());
    for future in futures {
        match future.wait() {
            Ok(suggestion) => suggestions.push(suggestion),
            Err(e) => {
                service_error_response(shared, &e, keep_alive, out);
                return;
            }
        }
    }
    let elapsed = started.elapsed();
    shared.note_latency(elapsed);
    shared
        .http
        .suggest_batch_us
        .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    let mut body = String::from("{\"suggestions\":[");
    for (i, suggestion) in suggestions.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&encode_suggestion(suggestion));
    }
    body.push_str("]}");
    write_response(out, 200, "OK", &JSON_CT, body.as_bytes(), keep_alive);
}

fn service_error_response(
    shared: &ServerShared,
    error: &ServiceError,
    keep_alive: bool,
    out: &mut Vec<u8>,
) {
    match error {
        ServiceError::Overloaded { depth, .. } => {
            let retry = shared.retry_after_secs(*depth).to_string();
            let body = error_body(&error.to_string());
            write_response(
                out,
                503,
                "Service Unavailable",
                &[
                    ("content-type", "application/json"),
                    ("retry-after", &retry),
                ],
                body.as_bytes(),
                keep_alive,
            );
        }
        ServiceError::Closed => {
            let body = error_body("service is shutting down");
            write_response(
                out,
                503,
                "Service Unavailable",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
        }
        ServiceError::Rank(e) => {
            let body = error_body(&e.to_string());
            write_response(
                out,
                400,
                "Bad Request",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
        }
        _ => {
            let body = error_body(&error.to_string());
            write_response(
                out,
                500,
                "Internal Server Error",
                &JSON_CT,
                body.as_bytes(),
                keep_alive,
            );
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn stats_json(stats: &ServiceStats) -> String {
    let cache = match &stats.cache {
        Some(c) => Json::Obj(vec![
            ("hits".to_string(), Json::Num(c.hits as f64)),
            ("misses".to_string(), Json::Num(c.misses as f64)),
            ("insertions".to_string(), Json::Num(c.insertions as f64)),
            ("evictions".to_string(), Json::Num(c.evictions as f64)),
            (
                "invalidations".to_string(),
                Json::Num(c.invalidations as f64),
            ),
            ("entries".to_string(), Json::Num(c.entries as f64)),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("queued".to_string(), Json::Num(stats.queued as f64)),
        ("in_flight".to_string(), Json::Num(stats.in_flight as f64)),
        ("submitted".to_string(), Json::Num(stats.submitted as f64)),
        ("completed".to_string(), Json::Num(stats.completed as f64)),
        ("batches".to_string(), Json::Num(stats.batches as f64)),
        ("rejected".to_string(), Json::Num(stats.rejected as f64)),
        ("workers".to_string(), Json::Num(stats.workers as f64)),
        ("cache".to_string(), cache),
    ])
    .to_text()
}

/// A tiny synchronous client for the wire protocol — what the load
/// harness, the examples, and the equivalence tests speak through. One
/// instance owns one keep-alive connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A decoded response: status code plus body bytes and the
/// `Retry-After` header when present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` seconds, when the server sent one.
    pub retry_after: Option<u64>,
}

impl Client {
    /// Open a keep-alive connection to `addr`.
    ///
    /// # Errors
    /// [`std::io::Error`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(1024),
        })
    }

    /// Issue one request and block for the response.
    ///
    /// # Errors
    /// [`std::io::Error`] on connection failure or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        use std::io::Write as _;
        let mut out = Vec::with_capacity(128 + body.len());
        let _ = write!(
            out,
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        out.extend_from_slice(body);
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// `POST /suggest` for `request`; returns the raw response (200
    /// bodies decode with [`crate::json::decode_suggestion`]).
    ///
    /// # Errors
    /// [`std::io::Error`] on connection failure or a malformed response.
    pub fn suggest(
        &mut self,
        request: &fairrank::SuggestRequest,
    ) -> std::io::Result<ClientResponse> {
        let body = encode_request(request);
        self.request("POST", "/suggest", body.as_bytes())
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response");
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(head_len) = self
                .buf
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|i| i + 4)
            {
                let head = String::from_utf8(self.buf[..head_len - 4].to_vec())
                    .map_err(|_| malformed())?;
                let mut lines = head.split("\r\n");
                let status: u16 = lines
                    .next()
                    .and_then(|l| l.split(' ').nth(1))
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(malformed)?;
                let mut content_length = 0usize;
                let mut retry_after = None;
                for line in lines {
                    if let Some((name, value)) = line.split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            content_length = value.trim().parse().map_err(|_| malformed())?;
                        } else if name.eq_ignore_ascii_case("retry-after") {
                            retry_after = value.trim().parse().ok();
                        }
                    }
                }
                while self.buf.len() < head_len + content_length {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(malformed());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                let body = self.buf[head_len..head_len + content_length].to_vec();
                self.buf.drain(..head_len + content_length);
                return Ok(ClientResponse {
                    status,
                    body,
                    retry_after,
                });
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(malformed());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}
