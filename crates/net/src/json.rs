//! A minimal JSON codec for the wire API — dependency-free, and exact
//! where it matters.
//!
//! The serving protocol moves two shapes: [`SuggestRequest`] in,
//! [`Suggestion`] out. Both carry `f64` weight vectors, and the
//! system's headline guarantee is that a networked answer is
//! **bit-identical** to a direct [`FairRanker::respond_batch`] call —
//! so the number round-trip must be exact. Rust's `f64` `Display`
//! prints the shortest decimal that parses back to the same bits
//! (Grisu/Ryū-style), and `str::parse::<f64>` performs correctly
//! rounded decimal-to-binary conversion; composing the two is an exact
//! `f64 → text → f64` round trip, which is what [`Json::write`] and the
//! number parser use. Property-tested in `tests/net_fuzz.rs`.
//!
//! The value model ([`Json`]) keeps object keys in insertion order so
//! re-writing a parsed document (the bench harness merging `net.*`
//! series into `BENCH_baseline.json`) preserves the original layout.
//!
//! The parser is a depth-limited recursive descent over `&str` (the
//! HTTP layer rejects invalid UTF-8 before it gets here), built to be
//! fuzzed: malformed input of any shape returns [`JsonError`], never
//! panics.
//!
//! [`FairRanker::respond_batch`]: fairrank::FairRanker::respond_batch

use std::fmt;

use fairrank::{KnownFairness, SuggestOptions, SuggestRequest, SuggestStats, Suggestion};

/// Nesting depth past which the parser rejects input — a stack-safety
/// bound far above anything the protocol produces (its documents nest
/// three levels deep).
const MAX_DEPTH: usize = 64;

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value. Object members keep their source order
/// (`Vec`, not a map), so a parse → edit → write cycle is
/// layout-preserving.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite: the grammar has no NaN/Infinity).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source/insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    /// [`JsonError`] locating the first offending byte; never panics on
    /// any input (fuzzed in `tests/net_fuzz.rs`).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serialize back to JSON text (compact — no added whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                // Shortest round-trip representation; the parser's
                // `str::parse::<f64>` recovers the exact bits.
                out.push_str(&x.to_string());
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to an owned string.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Object member lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Set or append an object member in place; no-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = value,
                None => members.push((key.to_string(), value)),
            }
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number value as an exact non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // `self.bytes` came from a &str and the token is pure ASCII, so
        // the slice is valid UTF-8 by construction.
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // JSON forbids a leading '+' and bare '.'; everything else the
        // grammar allows, `str::parse` converts with correct rounding.
        if token.starts_with('+') || token.starts_with('.') {
            return Err(self.err("invalid number"));
        }
        let x: f64 = token.parse().map_err(|_| self.err("invalid number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            // Consume raw (non-escape) runs as whole UTF-8 chunks.
            let run_start = self.pos;
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"' | b'\\') => break,
                    Some(&b) if b < 0x20 => return Err(self.err("control byte in string")),
                    Some(_) => self.pos += 1,
                }
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => {
                    // Escape sequence.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        None => return Err(self.err("unterminated escape")),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        Some(_) => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let mut code = 0u32;
        for &b in slice {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// A protocol-level decode failure: the JSON parsed but does not encode
/// the expected shape. Maps to 400 at the HTTP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed request body: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn f64_array(items: &[Json], what: &'static str) -> Result<Vec<f64>, CodecError> {
    items
        .iter()
        .map(|v| v.as_f64().ok_or(CodecError(what)))
        .collect()
}

/// Serialize a [`SuggestRequest`] to its wire form:
/// `{"query":[…],"k":…,"options":{"index_fastpath":…}}` (`k` omitted
/// when unset, `options` omitted when default).
#[must_use]
pub fn encode_request(req: &SuggestRequest) -> String {
    let mut members = vec![(
        "query".to_string(),
        Json::Arr(req.query.iter().map(|&x| Json::Num(x)).collect()),
    )];
    if let Some(k) = req.k {
        members.push(("k".to_string(), Json::Num(k as f64)));
    }
    if req.options != SuggestOptions::default() {
        members.push((
            "options".to_string(),
            Json::Obj(vec![(
                "index_fastpath".to_string(),
                Json::Bool(req.options.index_fastpath),
            )]),
        ));
    }
    Json::Obj(members).to_text()
}

/// Decode a [`SuggestRequest`] from a parsed document. Weight-vector
/// *semantics* (arity, finiteness, non-negativity) stay with the
/// service's own validation — this only enforces the wire shape.
///
/// # Errors
/// [`CodecError`] naming the malformed field.
pub fn decode_request(doc: &Json) -> Result<SuggestRequest, CodecError> {
    let query = doc
        .get("query")
        .and_then(Json::as_arr)
        .ok_or(CodecError("\"query\" must be an array of numbers"))?;
    let query = f64_array(query, "\"query\" must be an array of numbers")?;
    let k = match doc.get("k") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            usize::try_from(
                v.as_u64()
                    .ok_or(CodecError("\"k\" must be a non-negative integer or null"))?,
            )
            .map_err(|_| CodecError("\"k\" out of range"))?,
        ),
    };
    let mut options = SuggestOptions::default();
    if let Some(opts) = doc.get("options") {
        if !matches!(opts, Json::Obj(_)) {
            return Err(CodecError("\"options\" must be an object"));
        }
        if let Some(v) = opts.get("index_fastpath") {
            options = options.index_fastpath(
                v.as_bool()
                    .ok_or(CodecError("\"index_fastpath\" must be a boolean"))?,
            );
        }
    }
    let mut req = SuggestRequest::new(query).with_options(options);
    req.k = k;
    Ok(req)
}

/// Serialize a [`Suggestion`] to its wire form. Weight and distance
/// round-trips are exact (see the module docs), so decoding the wire
/// form recovers a bit-identical [`Suggestion`] — the property the
/// `tests/net_equivalence.rs` gate leans on.
#[must_use]
pub fn encode_suggestion(s: &Suggestion) -> String {
    let fairness = match &s.fairness {
        KnownFairness::AlreadyFair => Json::Obj(vec![(
            "kind".to_string(),
            Json::Str("already_fair".to_string()),
        )]),
        KnownFairness::Suggested { distance } => Json::Obj(vec![
            ("kind".to_string(), Json::Str("suggested".to_string())),
            ("distance".to_string(), Json::Num(*distance)),
        ]),
        KnownFairness::Infeasible => Json::Obj(vec![(
            "kind".to_string(),
            Json::Str("infeasible".to_string()),
        )]),
    };
    let top_k = match &s.stats.top_k {
        Some(ids) => Json::Arr(ids.iter().map(|&id| Json::Num(f64::from(id))).collect()),
        None => Json::Null,
    };
    Json::Obj(vec![
        (
            "weights".to_string(),
            Json::Arr(s.weights.iter().map(|&x| Json::Num(x)).collect()),
        ),
        #[allow(clippy::cast_precision_loss)]
        ("version".to_string(), Json::Num(s.version as f64)),
        ("fairness".to_string(), fairness),
        (
            "stats".to_string(),
            Json::Obj(vec![
                (
                    "index_decided".to_string(),
                    Json::Bool(s.stats.index_decided),
                ),
                ("top_k".to_string(), top_k),
            ]),
        ),
    ])
    .to_text()
}

/// Decode a [`Suggestion`] from a parsed document — the client half of
/// [`encode_suggestion`].
///
/// # Errors
/// [`CodecError`] naming the malformed field.
pub fn decode_suggestion(doc: &Json) -> Result<Suggestion, CodecError> {
    let weights = doc
        .get("weights")
        .and_then(Json::as_arr)
        .ok_or(CodecError("\"weights\" must be an array of numbers"))?;
    let weights = f64_array(weights, "\"weights\" must be an array of numbers")?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or(CodecError("\"version\" must be a non-negative integer"))?;
    let fairness_doc = doc
        .get("fairness")
        .ok_or(CodecError("\"fairness\" missing"))?;
    let fairness = match fairness_doc.get("kind").and_then(Json::as_str) {
        Some("already_fair") => KnownFairness::AlreadyFair,
        Some("suggested") => KnownFairness::Suggested {
            distance: fairness_doc
                .get("distance")
                .and_then(Json::as_f64)
                .ok_or(CodecError("\"distance\" must be a number"))?,
        },
        Some("infeasible") => KnownFairness::Infeasible,
        _ => return Err(CodecError("unknown \"fairness\" kind")),
    };
    let stats_doc = doc.get("stats").ok_or(CodecError("\"stats\" missing"))?;
    let index_decided = stats_doc
        .get("index_decided")
        .and_then(Json::as_bool)
        .ok_or(CodecError("\"index_decided\" must be a boolean"))?;
    let top_k = match stats_doc.get("top_k") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(items)) => Some(
            items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|id| u32::try_from(id).ok())
                        .ok_or(CodecError("\"top_k\" must be item ids"))
                })
                .collect::<Result<Vec<u32>, CodecError>>()?,
        ),
        Some(_) => return Err(CodecError("\"top_k\" must be an array or null")),
    };
    Ok(Suggestion {
        weights,
        version,
        fairness,
        stats: SuggestStats {
            index_decided,
            top_k,
        },
    })
}

/// Pretty-print `json` into `out`: objects expand one member per line
/// at two-space indents, everything else renders compact. This is the
/// layout `BENCH_baseline.json` is kept in, shared by every harness bin
/// that rewrites it.
pub fn pretty(json: &Json, indent: usize, out: &mut String) {
    match json {
        Json::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + 2));
                Json::Str(key.clone()).write(out);
                out.push_str(": ");
                pretty(value, indent + 2, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => other.write(out),
    }
}

/// Merge `series` key/value pairs into the `series` object of the
/// baseline JSON at `path`, creating the file (with the standard
/// envelope) if absent and preserving every series other harnesses
/// recorded — the non-clobbering update every bench bin must use so
/// they can share one baseline file.
///
/// # Panics
/// If the existing file does not parse, or the rewrite fails — a bench
/// harness wants those loud, not swallowed.
pub fn merge_into_baseline(path: &str, series: &[(&str, f64)]) {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).expect("parse existing baseline"),
        Err(_) => Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            (
                "note".to_string(),
                Json::Str("reduced-scale perf baseline".to_string()),
            ),
            ("series".to_string(), Json::Obj(Vec::new())),
        ]),
    };
    if doc.get("series").is_none() {
        doc.set("series", Json::Obj(Vec::new()));
    }
    if let Json::Obj(members) = &mut doc {
        if let Some((_, series_obj)) = members.iter_mut().find(|(k, _)| k == "series") {
            for &(key, value) in series {
                series_obj.set(key, Json::Num(value));
            }
        }
    }
    let mut text = String::new();
    pretty(&doc, 0, &mut text);
    text.push('\n');
    std::fs::write(path, text).expect("write baseline");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_rewrite_preserves_layout() {
        let src = r#"{"b":1,"a":[true,null,"x\n"],"c":{"d":-2.5e3}}"#;
        let doc = Json::parse(src).unwrap();
        assert_eq!(
            doc.to_text(),
            r#"{"b":1,"a":[true,null,"x\n"],"c":{"d":-2500}}"#
        );
        assert_eq!(doc.get("b").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "+1",
            ".5",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"unterminated",
            "[1] trailing",
            "1e999",
            "-",
            "{\"a\":1,}",
            "[,]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let doc = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀"));
    }

    #[test]
    fn request_round_trip() {
        let req = SuggestRequest::new(vec![1.0, 0.1234567890123456])
            .with_top_k(5)
            .with_options(SuggestOptions::default().index_fastpath(false));
        let text = encode_request(&req);
        let back = decode_request(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, req);
        for (a, b) in back.query.iter().zip(&req.query) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn suggestion_round_trip() {
        let s = Suggestion {
            // Two adjacent representable f64s (1/sqrt(2) and the next
            // one down): only exact bit round-tripping tells them apart.
            weights: vec![
                std::f64::consts::FRAC_1_SQRT_2,
                f64::from_bits(std::f64::consts::FRAC_1_SQRT_2.to_bits() - 1),
            ],
            version: 42,
            fairness: KnownFairness::Suggested {
                distance: 0.012345678901234567,
            },
            stats: SuggestStats {
                index_decided: false,
                top_k: Some(vec![3, 0, 7]),
            },
        };
        let back = decode_suggestion(&Json::parse(&encode_suggestion(&s)).unwrap()).unwrap();
        assert_eq!(back, s);
        for (a, b) in back.weights.iter().zip(&s.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn request_shape_errors_are_specific() {
        for (body, _) in [
            (r#"{}"#, "query"),
            (r#"{"query":"no"}"#, "query"),
            (r#"{"query":[1,"x"]}"#, "query"),
            (r#"{"query":[1,2],"k":-1}"#, "k"),
            (r#"{"query":[1,2],"k":1.5}"#, "k"),
            (r#"{"query":[1,2],"options":3}"#, "options"),
            (
                r#"{"query":[1,2],"options":{"index_fastpath":1}}"#,
                "options",
            ),
        ] {
            let doc = Json::parse(body).unwrap();
            assert!(decode_request(&doc).is_err(), "accepted {body}");
        }
    }
}
