//! A hand-rolled HTTP/1.1 subset: exactly what the serving front end
//! needs, and nothing it doesn't.
//!
//! Supported: request line + headers + fixed-length bodies
//! (`Content-Length`), keep-alive (HTTP/1.1 default; `Connection`
//! header respected both ways). Deliberately unsupported: chunked
//! transfer encoding (rejected with 411 — the protocol's bodies are
//! small JSON documents with known length), multi-line header folding
//! (rejected with 400; obsolete per RFC 7230), and anything above
//! HTTP/1.1.
//!
//! The parser is a **pure function** over a byte buffer
//! ([`parse_request`]): it either needs more bytes, yields a complete
//! request plus the number of bytes it consumed, or rejects with an
//! [`HttpError`] that maps 1:1 onto a 4xx status. No I/O, no state —
//! which is what makes it directly fuzzable (`tests/net_fuzz.rs` feeds
//! it truncations, byte mutations, and oversized inputs and asserts it
//! never panics).

use std::fmt;

/// Reject request heads (request line + headers) larger than this: 431.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Reject declared bodies larger than this: 413. Generous for the
/// protocol's JSON documents (a 4 MiB batch is ~100k queries).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A structurally invalid or unsupported request. Each variant maps to
/// one 4xx status ([`HttpError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` value → 400.
    BadRequest(&'static str),
    /// The head exceeds [`MAX_HEAD_BYTES`] → 431.
    HeadersTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Chunked (or otherwise non-fixed-length) transfer encoding → 411:
    /// this server requires a `Content-Length`.
    LengthRequired,
}

impl HttpError {
    /// The response status this error maps to.
    #[must_use]
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::LengthRequired => (411, "Length Required"),
        }
    }

    /// A short human-readable description for the error body.
    #[must_use]
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(msg) => msg,
            HttpError::HeadersTooLarge => "request head exceeds 8 KiB",
            HttpError::BodyTooLarge => "request body exceeds 4 MiB",
            HttpError::LengthRequired => "fixed-length body required (no chunked encoding)",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (code, reason) = self.status();
        write!(f, "{code} {reason}: {}", self.message())
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (e.g. `GET`, `POST`).
    pub method: String,
    /// The request target, verbatim (e.g. `/suggest`).
    pub path: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to yes, HTTP/1.0 to no; a `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
    /// The fixed-length body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Try to parse one request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds an incomplete request (read
/// more bytes and retry), or `Ok(Some((request, consumed)))` — the
/// caller drains `consumed` bytes and may find a pipelined successor
/// behind them.
///
/// # Errors
/// [`HttpError`] on structurally invalid or unsupported input; the
/// connection should answer with [`HttpError::status`] and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4])
        .map_err(|_| HttpError::BadRequest("request head is not valid utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported http version")),
    };

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadRequest("obsolete header folding"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let len: usize = value
                .parse()
                .map_err(|_| HttpError::BadRequest("invalid content-length"))?;
            // Duplicate Content-Length headers with differing values are
            // a smuggling vector; reject unless they agree.
            if content_length.is_some_and(|prev| prev != len) {
                return Err(HttpError::BadRequest("conflicting content-length"));
            }
            content_length = Some(len);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::LengthRequired);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )))
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present
/// within the scan window.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES + 3)];
    window
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
}

/// Serialize one response (status line, headers, `Content-Length`,
/// `Connection`, body) into `out`.
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) {
    use std::io::Write as _;
    let _ = write!(out, "HTTP/1.1 {status} {reason}\r\n");
    let _ = write!(out, "content-length: {}\r\n", body.len());
    let _ = write!(
        out,
        "connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Option<(Request, usize)>, HttpError> {
        parse_request(s.as_bytes())
    }

    #[test]
    fn complete_request_parses() {
        let (req, consumed) =
            parse_str("POST /suggest HTTP/1.1\r\ncontent-length: 4\r\n\r\nbodyEXTRA")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/suggest");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"body");
        assert_eq!(
            consumed,
            "POST /suggest HTTP/1.1\r\ncontent-length: 4\r\n\r\nbody".len()
        );
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert_eq!(parse_str("GET /healthz HTT").unwrap(), None);
        assert_eq!(
            parse_str("POST /s HTTP/1.1\r\ncontent-length: 10\r\n\r\nhalf").unwrap(),
            None
        );
    }

    #[test]
    fn connection_semantics() {
        let (req, _) = parse_str("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let (req, _) = parse_str("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        let (req, _) = parse_str("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        for (input, expected) in [
            ("GARBAGE\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 400),
            ("GET / HTTP/1.1 extra\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nno-colon\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nbad name: x\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n", 400),
            (
                "POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n",
                400,
            ),
            (
                "POST / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
                413,
            ),
            ("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 411),
            ("GET / HTTP/1.1\r\nx: 1\r\n folded\r\n\r\n", 400),
        ] {
            match parse_str(input) {
                Err(e) => assert_eq!(e.status().0, expected, "{input:?}"),
                other => panic!("{input:?}: expected {expected}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_head_rejected() {
        let huge = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse_str(&huge), Err(HttpError::HeadersTooLarge));
        // Even without a terminator in sight.
        let unterminated = "a".repeat(MAX_HEAD_BYTES + 1);
        assert_eq!(parse_str(&unterminated), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn invalid_utf8_head_rejected() {
        let mut bytes = b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec();
        assert!(matches!(
            parse_request(&bytes),
            Err(HttpError::BadRequest(_))
        ));
        bytes.clear();
        bytes.extend_from_slice(b"GET / HTTP/1.1\r\nx: \xc3\x28\r\n\r\n");
        assert!(matches!(
            parse_request(&bytes),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_str(two).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, _) = parse_request(&two.as_bytes()[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn response_writer_shape() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            &[("retry-after", "2")],
            b"{}",
            true,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
