//! Single-writer / N-reader replication over length-prefixed TCP.
//!
//! ```text
//!   ReplicatedWriter                         Replica (×N)
//!   ┌───────────────────────┐   connect   ┌──────────────────────────┐
//!   │ FairRankService (rw)  │◀────────────│ TcpStream                │
//!   │  apply(updates):      │  dataset    │ bootstrap:               │
//!   │   service.update(…)   │──frame─────▶│  decode_dataset          │
//!   │   broadcast update    │  ranker     │  FairRanker::from_bytes  │
//!   │   log frame           │──frame─────▶│  build FairRankService   │
//!   └───────────┬───────────┘             │ tail thread:             │
//!               │  TAG_UPDATE_LOG frames  │  decode_update_log       │
//!               ╰────────────────────────▶│  check base == version   │
//!                                         │  service.update_batch    │
//!                                         └──────────────────────────┘
//! ```
//!
//! **Wire format.** Every message is one frame: a `u32` little-endian
//! payload length, then the payload. A replica's bootstrap is two
//! frames — the writer's [`Dataset`] (`TAG_DATASET` codec) and a
//! whole-ranker snapshot (`TAG_RANKER` envelope, carrying the update
//! counter) — followed by a stream of `TAG_UPDATE_LOG` frames, each a
//! versioned batch of [`DatasetUpdate`]s. All three payloads are the
//! sealed, checksummed artifacts from [`fairrank::persist`]; a flipped
//! bit on the wire is caught by the decoder, not applied to the index.
//!
//! **Consistency.** The writer serializes *apply + broadcast* and
//! *snapshot + subscribe* under one lock, so a replica that bootstraps
//! at version `V` receives exactly the frames with `base_version ≥ V`,
//! gap-free. Replicas verify `base_version` against their own
//! [`FairRankService::version`] before applying and stop (reporting via
//! [`Replica::error`]) on any mismatch — a diverged replica keeps
//! serving its last good snapshot rather than serving wrong answers.
//!
//! Fairness oracles are code, not data, so they do not travel: a
//! replica reconstructs its oracle from the shipped dataset via the
//! caller's factory closure — the same pattern as
//! [`FairRanker::from_bytes`].
//!
//! [`FairRanker::from_bytes`]: fairrank::FairRanker::from_bytes

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fairrank::persist::{decode_dataset, decode_update_log, encode_dataset, encode_update_log};
use fairrank::{DatasetUpdate, FairRanker, UpdateOutcome};
use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_serve::{FairRankService, ServiceError};

/// Reject frames larger than this (a defense against a corrupted or
/// hostile length prefix, not a protocol limit).
const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Polling granularity for the replica tail loop and the writer
/// acceptor: how quickly they notice shutdown.
const POLL_TICK: Duration = Duration::from_millis(50);

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)
}

/// Blocking frame read (bootstrap path — no shutdown polling).
fn read_frame_blocking(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

struct WriterShared {
    service: Arc<FairRankService>,
    shutdown: AtomicBool,
    /// Guards apply+broadcast and snapshot+subscribe: holding it across
    /// both is what makes a bootstrap snapshot and the subsequent frame
    /// stream gap-free.
    subscribers: Mutex<Vec<TcpStream>>,
}

/// The writer end of a replicated deployment: owns the only
/// [`FairRankService`] that accepts [`DatasetUpdate`]s, and ships every
/// applied batch to subscribed [`Replica`]s.
pub struct ReplicatedWriter {
    shared: Arc<WriterShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl ReplicatedWriter {
    /// Start accepting replica subscriptions on `addr` (use
    /// `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    /// [`std::io::Error`] if the listener cannot bind.
    pub fn bind(service: Arc<FairRankService>, addr: &str) -> std::io::Result<ReplicatedWriter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(WriterShared {
            service,
            shutdown: AtomicBool::new(false),
            subscribers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fairrank-repl-accept".to_string())
                .spawn(move || accept_replicas(&listener, &shared))
                .expect("spawn replication acceptor")
        };
        Ok(ReplicatedWriter {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The address replicas connect to.
    #[must_use]
    pub fn replication_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The writer's serving service (shareable with an
    /// [`HttpServer`](crate::HttpServer)).
    #[must_use]
    pub fn service(&self) -> Arc<FairRankService> {
        Arc::clone(&self.shared.service)
    }

    /// Currently subscribed replicas.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned")
            .len()
    }

    /// Apply a batch of updates to the writer's service and ship the
    /// applied prefix to every subscriber as one `TAG_UPDATE_LOG` frame.
    ///
    /// # Errors
    /// As [`FairRankService::update`]: stops at the first failing
    /// update. Everything before it is already applied locally **and**
    /// broadcast, so replicas stay converged with the writer even on
    /// the error path.
    pub fn apply(&self, updates: &[DatasetUpdate]) -> Result<Vec<UpdateOutcome>, ServiceError> {
        let mut subscribers = self
            .shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned");
        let base = self.shared.service.version();
        let mut outcomes = Vec::with_capacity(updates.len());
        let mut result = Ok(());
        for update in updates {
            match self.shared.service.update(update.clone()) {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if !outcomes.is_empty() {
            let frame = encode_update_log(base, &updates[..outcomes.len()]);
            // Drop subscribers whose connection broke; replicas re-seed
            // by reconnecting.
            subscribers.retain_mut(|stream| write_frame(stream, &frame).is_ok());
        }
        result.map(|()| outcomes)
    }

    /// Stop accepting subscriptions and close every subscriber stream
    /// (replicas keep serving their last applied version). Dropping the
    /// writer does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned")
            .clear();
    }
}

impl Drop for ReplicatedWriter {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_replicas(listener: &TcpListener, shared: &WriterShared) {
    loop {
        let Ok((mut stream, _peer)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Snapshot-and-subscribe atomically with respect to `apply`:
        // the handshake frames reflect version V, and the first log
        // frame this subscriber sees has base_version == V (or later
        // snapshots of a quiet writer).
        let mut subscribers = shared.subscribers.lock().expect("subscriber lock poisoned");
        let ranker = shared.service.snapshot();
        let handshake_ok = write_frame(&mut stream, &encode_dataset(ranker.dataset()))
            .and_then(|()| write_frame(&mut stream, &ranker.to_bytes()))
            .is_ok();
        if handshake_ok {
            subscribers.push(stream);
        }
    }
}

/// Configuration for a [`Replica`]'s local serving tier.
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Worker threads for the replica's [`FairRankService`] (`0` = one
    /// per core). Default 2 — replicas share a host in test and bench
    /// topologies.
    pub workers: usize,
    /// Enable the replica's region-identity answer cache. Default true.
    pub cache: bool,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            workers: 2,
            cache: true,
        }
    }
}

/// A read-only replica: bootstraps from a writer's snapshot, tails its
/// update log, and serves queries from its own [`FairRankService`] at
/// whatever version it has reached.
pub struct Replica {
    service: Arc<FairRankService>,
    shutdown: Arc<AtomicBool>,
    error: Arc<Mutex<Option<String>>>,
    tail: Option<JoinHandle<()>>,
}

impl Replica {
    /// Connect to a [`ReplicatedWriter`], bootstrap (dataset frame +
    /// ranker snapshot frame), rebuild the fairness oracle via
    /// `oracle_factory`, and start tailing the update log.
    ///
    /// # Errors
    /// [`std::io::Error`] on connection failure or a malformed
    /// handshake (decode failures surface as `InvalidData`).
    pub fn connect(
        addr: SocketAddr,
        oracle_factory: impl FnOnce(&Dataset) -> Box<dyn FairnessOracle>,
        options: ReplicaOptions,
    ) -> std::io::Result<Replica> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let dataset_bytes = read_frame_blocking(&mut stream)?;
        let dataset =
            decode_dataset(&dataset_bytes).map_err(|e| invalid_data(format!("dataset: {e}")))?;
        let ranker_bytes = read_frame_blocking(&mut stream)?;
        let oracle = oracle_factory(&dataset);
        let ranker = FairRanker::from_bytes(&ranker_bytes, dataset, oracle)
            .map_err(|e| invalid_data(format!("ranker snapshot: {e}")))?;
        let service = Arc::new(
            FairRankService::builder(ranker)
                .workers(options.workers)
                .cache(options.cache)
                .build(),
        );
        stream.set_read_timeout(Some(POLL_TICK))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let error = Arc::new(Mutex::new(None));
        let tail = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let error = Arc::clone(&error);
            std::thread::Builder::new()
                .name("fairrank-repl-tail".to_string())
                .spawn(move || tail_log(&mut stream, &service, &shutdown, &error))
                .expect("spawn replica tail")
        };
        Ok(Replica {
            service,
            shutdown,
            error,
            tail: Some(tail),
        })
    }

    /// The replica's serving service (shareable with an
    /// [`HttpServer`](crate::HttpServer)).
    #[must_use]
    pub fn service(&self) -> Arc<FairRankService> {
        Arc::clone(&self.service)
    }

    /// The dataset version this replica has applied up to — what its
    /// `/healthz` reports, and what converges to the writer's version
    /// once the log drains.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.service.version()
    }

    /// Why the tail loop stopped, if it stopped abnormally (decode
    /// failure, version gap, apply failure). `None` while healthy or
    /// after a clean writer disconnect.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("error lock poisoned").clone()
    }

    /// Stop tailing (the local service keeps serving its last applied
    /// version until dropped). Dropping the replica does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.tail.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

fn tail_log(
    stream: &mut TcpStream,
    service: &FairRankService,
    shutdown: &AtomicBool,
    error: &Mutex<Option<String>>,
) {
    let fail = |msg: String| {
        *error.lock().expect("error lock poisoned") = Some(msg);
    };
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        // Drain complete frames already buffered.
        while buf.len() >= 4 {
            let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_BYTES {
                fail(format!("oversized update frame ({len} bytes)"));
                return;
            }
            if buf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
            let (base_version, updates) = match decode_update_log(&frame) {
                Ok(decoded) => decoded,
                Err(e) => {
                    fail(format!("corrupt update frame: {e}"));
                    return;
                }
            };
            let local = service.version();
            if base_version != local {
                fail(format!(
                    "version gap: writer frame applies at {base_version}, replica is at {local}"
                ));
                return;
            }
            if let Err(e) = service.update_batch(updates) {
                fail(format!("update apply failed: {e}"));
                return;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // writer closed: clean detach
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => {
                fail(format!("replication stream error: {e}"));
                return;
            }
        }
    }
}
