//! Single-writer / N-reader replication over length-prefixed TCP.
//!
//! ```text
//!   ReplicatedWriter                         Replica (×N)
//!   ┌───────────────────────┐   connect   ┌──────────────────────────┐
//!   │ FairRankService (rw)  │◀────────────│ TcpStream                │
//!   │  apply(updates):      │  dataset    │ bootstrap:               │
//!   │   service.update(…)   │──frame─────▶│  decode_dataset          │
//!   │   broadcast update    │  ranker     │  FairRanker::from_bytes  │
//!   │   log frame           │──frame─────▶│  build FairRankService   │
//!   └───────────┬───────────┘             │ tail thread:             │
//!               │  TAG_UPDATE_LOG frames  │  decode_update_log       │
//!               ╰────────────────────────▶│  check base == version   │
//!                                         │  service.update_batch    │
//!                                         └──────────────────────────┘
//! ```
//!
//! **Wire format.** Every message is one frame: a `u32` little-endian
//! payload length, then the payload. A replica's bootstrap is two
//! frames — the writer's [`Dataset`] (`TAG_DATASET` codec) and a
//! whole-ranker snapshot (`TAG_RANKER` envelope, carrying the update
//! counter) — followed by a stream of `TAG_UPDATE_LOG` frames, each a
//! versioned batch of [`DatasetUpdate`]s. All three payloads are the
//! sealed, checksummed artifacts from [`fairrank::persist`]; a flipped
//! bit on the wire is caught by the decoder, not applied to the index.
//!
//! **Consistency.** The writer serializes *apply + broadcast* and
//! *snapshot + subscribe* under one lock, so a replica that bootstraps
//! at version `V` receives exactly the frames with `base_version ≥ V`,
//! gap-free. Replicas verify `base_version` against their own
//! [`FairRankService::version`] before applying and never apply across
//! a mismatch — a diverged replica keeps serving its last good snapshot
//! rather than serving wrong answers.
//!
//! **Liveness.** A replica whose tail dies (stream error, version gap,
//! writer restart) immediately marks its [`Replica::health`] handle
//! stale — wire that handle into the replica's
//! [`ServerConfig`](crate::ServerConfig) and `/healthz` turns non-200,
//! so load balancers rotate the frozen replica out instead of trusting
//! a process that is up but behind. With
//! [`ReplicaOptions::reconnect`] (the default) a supervisor then
//! re-dials the writer under capped exponential backoff and performs a
//! **full re-bootstrap** — fresh dataset + snapshot frames swapped in
//! via [`FairRankService::replace_ranker`] — because after a gap no
//! incremental frame sequence can reconcile the local index.
//!
//! Fairness oracles are code, not data, so they do not travel: a
//! replica reconstructs its oracle from the shipped dataset via the
//! caller's factory closure — the same pattern as
//! [`FairRanker::from_bytes`].
//!
//! [`FairRanker::from_bytes`]: fairrank::FairRanker::from_bytes

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fairrank::persist::{decode_dataset, decode_update_log, encode_dataset, encode_update_log};
use fairrank::{DatasetUpdate, FairRanker, UpdateOutcome};
use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_serve::{FairRankService, ServiceError};
use fairrank_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch};

/// Reject frames larger than this (a defense against a corrupted or
/// hostile length prefix, not a protocol limit).
const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Polling granularity for the replica tail loop and the writer
/// acceptor: how quickly they notice shutdown.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Reconnect backoff bounds: first retry after 50 ms, doubling to a
/// 2 s ceiling.
const RECONNECT_MIN: Duration = Duration::from_millis(50);
const RECONNECT_MAX: Duration = Duration::from_secs(2);

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)
}

/// Blocking frame read (bootstrap path — no shutdown polling).
fn read_frame_blocking(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Replica-side replication instrumentation, registered in the
/// replica's service registry so its `/metrics` covers the tail.
struct ReplMetrics {
    /// Re-dial attempts after a dead tail (whether or not they land).
    reconnect_attempts: Counter,
    /// Completed bootstrap handshakes — the initial connect plus every
    /// successful re-bootstrap after a gap.
    bootstraps: Counter,
    /// The writer version this replica has applied up to.
    last_applied: Gauge,
    /// Time to apply one update-log frame locally — the replica's
    /// contribution to apply lag (network skew rides on top).
    apply_us: Histogram,
}

impl ReplMetrics {
    fn register(registry: &Registry) -> ReplMetrics {
        ReplMetrics {
            reconnect_attempts: registry.counter(
                "fairrank_replication_reconnect_attempts_total",
                "Re-dial attempts after a dead replication tail.",
                &[],
            ),
            bootstraps: registry.counter(
                "fairrank_replication_bootstraps_total",
                "Completed bootstrap handshakes (initial connect included).",
                &[],
            ),
            last_applied: registry.gauge(
                "fairrank_replication_last_applied_version",
                "Writer version this replica has applied up to.",
                &[],
            ),
            apply_us: registry.histogram(
                "fairrank_replication_apply_duration_us",
                "Microseconds to apply one replicated update-log frame.",
                &[],
            ),
        }
    }
}

struct WriterShared {
    service: Arc<FairRankService>,
    shutdown: AtomicBool,
    /// Guards apply+broadcast and snapshot+subscribe: holding it across
    /// both is what makes a bootstrap snapshot and the subsequent frame
    /// stream gap-free.
    subscribers: Mutex<Vec<TcpStream>>,
    /// Live subscriber count, exported through the writer's registry.
    subscribers_gauge: Gauge,
}

/// The writer end of a replicated deployment: owns the only
/// [`FairRankService`] that accepts [`DatasetUpdate`]s, and ships every
/// applied batch to subscribed [`Replica`]s.
pub struct ReplicatedWriter {
    shared: Arc<WriterShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl ReplicatedWriter {
    /// Start accepting replica subscriptions on `addr` (use
    /// `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    /// [`std::io::Error`] if the listener cannot bind.
    pub fn bind(service: Arc<FairRankService>, addr: &str) -> std::io::Result<ReplicatedWriter> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let subscribers_gauge = service.telemetry().gauge(
            "fairrank_replication_subscribers",
            "Replicas currently subscribed to this writer's update log.",
            &[],
        );
        let shared = Arc::new(WriterShared {
            service,
            shutdown: AtomicBool::new(false),
            subscribers: Mutex::new(Vec::new()),
            subscribers_gauge,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fairrank-repl-accept".to_string())
                .spawn(move || accept_replicas(&listener, &shared))
                .expect("spawn replication acceptor")
        };
        Ok(ReplicatedWriter {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The address replicas connect to.
    #[must_use]
    pub fn replication_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The writer's serving service (shareable with an
    /// [`HttpServer`](crate::HttpServer)).
    #[must_use]
    pub fn service(&self) -> Arc<FairRankService> {
        Arc::clone(&self.shared.service)
    }

    /// Currently subscribed replicas.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned")
            .len()
    }

    /// Apply a batch of updates to the writer's service and ship the
    /// applied prefix to every subscriber as one `TAG_UPDATE_LOG` frame.
    ///
    /// # Errors
    /// As [`FairRankService::update`]: stops at the first failing
    /// update. Everything before it is already applied locally **and**
    /// broadcast, so replicas stay converged with the writer even on
    /// the error path.
    pub fn apply(&self, updates: &[DatasetUpdate]) -> Result<Vec<UpdateOutcome>, ServiceError> {
        let mut subscribers = self
            .shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned");
        let base = self.shared.service.version();
        let mut outcomes = Vec::with_capacity(updates.len());
        let mut result = Ok(());
        for update in updates {
            match self.shared.service.update(update.clone()) {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if !outcomes.is_empty() {
            let frame = encode_update_log(base, &updates[..outcomes.len()]);
            // Drop subscribers whose connection broke; replicas re-seed
            // by reconnecting.
            subscribers.retain_mut(|stream| write_frame(stream, &frame).is_ok());
            self.shared.subscribers_gauge.set(subscribers.len() as i64);
        }
        result.map(|()| outcomes)
    }

    /// Stop accepting subscriptions and close every subscriber stream
    /// (replicas keep serving their last applied version). Dropping the
    /// writer does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned")
            .clear();
        self.shared.subscribers_gauge.set(0);
    }
}

impl Drop for ReplicatedWriter {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_replicas(listener: &TcpListener, shared: &WriterShared) {
    loop {
        let Ok((mut stream, _peer)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Snapshot-and-subscribe atomically with respect to `apply`:
        // the handshake frames reflect version V, and the first log
        // frame this subscriber sees has base_version == V (or later
        // snapshots of a quiet writer).
        let mut subscribers = shared.subscribers.lock().expect("subscriber lock poisoned");
        let ranker = shared.service.snapshot();
        let handshake_ok = write_frame(&mut stream, &encode_dataset(ranker.dataset()))
            .and_then(|()| write_frame(&mut stream, &ranker.to_bytes()))
            .is_ok();
        if handshake_ok {
            subscribers.push(stream);
            shared.subscribers_gauge.set(subscribers.len() as i64);
        }
    }
}

/// Configuration for a [`Replica`]'s local serving tier.
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Worker threads for the replica's [`FairRankService`] (`0` = one
    /// per core). Default 2 — replicas share a host in test and bench
    /// topologies.
    pub workers: usize,
    /// Enable the replica's region-identity answer cache. Default true.
    pub cache: bool,
    /// When the tail dies (stream error, version gap, writer restart),
    /// keep re-dialing the writer under capped exponential backoff
    /// (50 ms doubling to 2 s) and re-bootstrap from a fresh snapshot.
    /// Default true; `false` restores the stop-on-death behavior, with
    /// the [`Replica::health`] handle still marking the replica stale.
    pub reconnect: bool,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            workers: 2,
            cache: true,
            reconnect: true,
        }
    }
}

/// A read-only replica: bootstraps from a writer's snapshot, tails its
/// update log, and serves queries from its own [`FairRankService`] at
/// whatever version it has reached. If the tail dies it marks its
/// [`Replica::health`] handle stale and (by default) keeps re-dialing
/// the writer, re-bootstrapping in full once it answers.
pub struct Replica {
    service: Arc<FairRankService>,
    shutdown: Arc<AtomicBool>,
    error: Arc<Mutex<Option<String>>>,
    health: crate::health::HealthHandle,
    tail: Option<JoinHandle<()>>,
}

/// Dial the writer and run the bootstrap handshake: dataset frame,
/// ranker snapshot frame, oracle reconstruction, tail-ready stream
/// (read timeout armed).
fn bootstrap(
    addr: SocketAddr,
    oracle_factory: &(impl Fn(&Dataset) -> Box<dyn FairnessOracle> + ?Sized),
) -> std::io::Result<(TcpStream, FairRanker)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let dataset_bytes = read_frame_blocking(&mut stream)?;
    let dataset =
        decode_dataset(&dataset_bytes).map_err(|e| invalid_data(format!("dataset: {e}")))?;
    let ranker_bytes = read_frame_blocking(&mut stream)?;
    let oracle = oracle_factory(&dataset);
    let ranker = FairRanker::from_bytes(&ranker_bytes, dataset, oracle)
        .map_err(|e| invalid_data(format!("ranker snapshot: {e}")))?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    Ok((stream, ranker))
}

impl Replica {
    /// Connect to a [`ReplicatedWriter`], bootstrap (dataset frame +
    /// ranker snapshot frame), rebuild the fairness oracle via
    /// `oracle_factory`, and start tailing the update log.
    ///
    /// The factory is kept for the replica's lifetime: every
    /// re-bootstrap after a dead tail rebuilds the oracle against the
    /// freshly shipped dataset, exactly as the first connect did.
    ///
    /// # Errors
    /// [`std::io::Error`] on connection failure or a malformed
    /// handshake (decode failures surface as `InvalidData`). Only the
    /// *initial* bootstrap fails fast; later failures go through the
    /// reconnect policy.
    pub fn connect(
        addr: SocketAddr,
        oracle_factory: impl Fn(&Dataset) -> Box<dyn FairnessOracle> + Send + 'static,
        options: ReplicaOptions,
    ) -> std::io::Result<Replica> {
        let (stream, ranker) = bootstrap(addr, &oracle_factory)?;
        let service = Arc::new(
            FairRankService::builder(ranker)
                .workers(options.workers)
                .cache(options.cache)
                .build(),
        );

        let metrics = ReplMetrics::register(&service.telemetry());
        metrics.bootstraps.inc();
        metrics.last_applied.set(service.version() as i64);

        let shutdown = Arc::new(AtomicBool::new(false));
        let error = Arc::new(Mutex::new(None));
        let health = crate::health::HealthHandle::new();
        let tail = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let error = Arc::clone(&error);
            let health = health.clone();
            let reconnect = options.reconnect;
            std::thread::Builder::new()
                .name("fairrank-repl-tail".to_string())
                .spawn(move || {
                    supervise_tail(
                        addr,
                        stream,
                        &oracle_factory,
                        &service,
                        &shutdown,
                        &error,
                        &health,
                        reconnect,
                        &metrics,
                    );
                })
                .expect("spawn replica tail")
        };
        Ok(Replica {
            service,
            shutdown,
            error,
            health,
            tail: Some(tail),
        })
    }

    /// The replica's serving service (shareable with an
    /// [`HttpServer`](crate::HttpServer)).
    #[must_use]
    pub fn service(&self) -> Arc<FairRankService> {
        Arc::clone(&self.service)
    }

    /// The replica's staleness flag: stale from the moment the tail
    /// dies until a re-bootstrap completes. Wire this into the
    /// [`ServerConfig`](crate::ServerConfig) of the HTTP server fronting
    /// this replica so `/healthz` reports staleness instead of a bare
    /// liveness 200.
    #[must_use]
    pub fn health(&self) -> crate::health::HealthHandle {
        self.health.clone()
    }

    /// The dataset version this replica has applied up to — what its
    /// `/healthz` reports, and what converges to the writer's version
    /// once the log drains.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.service.version()
    }

    /// Why the last tail session ended abnormally (decode failure,
    /// version gap, apply failure). `None` while healthy, after a clean
    /// writer disconnect, and again after a successful re-bootstrap
    /// clears it.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("error lock poisoned").clone()
    }

    /// Stop tailing (the local service keeps serving its last applied
    /// version until dropped). Dropping the replica does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.tail.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Split the first frame (`4 + len` bytes) off the front of `buf` in
/// one move: the tail of the buffer becomes the new `buf`, the head is
/// returned still carrying its 4-byte length prefix (callers decode
/// from `frame[4..]`). No per-byte copying — the old
/// `drain(..).skip(4).collect()` here walked every payload byte through
/// an iterator *and* shifted the remainder down.
fn take_frame(buf: &mut Vec<u8>, len: usize) -> Vec<u8> {
    debug_assert!(buf.len() >= 4 + len, "frame not fully buffered");
    let rest = buf.split_off(4 + len);
    std::mem::replace(buf, rest)
}

/// Why one tail session over one connection ended.
enum TailEnd {
    /// [`Replica::shutdown`] asked us to stop.
    Shutdown,
    /// The writer closed the stream (shutdown or restart).
    WriterClosed,
    /// Stream error, corrupt frame, version gap, or apply failure.
    Failed(String),
}

/// Tail one connection's update log until it ends; never applies a
/// frame across a version mismatch.
fn tail_session(
    stream: &mut TcpStream,
    service: &FairRankService,
    shutdown: &AtomicBool,
    metrics: &ReplMetrics,
) -> TailEnd {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        // Drain complete frames already buffered.
        while buf.len() >= 4 {
            let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_BYTES {
                return TailEnd::Failed(format!("oversized update frame ({len} bytes)"));
            }
            if buf.len() < 4 + len {
                break;
            }
            let frame = take_frame(&mut buf, len);
            let (base_version, updates) = match decode_update_log(&frame[4..]) {
                Ok(decoded) => decoded,
                Err(e) => {
                    return TailEnd::Failed(format!("corrupt update frame: {e}"));
                }
            };
            let local = service.version();
            if base_version != local {
                return TailEnd::Failed(format!(
                    "version gap: writer frame applies at {base_version}, replica is at {local}"
                ));
            }
            let apply = Stopwatch::start();
            if let Err(e) = service.update_batch(updates) {
                return TailEnd::Failed(format!("update apply failed: {e}"));
            }
            apply.record(&metrics.apply_us);
            metrics.last_applied.set(service.version() as i64);
        }
        if shutdown.load(Ordering::SeqCst) {
            return TailEnd::Shutdown;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return TailEnd::WriterClosed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => {
                return TailEnd::Failed(format!("replication stream error: {e}"));
            }
        }
    }
}

/// Sleep `total` in shutdown-polling slices; true if shutdown arrived.
fn sleep_interruptible(shutdown: &AtomicBool, total: Duration) -> bool {
    let mut remaining = total;
    while !remaining.is_zero() {
        if shutdown.load(Ordering::SeqCst) {
            return true;
        }
        let tick = remaining.min(POLL_TICK);
        std::thread::sleep(tick);
        remaining = remaining.saturating_sub(tick);
    }
    shutdown.load(Ordering::SeqCst)
}

/// Run tail sessions forever: tail until the connection dies, mark the
/// replica stale, and (under the reconnect policy) re-dial with capped
/// exponential backoff and re-bootstrap in full — a fresh snapshot
/// swapped in via [`FairRankService::replace_ranker`], because after a
/// gap no frame sequence can reconcile the local index incrementally.
#[allow(clippy::too_many_arguments)]
fn supervise_tail(
    addr: SocketAddr,
    mut stream: TcpStream,
    oracle_factory: &(impl Fn(&Dataset) -> Box<dyn FairnessOracle> + ?Sized),
    service: &FairRankService,
    shutdown: &AtomicBool,
    error: &Mutex<Option<String>>,
    health: &crate::health::HealthHandle,
    reconnect: bool,
    metrics: &ReplMetrics,
) {
    loop {
        let reason = match tail_session(&mut stream, service, shutdown, metrics) {
            TailEnd::Shutdown => return,
            TailEnd::WriterClosed => "writer closed the replication stream".to_string(),
            TailEnd::Failed(msg) => {
                *error.lock().expect("error lock poisoned") = Some(msg.clone());
                msg
            }
        };
        // Stale from the instant the tail dies: the service keeps
        // serving, but /healthz must stop saying "current".
        health.mark_stale(&reason, service.version());
        if !reconnect {
            return;
        }
        let mut backoff = RECONNECT_MIN;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Full re-bootstrap: fresh dataset + snapshot, oracle
            // rebuilt against the new dataset, whole ranker swapped.
            metrics.reconnect_attempts.inc();
            if let Ok((new_stream, ranker)) = bootstrap(addr, oracle_factory) {
                if service.replace_ranker(ranker).is_ok() {
                    stream = new_stream;
                    *error.lock().expect("error lock poisoned") = None;
                    health.mark_fresh();
                    metrics.bootstraps.inc();
                    metrics.last_applied.set(service.version() as i64);
                    break;
                }
            }
            if sleep_interruptible(shutdown, backoff) {
                return;
            }
            backoff = (backoff * 2).min(RECONNECT_MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::take_frame;

    /// Frame-drain equivalence: feeding many small frames through
    /// `take_frame` yields byte-identical payloads to the reference
    /// per-byte drain, across every buffering split.
    #[test]
    fn take_frame_matches_reference_drain_on_many_small_frames() {
        // Build 64 frames with varied small payloads (including empty).
        let mut wire: Vec<u8> = Vec::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for i in 0..64u32 {
            let payload: Vec<u8> = (0..(i % 7) as u8 * 3)
                .map(|b| b.wrapping_mul(31) ^ i as u8)
                .collect();
            wire.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
            wire.extend_from_slice(&payload);
            expected.push(payload);
        }
        // Drive the same drain loop the tail uses, delivering the wire
        // bytes in awkward chunk sizes so frames straddle reads.
        for chunk_size in [1usize, 3, 5, 17, wire.len()] {
            let mut buf: Vec<u8> = Vec::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                buf.extend_from_slice(chunk);
                while buf.len() >= 4 {
                    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
                    if buf.len() < 4 + len {
                        break;
                    }
                    let frame = take_frame(&mut buf, len);
                    assert_eq!(frame.len(), 4 + len, "prefix retained");
                    got.push(frame[4..].to_vec());
                }
            }
            assert!(buf.is_empty(), "chunk {chunk_size}: residue left");
            assert_eq!(got, expected, "chunk {chunk_size}");
        }
    }
}
