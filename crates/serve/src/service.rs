//! [`FairRankService`]: the async-first serving tier.
//!
//! The synchronous [`FairRanker`] API answers pre-assembled batches; a
//! production front door sees *individual* requests arriving
//! continuously and concurrently with item updates. The service bridges
//! the two shapes:
//!
//! ```text
//!  callers ──try_suggest/submit──▶ bounded MPSC queue ──▶ worker pool
//!     ▲                                                      │
//!     │           one-shot future per request                │
//!     ╰──────────────◀── Suggestion ◀── respond_batch(micro-batch)
//! ```
//!
//! * **Micro-batching.** Workers drain the queue into batches, triggered
//!   by size ([`ServiceBuilder::max_batch`]) or deadline
//!   ([`ServiceBuilder::max_delay`]) — whichever comes first — and
//!   execute them through [`FairRanker::respond_batch`], so the
//!   amortized oracle/workspace machinery built for batch serving now
//!   benefits independent submitters.
//! * **Backpressure.** The queue is bounded
//!   ([`ServiceBuilder::queue_capacity`]):
//!   [`try_suggest`](FairRankService::try_suggest) fails fast with
//!   [`ServiceError::Overloaded`], while
//!   [`submit`](FairRankService::submit) blocks until space frees.
//! * **Updates while serving.** [`update`](FairRankService::update) is a
//!   serialized writer path: it forks the ranker copy-on-write
//!   ([`FairRanker::snapshot`] + [`FairRanker::update`]) and swaps the
//!   serving slot, so in-flight micro-batches keep answering from the
//!   `Arc<Dataset>` snapshot they captured — readers are never blocked
//!   behind index maintenance.
//! * **Graceful shutdown.** [`shutdown`](FairRankService::shutdown)
//!   (and `Drop`) closes the queue, drains every already-queued request
//!   to completion, and joins the workers.
//!
//! Answers are **bit-identical** to calling
//! [`FairRanker::respond_batch`] directly on the same dataset version —
//! gated by `tests/service_equivalence.rs`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use fairrank::error::validate_weights;
use fairrank::{
    BackendStats, DatasetUpdate, FairRanker, SuggestRequest, Suggestion, UpdateOutcome,
};
use fairrank_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch};

use crate::cache::{CacheKey, CacheStats, SuggestionCache};
use crate::error::ServiceError;
use crate::runtime::{oneshot, Deadline};

/// Configures and launches a [`FairRankService`]. Created by
/// [`FairRankService::builder`].
#[must_use]
pub struct ServiceBuilder {
    ranker: FairRanker,
    workers: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: usize,
    cache_enabled: bool,
    cache_capacity: usize,
    telemetry_enabled: bool,
    registry: Option<Arc<Registry>>,
}

impl ServiceBuilder {
    /// Number of worker threads draining the queue. `0` (the default)
    /// uses [`std::thread::available_parallelism`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Micro-batch size trigger: a worker executes as soon as it holds
    /// this many requests (clamped to at least 1; default 16).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Micro-batch deadline trigger: a worker holding a partial batch
    /// executes once this long has passed since it picked up the batch's
    /// first request (default 200 µs; [`Duration::ZERO`] disables
    /// coalescing waits entirely — every drain executes immediately).
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Bounded submission-queue capacity — the backpressure threshold
    /// (clamped to at least 1; default 1024).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enable or disable the region-identity answer cache
    /// ([`SuggestionCache`]; default enabled). Disabled, every request
    /// takes the full [`FairRanker::respond_batch`] path — useful as the
    /// reference arm in equivalence tests and benchmarks.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Maximum number of cached region verdicts (clamped to at least 1;
    /// default 4096). Entries are tiny — a packed key plus one bool — so
    /// generous capacities are cheap.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Enable or disable *stage timing* at runtime (default enabled).
    /// Disabled, workers take no clock reads — the reference arm of the
    /// telemetry-overhead benchmark. Counters and gauges are unaffected:
    /// they define [`ServiceStats`] and always stay live. (Compile-time
    /// removal is the `fairrank-telemetry/telemetry-off` feature.)
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry_enabled = enabled;
        self
    }

    /// Record this service's metrics into an injected [`Registry`]
    /// instead of a fresh per-service one — for co-hosting several
    /// components under one scrape. Note that two services sharing a
    /// registry share the *same* metric cells per family.
    pub fn telemetry_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Launch the worker pool and start serving.
    pub fn build(self) -> FairRankService {
        let workers = match self.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            w => w,
        };
        let registry = self.registry.unwrap_or_else(|| Arc::new(Registry::new()));
        let cache = self
            .cache_enabled
            .then(|| SuggestionCache::new(self.cache_capacity, workers.clamp(1, 16)));
        if let Some(cache) = &cache {
            cache.bind_telemetry(&registry);
        }
        // Stage timers exist only when the timing layer is compiled in
        // *and* runtime-enabled: `timers.is_none()` means workers take
        // no clock reads at all, and the stage families never appear in
        // the exposition.
        let timers = (self.telemetry_enabled && fairrank_telemetry::ENABLED)
            .then(|| StageTimers::register(&registry));
        let shared = Arc::new(Shared {
            dim: self.ranker.dataset().dim(),
            max_batch: self.max_batch,
            max_delay: self.max_delay,
            capacity: self.queue_capacity,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            slot: RwLock::new(self.ranker),
            writer: Mutex::new(()),
            metrics: Metrics::register(&registry),
            derived: DerivedGauges::register(&registry),
            timers,
            telemetry: registry,
            cache,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fairrank-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        FairRankService {
            shared,
            workers: handles,
        }
    }
}

/// How [`enqueue`](FairRankService::enqueue) reacts to a full queue.
enum Backpressure {
    /// Reject immediately ([`FairRankService::try_suggest`]).
    Fail,
    /// Wait indefinitely for space ([`FairRankService::submit`]).
    Block,
    /// Wait until the admission deadline, then reject
    /// ([`FairRankService::submit_timeout`]).
    Deadline(Deadline),
}

/// One queued request: the submission, the one-shot completion, and the
/// queue-wait stopwatch (inert unless stage timing is on).
struct Pending {
    req: SuggestRequest,
    tx: oneshot::Sender<Result<Suggestion, ServiceError>>,
    queued_at: Stopwatch,
}

struct QueueState {
    pending: VecDeque<Pending>,
    closed: bool,
}

/// The service's primary counters, as registry handles: `ServiceStats`
/// and the Prometheus exposition read the *same cells*, so `/stats` and
/// `/metrics` can never drift. Always live — see
/// [`ServiceBuilder::telemetry`].
struct Metrics {
    submitted: Counter,
    completed: Counter,
    batches: Counter,
    rejected: Counter,
    /// Live gauge (not a terminal counter): requests a worker has drained
    /// from the queue but not yet answered. `queued + in_flight` is the
    /// service's total outstanding depth — what a load shedder divides by
    /// its service rate to predict drain time.
    in_flight: Gauge,
}

impl Metrics {
    fn register(registry: &Registry) -> Metrics {
        Metrics {
            submitted: registry.counter(
                "fairrank_service_submitted_total",
                "Requests accepted into the submission queue since launch.",
                &[],
            ),
            completed: registry.counter(
                "fairrank_service_completed_total",
                "Requests answered (futures completed) since launch.",
                &[],
            ),
            batches: registry.counter(
                "fairrank_service_batches_total",
                "Micro-batches executed since launch.",
                &[],
            ),
            rejected: registry.counter(
                "fairrank_service_rejected_total",
                "Submissions rejected with Overloaded backpressure.",
                &[],
            ),
            in_flight: registry.gauge(
                "fairrank_service_in_flight",
                "Requests drained from the queue but not yet answered.",
                &[],
            ),
        }
    }
}

/// Gauges whose truth lives elsewhere (queue length under its mutex,
/// cache residency behind shard locks, the dataset version behind the
/// slot lock). [`FairRankService::stats`] refreshes them, and the HTTP
/// tier calls `stats()` before rendering `/metrics`, so a scrape always
/// sees values from the same snapshot `/stats` reports.
struct DerivedGauges {
    queue_depth: Gauge,
    cache_entries: Gauge,
    version: Gauge,
}

impl DerivedGauges {
    fn register(registry: &Registry) -> DerivedGauges {
        DerivedGauges {
            queue_depth: registry.gauge(
                "fairrank_service_queue_depth",
                "Requests currently waiting in the submission queue.",
                &[],
            ),
            cache_entries: registry.gauge(
                "fairrank_cache_entries",
                "Region verdicts currently resident in the cache.",
                &[],
            ),
            version: registry.gauge(
                "fairrank_dataset_version",
                "Dataset epoch of the current serving generation.",
                &[],
            ),
        }
    }
}

/// Per-stage latency histograms over the serving pipeline, all series
/// of one `fairrank_stage_duration_us{stage=…}` family (the HTTP tier
/// adds `net_parse`/`net_write` series to the same family). `None` on
/// the service means stage timing is off and no clocks are read.
struct StageTimers {
    queue_wait: Histogram,
    coalesce: Histogram,
    cache_lookup: Histogram,
    fastpath: Histogram,
    oracle_pass: Histogram,
}

impl StageTimers {
    const HELP: &'static str =
        "Serving pipeline stage durations in microseconds, labeled by stage.";

    fn register(registry: &Registry) -> StageTimers {
        let stage = |name: &str| {
            registry.histogram("fairrank_stage_duration_us", Self::HELP, &[("stage", name)])
        };
        StageTimers {
            queue_wait: stage("queue_wait"),
            coalesce: stage("coalesce"),
            cache_lookup: stage("cache_lookup"),
            fastpath: stage("fastpath"),
            oracle_pass: stage("oracle_pass"),
        }
    }
}

struct Shared {
    dim: usize,
    max_batch: usize,
    max_delay: Duration,
    capacity: usize,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    /// The serving slot: the current ranker generation. Readers hold the
    /// read lock only long enough to clone the inner `Arc`
    /// ([`FairRanker::snapshot`]); the update path swaps a fully
    /// prepared fork in under a momentary write lock.
    slot: RwLock<FairRanker>,
    /// Serializes writers: updates fork-and-swap one at a time, outside
    /// the slot lock, so index maintenance never blocks readers.
    writer: Mutex<()>,
    metrics: Metrics,
    derived: DerivedGauges,
    /// Stage latency histograms; `None` when stage timing is disabled
    /// (runtime knob or the `telemetry-off` feature).
    timers: Option<StageTimers>,
    /// The metric registry every handle above lives in — what
    /// `GET /metrics` renders.
    telemetry: Arc<Registry>,
    /// The region-identity verdict cache ([`SuggestionCache`]), `None`
    /// when disabled via [`ServiceBuilder::cache`]. Purged under the
    /// slot's write lock on every generation swap, and keys carry the
    /// generation's version besides, so a hit can never replay a verdict
    /// from a superseded snapshot.
    cache: Option<SuggestionCache>,
}

/// Operational counters for dashboards and load shedding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests currently waiting in the submission queue.
    pub queued: usize,
    /// Requests currently being served by the worker pool: drained from
    /// the queue but not yet answered. A live gauge — with `queued` it
    /// observes saturation directly instead of inferring it from
    /// [`ServiceError::Overloaded`] rejections.
    pub in_flight: u64,
    /// Requests accepted into the queue since launch.
    pub submitted: u64,
    /// Requests answered (futures completed) since launch.
    pub completed: u64,
    /// Micro-batches executed since launch.
    pub batches: u64,
    /// Submissions rejected with [`ServiceError::Overloaded`].
    pub rejected: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Region-identity cache counters; `None` when the cache is disabled
    /// ([`ServiceBuilder::cache`]).
    pub cache: Option<CacheStats>,
}

/// An awaitable [`Suggestion`]: resolves when a worker completes the
/// request. Runtime-agnostic — `.await` it from any executor, drive it
/// with [`crate::runtime::block_on`], or block with
/// [`SuggestionFuture::wait`].
pub struct SuggestionFuture {
    rx: oneshot::Receiver<Result<Suggestion, ServiceError>>,
}

impl SuggestionFuture {
    /// Block the current thread until the answer arrives.
    ///
    /// # Errors
    /// [`ServiceError`] from the serving pipeline, or
    /// [`ServiceError::Closed`] if the worker vanished without
    /// answering.
    pub fn wait(self) -> Result<Suggestion, ServiceError> {
        self.rx.wait().unwrap_or(Err(ServiceError::Closed))
    }
}

impl std::future::Future for SuggestionFuture {
    type Output = Result<Suggestion, ServiceError>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        std::pin::Pin::new(&mut self.rx)
            .poll(cx)
            .map(|r| r.unwrap_or(Err(ServiceError::Closed)))
    }
}

/// The async-first serving front door: submit individual
/// [`SuggestRequest`]s, await [`Suggestion`]s; a worker pool coalesces
/// submissions into micro-batches over the synchronous
/// [`FairRanker`] machinery. See the crate docs for the pipeline shape
/// and guarantees.
pub struct FairRankService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl FairRankService {
    /// Start configuring a service over an already-built ranker.
    pub fn builder(ranker: FairRanker) -> ServiceBuilder {
        ServiceBuilder {
            ranker,
            workers: 0,
            max_batch: 16,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
            cache_enabled: true,
            cache_capacity: 4096,
            telemetry_enabled: true,
            registry: None,
        }
    }

    /// Submit without blocking: fails fast with
    /// [`ServiceError::Overloaded`] when the bounded queue is full — the
    /// caller's backpressure signal.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] (queue full), [`ServiceError::Closed`]
    /// (after shutdown), [`ServiceError::Rank`] (malformed request —
    /// validated here, so queued batches never fail collectively).
    pub fn try_suggest(&self, req: SuggestRequest) -> Result<SuggestionFuture, ServiceError> {
        self.enqueue(req, Backpressure::Fail)
    }

    /// Submit with blocking backpressure: waits for queue space instead
    /// of failing. Prefer [`try_suggest`](FairRankService::try_suggest)
    /// on latency-sensitive paths.
    ///
    /// # Errors
    /// [`ServiceError::Closed`], [`ServiceError::Rank`].
    pub fn submit(&self, req: SuggestRequest) -> Result<SuggestionFuture, ServiceError> {
        self.enqueue(req, Backpressure::Block)
    }

    /// Submit with a per-request admission deadline: waits up to
    /// `timeout` for queue space, then fails with
    /// [`ServiceError::Overloaded`] exactly as
    /// [`try_suggest`](FairRankService::try_suggest) would — the shape a
    /// network front end wants, where a request is worth a bounded wait
    /// but not an unbounded one. `Duration::ZERO` is equivalent to
    /// `try_suggest`.
    ///
    /// The deadline governs *admission* only; once queued, the request
    /// is always answered (or failed) through its future.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] (deadline expired with the queue
    /// still full), [`ServiceError::Closed`], [`ServiceError::Rank`].
    pub fn submit_timeout(
        &self,
        req: SuggestRequest,
        timeout: Duration,
    ) -> Result<SuggestionFuture, ServiceError> {
        if timeout.is_zero() {
            return self.enqueue(req, Backpressure::Fail);
        }
        self.enqueue(req, Backpressure::Deadline(Deadline::after(timeout)))
    }

    /// Submit and block until the answer arrives — the synchronous
    /// convenience wrapper around [`submit`](FairRankService::submit).
    ///
    /// # Errors
    /// As [`FairRankService::submit`], plus any serving-side error.
    pub fn suggest(&self, req: SuggestRequest) -> Result<Suggestion, ServiceError> {
        self.submit(req)?.wait()
    }

    fn enqueue(
        &self,
        req: SuggestRequest,
        mode: Backpressure,
    ) -> Result<SuggestionFuture, ServiceError> {
        // Validate before queueing: a malformed request fails its caller
        // alone, never the micro-batch it would have joined.
        validate_weights(&req.query, self.shared.dim).map_err(ServiceError::Rank)?;
        let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
        loop {
            if queue.closed {
                return Err(ServiceError::Closed);
            }
            if queue.pending.len() < self.shared.capacity {
                break;
            }
            match &mode {
                Backpressure::Fail => return Err(self.reject(queue.pending.len())),
                Backpressure::Block => {
                    queue = self
                        .shared
                        .not_full
                        .wait(queue)
                        .expect("queue lock poisoned");
                }
                Backpressure::Deadline(deadline) => {
                    let remaining = deadline.remaining();
                    if remaining.is_zero() {
                        return Err(self.reject(queue.pending.len()));
                    }
                    let (guard, _timeout) = self
                        .shared
                        .not_full
                        .wait_timeout(queue, remaining)
                        .expect("queue lock poisoned");
                    // No special-casing of `timed_out`: the loop re-checks
                    // capacity and the deadline, so a timeout that races a
                    // capacity release still admits the request.
                    queue = guard;
                }
            }
        }
        let (tx, rx) = oneshot::channel();
        queue.pending.push_back(Pending {
            req,
            tx,
            queued_at: Stopwatch::start_if(self.shared.timers.is_some()),
        });
        drop(queue);
        self.shared.metrics.submitted.inc();
        self.shared.not_empty.notify_one();
        Ok(SuggestionFuture { rx })
    }

    /// Record a rejection and build the structured [`ServiceError::Overloaded`]
    /// payload: depth is everything queued plus everything already inside
    /// the worker pool, so front ends can derive an honest retry delay.
    fn reject(&self, queued: usize) -> ServiceError {
        self.shared.metrics.rejected.inc();
        let in_flight = self.shared.metrics.in_flight.get().max(0) as usize;
        ServiceError::Overloaded {
            capacity: self.shared.capacity,
            depth: queued + in_flight,
        }
    }

    /// Apply one live dataset update — the service's serialized writer
    /// path.
    ///
    /// The update runs on a copy-on-write fork *outside* the serving
    /// slot's lock (writers queue up on a dedicated mutex), then swaps
    /// the new generation in under a momentary write lock. In-flight
    /// micro-batches keep serving the snapshot they captured; requests
    /// picked up after the swap see the new version — every
    /// [`Suggestion`] carries the version it was answered from.
    ///
    /// # Errors
    /// [`ServiceError::Rank`] wrapping any
    /// [`FairRankError`](fairrank::FairRankError) the update raises;
    /// nothing is swapped on error.
    pub fn update(&self, update: DatasetUpdate) -> Result<UpdateOutcome, ServiceError> {
        let _writer = self.shared.writer.lock().expect("writer lock poisoned");
        let mut fork = self
            .shared
            .slot
            .read()
            .expect("slot lock poisoned")
            .snapshot();
        // The slot still holds the same generation, so `fork` is shared
        // and FairRanker::update takes its copy-on-write path: the old
        // index keeps serving until the swap below.
        let outcome = fork.update(update).map_err(ServiceError::Rank)?;
        {
            // Purge while holding the write lock: the swap and the cache
            // invalidation are atomic with respect to workers, which read
            // the slot before consulting the cache — no worker can pair
            // the new generation with a pre-purge entry. (Keys carry the
            // version too, so even a missed purge could only waste
            // memory, never correctness.)
            let mut slot = self.shared.slot.write().expect("slot lock poisoned");
            *slot = fork;
            if let Some(cache) = &self.shared.cache {
                cache.purge();
            }
        }
        Ok(outcome)
    }

    /// Apply a sequence of updates through the serialized writer path —
    /// the service twin of [`FairRanker::update_batch`], and the apply
    /// half of replication: a replica tailing a writer's update log
    /// feeds each decoded batch straight through here.
    ///
    /// Each update swaps a generation individually (readers observe
    /// every intermediate version, same as calling
    /// [`update`](FairRankService::update) in a loop).
    ///
    /// # Errors
    /// As [`FairRankService::update`]; stops at the first failing update
    /// with everything before it already applied.
    pub fn update_batch(
        &self,
        updates: impl IntoIterator<Item = DatasetUpdate>,
    ) -> Result<Vec<UpdateOutcome>, ServiceError> {
        updates.into_iter().map(|u| self.update(u)).collect()
    }

    /// Replace the serving ranker wholesale with an independently built
    /// (or freshly bootstrapped) generation — the re-seed path a replica
    /// takes after a replication gap, where no incremental update
    /// sequence can reconcile the local index with the writer's state.
    ///
    /// Runs through the same serialized writer path as
    /// [`update`](FairRankService::update): the swap happens under a
    /// momentary write lock with the answer cache purged in the same
    /// critical section, so in-flight micro-batches finish on the
    /// snapshot they captured and no cached verdict survives from the
    /// replaced generation.
    ///
    /// # Errors
    /// [`ServiceError::Rank`] with a
    /// [`DimensionMismatch`](fairrank::FairRankError::DimensionMismatch)
    /// if the new ranker's dataset dimensionality differs from the one
    /// this service validates queries against; nothing is swapped.
    pub fn replace_ranker(&self, ranker: FairRanker) -> Result<(), ServiceError> {
        let _writer = self.shared.writer.lock().expect("writer lock poisoned");
        let found = ranker.dataset().dim();
        if found != self.shared.dim {
            return Err(ServiceError::Rank(
                fairrank::FairRankError::DimensionMismatch {
                    expected: self.shared.dim,
                    found,
                },
            ));
        }
        let mut slot = self.shared.slot.write().expect("slot lock poisoned");
        *slot = ranker;
        if let Some(cache) = &self.shared.cache {
            cache.purge();
        }
        Ok(())
    }

    /// Force any deferred (coalesced) backend updates to take effect
    /// now — the service twin of [`FairRanker::flush_updates`].
    ///
    /// # Errors
    /// As [`FairRankService::update`].
    pub fn flush_updates(&self) -> Result<UpdateOutcome, ServiceError> {
        let _writer = self.shared.writer.lock().expect("writer lock poisoned");
        let mut fork = self
            .shared
            .slot
            .read()
            .expect("slot lock poisoned")
            .snapshot();
        let outcome = fork.flush_updates().map_err(ServiceError::Rank)?;
        if outcome != UpdateOutcome::Noop {
            // Same swap-and-purge critical section as `update`.
            let mut slot = self.shared.slot.write().expect("slot lock poisoned");
            *slot = fork;
            if let Some(cache) = &self.shared.cache {
                cache.purge();
            }
        }
        Ok(outcome)
    }

    /// The current dataset epoch (see [`FairRanker::version`]).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.shared
            .slot
            .read()
            .expect("slot lock poisoned")
            .version()
    }

    /// A point-in-time [`FairRanker::snapshot`] of the serving state —
    /// what the next micro-batch would answer from. Useful for replica
    /// hand-off and for equivalence testing against the direct API.
    #[must_use]
    pub fn snapshot(&self) -> FairRanker {
        self.shared
            .slot
            .read()
            .expect("slot lock poisoned")
            .snapshot()
    }

    /// Backend statistics of the current generation; the update/rebuild
    /// counters aggregate across copy-on-write generations (see
    /// [`fairrank::SharedCounters`]).
    #[must_use]
    pub fn backend_stats(&self) -> BackendStats {
        self.shared
            .slot
            .read()
            .expect("slot lock poisoned")
            .backend_stats()
    }

    /// Operational counters. Also refreshes the derived registry gauges
    /// (queue depth, cache residency, dataset version) so a `/metrics`
    /// scrape rendered right after reports the same snapshot — the
    /// counters themselves are shared cells and agree by construction.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("queue lock poisoned")
            .pending
            .len();
        let cache = self.shared.cache.as_ref().map(SuggestionCache::stats);
        self.shared.derived.queue_depth.set(queued as i64);
        self.shared
            .derived
            .cache_entries
            .set(cache.map_or(0, |c| c.entries) as i64);
        self.shared.derived.version.set(self.version() as i64);
        ServiceStats {
            queued,
            in_flight: self.shared.metrics.in_flight.get().max(0) as u64,
            submitted: self.shared.metrics.submitted.get(),
            completed: self.shared.metrics.completed.get(),
            batches: self.shared.metrics.batches.get(),
            rejected: self.shared.metrics.rejected.get(),
            workers: self.workers.len(),
            cache,
        }
    }

    /// The metric registry this service records into — render it with
    /// [`Registry::render`] for a Prometheus scrape, or register extra
    /// families (the HTTP tier adds its own) so one exposition covers
    /// the whole deployment. Call [`stats`](FairRankService::stats)
    /// first to refresh the derived gauges.
    #[must_use]
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Region-identity cache counters alone (a cheaper subset of
    /// [`stats`](FairRankService::stats)); `None` when the cache is
    /// disabled.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(SuggestionCache::stats)
    }

    /// Stop accepting new submissions without tearing the pool down:
    /// subsequent [`try_suggest`](FairRankService::try_suggest)/
    /// [`submit`](FairRankService::submit) calls (and submitters blocked
    /// on backpressure) observe [`ServiceError::Closed`], while workers
    /// keep draining — and answering — everything already queued.
    /// [`shutdown`](FairRankService::shutdown) closes and then joins.
    pub fn close(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.closed = true;
        }
        // Wake every waiter: idle workers exit once the queue drains,
        // blocked submitters observe `Closed`.
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Graceful shutdown: stop accepting submissions, drain and answer
    /// every request already queued, and join the worker pool. Dropping
    /// the service does the same.
    pub fn shutdown(mut self) {
        self.close_and_join(true);
    }

    fn close_and_join(&mut self, propagate_panics: bool) {
        self.close();
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                if propagate_panics {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

impl Drop for FairRankService {
    fn drop(&mut self) {
        // Never propagate worker panics out of Drop (aborts during
        // unwinding); `shutdown()` is the loud path.
        self.close_and_join(false);
    }
}

impl std::fmt::Debug for FairRankService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairRankService")
            .field("stats", &self.stats())
            .field("version", &self.version())
            .field("max_batch", &self.shared.max_batch)
            .field("max_delay", &self.shared.max_delay)
            .field("queue_capacity", &self.shared.capacity)
            .finish()
    }
}

/// One worker: collect a micro-batch (size- or deadline-triggered),
/// serve it on a point-in-time snapshot — region-cache hits through the
/// verdict fast path, everything else through [`FairRanker::respond_batch`]
/// — complete the one-shots, repeat until the queue is closed *and*
/// drained.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = match collect_batch(shared) {
            Some(batch) => batch,
            None => return,
        };
        // The gauge covers the whole span from drain to answer: capacity
        // freed at drain time reappears here as in-flight, so
        // `queued + in_flight` tracks total outstanding work without a
        // gap a stats reader could fall through.
        shared.metrics.in_flight.add(batch.len() as i64);
        // Serve outside every lock, on a snapshot pinned for exactly
        // this batch: a concurrent update advances the slot without
        // touching the generation we're answering from.
        let ranker = shared.slot.read().expect("slot lock poisoned").snapshot();
        let version = ranker.version();
        let cache = shared.cache.as_ref();
        let timers = shared.timers.as_ref();

        // Route each request: classify against the region cache first,
        // then serve hits through the verdict fast path and misses
        // through one `respond_batch` call — the same answers in the
        // same completion order as the unstaged loop, but with each
        // phase (`cache_lookup` → `fastpath` → `oracle_pass`)
        // observable as a per-batch span. A cached region verdict skips
        // the oracle ranking pass entirely
        // ([`FairRanker::respond_with_verdict`] runs the same
        // suggestion/finish code as the batch path, so answers stay
        // bit-identical); misses seed the cache on the way out.
        let mut txs = Vec::with_capacity(batch.len());
        let mut answers: Vec<Option<Result<Suggestion, ServiceError>>> =
            Vec::with_capacity(batch.len());
        let mut hit_reqs: Vec<(usize, SuggestRequest, bool)> = Vec::new();
        let mut miss_reqs: Vec<SuggestRequest> = Vec::new();
        let mut miss_slots: Vec<(usize, Option<CacheKey>)> = Vec::new();
        let lookup = Stopwatch::start_if(timers.is_some());
        for pending in batch {
            if let Some(timers) = timers {
                // Queue wait spans submit → this worker picking the
                // request up for classification (coalescing included —
                // it is time the caller spent waiting either way).
                pending.queued_at.record(&timers.queue_wait);
            }
            let key = cache.and_then(|cache| match ranker.region_of(&pending.req.query) {
                Some(region) => Some(CacheKey {
                    region,
                    k: pending.req.k,
                    options: pending.req.options,
                    version,
                }),
                None => {
                    // Uncertified queries still count in the hit-rate
                    // denominator — a backend that certifies nothing
                    // must read as 0% hits, not as no traffic.
                    cache.note_uncacheable();
                    None
                }
            });
            let hit = match (&key, cache) {
                (Some(key), Some(cache)) => cache.get(key),
                _ => None,
            };
            match hit {
                Some(fair) => {
                    // Version coherence: the key embeds the snapshot's
                    // version, so a hit replays a verdict from exactly
                    // the generation answering this batch.
                    debug_assert_eq!(key.map(|k| k.version), Some(version));
                    hit_reqs.push((answers.len(), pending.req, fair));
                    answers.push(None);
                }
                None => {
                    miss_slots.push((answers.len(), key));
                    answers.push(None);
                    miss_reqs.push(pending.req);
                }
            }
            txs.push(pending.tx);
        }
        if let Some(timers) = timers {
            lookup.record(&timers.cache_lookup);
        }

        if !hit_reqs.is_empty() {
            let fastpath = Stopwatch::start_if(timers.is_some());
            for (slot, req, fair) in hit_reqs {
                let answer = ranker
                    .respond_with_verdict(&req, fair)
                    .map_err(ServiceError::Rank);
                if let Ok(suggestion) = &answer {
                    debug_assert_eq!(
                        suggestion.version, version,
                        "cache hit answered from a different generation"
                    );
                }
                answers[slot] = Some(answer);
            }
            if let Some(timers) = timers {
                fastpath.record(&timers.fastpath);
            }
        }

        if !miss_reqs.is_empty() {
            let oracle_pass = Stopwatch::start_if(timers.is_some());
            match ranker.respond_batch(&miss_reqs) {
                Ok(batch_answers) => {
                    for ((slot, key), answer) in miss_slots.into_iter().zip(batch_answers) {
                        if let (Some(cache), Some(key)) = (cache, key) {
                            // `AlreadyFair` is exactly the oracle-fair
                            // verdict the fast path needs; Suggested and
                            // Infeasible both replay through
                            // `suggest_unfair`.
                            cache.insert(key, answer.is_already_fair());
                        }
                        answers[slot] = Some(Ok(answer));
                    }
                }
                Err(e) => {
                    // Unreachable for queue-validated requests;
                    // defensively fail the batch's callers rather than
                    // the worker.
                    let e = ServiceError::Rank(e);
                    for (slot, _) in miss_slots {
                        answers[slot] = Some(Err(e.clone()));
                    }
                }
            }
            if let Some(timers) = timers {
                oracle_pass.record(&timers.oracle_pass);
            }
        }
        shared.metrics.batches.inc();
        // Count before completing the one-shots: a caller must never
        // observe its answer while the counters miss it — and only
        // genuinely answered requests count.
        let completed = answers.iter().filter(|a| matches!(a, Some(Ok(_)))).count() as u64;
        shared.metrics.completed.add(completed);
        let served = txs.len() as i64;
        for (tx, answer) in txs.into_iter().zip(answers) {
            // A dropped receiver just means the caller stopped caring;
            // serving the rest of the batch is unaffected.
            let _ = tx.send(answer.expect("every routed request has an answer"));
        }
        shared.metrics.in_flight.add(-served);
    }
}

/// Block until at least one request is available (or return `None` on
/// closed-and-drained), then coalesce up to `max_batch` requests,
/// waiting at most `max_delay` past the first pickup. A closed queue
/// stops the coalescing wait immediately so shutdown drains fast.
fn collect_batch(shared: &Shared) -> Option<Vec<Pending>> {
    let mut queue = shared.queue.lock().expect("queue lock poisoned");
    loop {
        loop {
            if !queue.pending.is_empty() {
                break;
            }
            if queue.closed {
                return None;
            }
            queue = shared.not_empty.wait(queue).expect("queue lock poisoned");
        }
        // The coalesce stage: first pickup → batch drained. Distinct
        // from queue wait (which is per-request and includes this).
        let coalesce = Stopwatch::start_if(shared.timers.is_some());
        if shared.max_batch > 1 && !shared.max_delay.is_zero() {
            let deadline = Deadline::after(shared.max_delay);
            while queue.pending.len() < shared.max_batch && !queue.closed {
                let remaining = deadline.remaining();
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = shared
                    .not_empty
                    .wait_timeout(queue, remaining)
                    .expect("queue lock poisoned");
                queue = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = queue.pending.len().min(shared.max_batch);
        if take == 0 {
            // Another worker drained the item(s) that woke us while we
            // sat in the coalescing wait — go back to sleep rather than
            // executing a phantom batch.
            continue;
        }
        let batch = queue.pending.drain(..take).collect();
        drop(queue);
        // Capacity frees at *drain* time, not when the batch finishes
        // serving: release blocked submitters immediately.
        shared.not_full.notify_all();
        if let Some(timers) = &shared.timers {
            coalesce.record(&timers.coalesce);
        }
        return Some(batch);
    }
}
