//! [`SuggestionCache`]: the region-identity answer cache behind the
//! service's repeated-traffic fast path.
//!
//! The paper's central geometric fact — answers are piecewise-constant
//! over regions of weight space — means two near-identical queries
//! landing in the same region pay the same `O(n log n)` oracle ranking
//! pass for the same verdict. The cache memoizes exactly that verdict,
//! keyed on the backend's certified region identity
//! ([`fairrank::IndexBackend::region_of`]) plus everything else that
//! could change the answer: the requested top-k, the per-request
//! options, and the dataset version.
//!
//! Deliberately, the cache does **not** store [`Suggestion`]s: suggested
//! weights scale with the query's norm and the distance varies across a
//! region, so caching full answers would either serve wrong values or
//! need per-query post-processing that re-derives what the backend
//! already computes. Storing only the verdict keeps hits bit-identical
//! to misses by construction — the hit path
//! ([`fairrank::FairRanker::respond_with_verdict`]) runs the same
//! `suggest_unfair`/`finish` code as the miss path and skips only the
//! oracle pass.
//!
//! [`Suggestion`]: fairrank::Suggestion

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use fairrank::{RegionKey, SuggestOptions};
use fairrank_telemetry::{Counter, Registry};

/// The full identity of a cacheable verdict: the backend's region key
/// plus every request parameter (and the dataset version) that could
/// change the answer. Two requests with equal `CacheKey`s receive the
/// same oracle verdict — the soundness property
/// [`fairrank::IndexBackend::region_of`] contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The certified weight-space region.
    pub region: RegionKey,
    /// The request's top-k materialization parameter.
    pub k: Option<usize>,
    /// The request's serving options.
    pub options: SuggestOptions,
    /// The dataset epoch ([`fairrank::FairRanker::version`]) the verdict
    /// was computed on. Region keys are meaningless across versions, so
    /// the version rides in the key: entries from superseded generations
    /// become unreachable the instant the serving slot swaps, even
    /// before the purge lands.
    pub version: u64,
}

/// One cached entry: the oracle's fairness verdict for the region, plus
/// the CLOCK reference bit.
struct Slot {
    fair: bool,
    referenced: bool,
}

/// One lock's worth of the cache: a verdict map plus the CLOCK ring
/// driving bounded eviction (second-chance: a referenced entry survives
/// one sweep, an unreferenced one is evicted).
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
    clock: VecDeque<CacheKey>,
}

/// Point-in-time cache counters, surfaced through
/// `FairRankService::stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the full serving path (including
    /// requests whose backend certified no region).
    pub misses: u64,
    /// Verdicts inserted.
    pub insertions: u64,
    /// Entries evicted by the CLOCK sweep at capacity.
    pub evictions: u64,
    /// Whole-cache purges (one per live update).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (`0.0` when no
    /// lookup has happened yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, bounded verdict cache keyed on region identity — see the
/// module docs for what is (and deliberately is not) stored.
///
/// Concurrency: lookups and insertions take one shard mutex each
/// (requests spread across shards by key hash), counters are lock-free
/// atomics, and [`purge`](SuggestionCache::purge) sweeps the shards in
/// order — callers needing purge atomicity against readers (the
/// service's update path) serialize externally, and the version-in-key
/// design makes even unpurged stale entries unreachable.
pub struct SuggestionCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity (total capacity split evenly, at least 1).
    shard_capacity: usize,
    // Counters are telemetry handles (shared atomics), constructed
    // detached and optionally bound into a metrics registry via
    // [`bind_telemetry`](SuggestionCache::bind_telemetry) — the cache
    // works identically either way.
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    invalidations: Counter,
}

impl SuggestionCache {
    /// A cache holding at most (approximately) `capacity` verdicts,
    /// spread over `shards` independently locked shards. Both are
    /// clamped to at least 1; capacity rounds up to a multiple of the
    /// shard count.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        SuggestionCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: Counter::new(),
            misses: Counter::new(),
            insertions: Counter::new(),
            evictions: Counter::new(),
            invalidations: Counter::new(),
        }
    }

    /// Expose the cache's live counters as `fairrank_cache_*` families
    /// in `registry` — the same cells [`stats`](SuggestionCache::stats)
    /// reads, so a Prometheus scrape and a `CacheStats` snapshot can
    /// never disagree on these counts.
    pub fn bind_telemetry(&self, registry: &Registry) {
        registry.bind_counter(
            "fairrank_cache_hits_total",
            "Region-verdict cache lookups answered from the cache.",
            &[],
            &self.hits,
        );
        registry.bind_counter(
            "fairrank_cache_misses_total",
            "Cache lookups that fell through to the full serving path \
             (including requests whose backend certified no region).",
            &[],
            &self.misses,
        );
        registry.bind_counter(
            "fairrank_cache_insertions_total",
            "Region verdicts inserted into the cache.",
            &[],
            &self.insertions,
        );
        registry.bind_counter(
            "fairrank_cache_evictions_total",
            "Cache entries evicted by the CLOCK sweep at capacity.",
            &[],
            &self.evictions,
        );
        registry.bind_counter(
            "fairrank_cache_invalidations_total",
            "Whole-cache purges (one per live update or generation swap).",
            &[],
            &self.invalidations,
        );
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// The cached verdict for `key`, marking the entry recently used.
    /// Counts a hit or a miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<bool> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        match shard.map.get_mut(key) {
            Some(slot) => {
                slot.referenced = true;
                self.hits.inc();
                Some(slot.fair)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Record a lookup that never reached the map because the backend
    /// certified no region — kept separate from [`Self::get`] so the hit-rate
    /// denominator still covers every request.
    pub fn note_uncacheable(&self) {
        self.misses.inc();
    }

    /// Insert (or refresh) the verdict for `key`, evicting via one CLOCK
    /// sweep when the shard is at capacity.
    pub fn insert(&self, key: CacheKey, fair: bool) {
        let mut shard = self.shard_of(&key).lock().expect("cache shard poisoned");
        if let Some(slot) = shard.map.get_mut(&key) {
            // Concurrent workers racing the same region: keep one entry.
            slot.fair = fair;
            slot.referenced = true;
            return;
        }
        while shard.map.len() >= self.shard_capacity {
            let Some(candidate) = shard.clock.pop_front() else {
                break;
            };
            match shard.map.get_mut(&candidate) {
                Some(slot) if slot.referenced => {
                    // Second chance: clear the bit, rotate to the back.
                    slot.referenced = false;
                    shard.clock.push_back(candidate);
                }
                Some(_) => {
                    shard.map.remove(&candidate);
                    self.evictions.inc();
                }
                None => {} // stale ring entry from a purge race; drop it
            }
        }
        shard.map.insert(
            key,
            Slot {
                fair,
                referenced: false,
            },
        );
        shard.clock.push_back(key);
        self.insertions.inc();
    }

    /// Drop every entry — the update path's invalidation. Counted once
    /// per call.
    pub fn purge(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.clock.clear();
        }
        self.invalidations.inc();
    }

    /// Point-in-time counters. The entry count walks the shards, so a
    /// snapshot under concurrent serving is approximate the same way
    /// queue depth is.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            entries,
        }
    }
}

impl std::fmt::Debug for SuggestionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuggestionCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(region_index: u64, version: u64) -> CacheKey {
        CacheKey {
            region: RegionKey::new(0, region_index),
            k: None,
            options: SuggestOptions::default(),
            version,
        }
    }

    #[test]
    fn get_insert_round_trip_and_counters() {
        let cache = SuggestionCache::new(8, 2);
        assert_eq!(cache.get(&key(1, 0)), None);
        cache.insert(key(1, 0), true);
        cache.insert(key(2, 0), false);
        assert_eq!(cache.get(&key(1, 0)), Some(true));
        assert_eq!(cache.get(&key(2, 0)), Some(false));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.entries, 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn version_is_part_of_the_key() {
        let cache = SuggestionCache::new(8, 1);
        cache.insert(key(1, 0), true);
        assert_eq!(cache.get(&key(1, 1)), None, "new version, new key");
        assert_eq!(cache.get(&key(1, 0)), Some(true));
    }

    #[test]
    fn clock_eviction_bounds_each_shard() {
        let cache = SuggestionCache::new(4, 1);
        for i in 0..32 {
            cache.insert(key(i, 0), i % 2 == 0);
        }
        let stats = cache.stats();
        assert!(
            stats.entries <= 4,
            "entries {} exceed capacity",
            stats.entries
        );
        assert_eq!(stats.evictions, stats.insertions - stats.entries as u64);
    }

    #[test]
    fn referenced_entries_get_a_second_chance() {
        let cache = SuggestionCache::new(2, 1);
        cache.insert(key(1, 0), true);
        cache.insert(key(2, 0), false);
        // Touch key 1: the next eviction sweep must spare it.
        assert_eq!(cache.get(&key(1, 0)), Some(true));
        cache.insert(key(3, 0), true);
        assert_eq!(cache.get(&key(1, 0)), Some(true), "hot entry survives");
        assert_eq!(cache.get(&key(2, 0)), None, "cold entry evicted");
    }

    #[test]
    fn purge_empties_and_counts() {
        let cache = SuggestionCache::new(8, 4);
        for i in 0..6 {
            cache.insert(key(i, 0), true);
        }
        cache.purge();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(cache.get(&key(0, 0)), None);
    }

    #[test]
    fn insert_same_key_keeps_one_entry() {
        let cache = SuggestionCache::new(8, 1);
        cache.insert(key(1, 0), true);
        cache.insert(key(1, 0), false);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.get(&key(1, 0)), Some(false));
    }
}
