//! Error type for the async serving tier.

use std::fmt;

use fairrank::FairRankError;

/// Errors surfaced by [`FairRankService`](crate::FairRankService).
///
/// `#[non_exhaustive]`: new failure modes can be added without a
/// breaking change; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded submission queue is full — the backpressure signal of
    /// [`try_suggest`](crate::FairRankService::try_suggest) and of an
    /// expired [`submit_timeout`](crate::FairRankService::submit_timeout)
    /// deadline. Callers shed load, retry after a delay proportional to
    /// `depth`, or use the blocking
    /// [`submit`](crate::FairRankService::submit) path instead.
    Overloaded {
        /// The configured queue capacity that was hit.
        capacity: usize,
        /// Requests outstanding at rejection time: everything queued
        /// plus everything in flight inside the worker pool. An HTTP
        /// front end divides this by its observed service rate to emit
        /// an honest `Retry-After` instead of a constant.
        depth: usize,
    },
    /// The service has been shut down; no new requests are accepted
    /// (requests already queued at shutdown are still drained and
    /// answered).
    Closed,
    /// The underlying ranker rejected the request or update.
    Rank(FairRankError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity, depth } => {
                write!(
                    f,
                    "submission queue full (capacity {capacity}, {depth} requests outstanding)"
                )
            }
            ServiceError::Closed => write!(f, "service is shut down"),
            ServiceError::Rank(e) => write!(f, "ranker error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Rank(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FairRankError> for ServiceError {
    fn from(e: FairRankError) -> Self {
        ServiceError::Rank(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let over = ServiceError::Overloaded {
            capacity: 8,
            depth: 11,
        };
        assert!(over.to_string().contains('8'));
        assert!(over.to_string().contains("11"));
        assert!(std::error::Error::source(&over).is_none());
        assert_eq!(ServiceError::Closed.to_string(), "service is shut down");
        let rank = ServiceError::from(FairRankError::EmptyDataset);
        assert!(rank.to_string().contains("empty"));
        assert!(std::error::Error::source(&rank).is_some());
    }
}
