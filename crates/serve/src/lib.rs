//! # fairrank-serve
//!
//! The **async-first serving tier** for [`fairrank`]: where the core
//! crate answers pre-assembled batches synchronously, this crate serves
//! the workload shape real two-sided platforms produce — individual
//! queries arriving continuously, concurrently with item updates.
//!
//! ```
//! use fairrank::{FairRanker, SuggestRequest};
//! use fairrank_datasets::synthetic::generic;
//! use fairrank_fairness::Proportionality;
//! use fairrank_serve::{runtime, FairRankService};
//!
//! let ds = generic::uniform(60, 2, 0.9, 42);
//! let oracle = Proportionality::new(ds.type_attribute("group").unwrap(), 10)
//!     .with_max_count(0, 5);
//! let ranker = FairRanker::builder(ds, Box::new(oracle)).build().unwrap();
//!
//! let service = FairRankService::builder(ranker).workers(2).build();
//! // Submit returns a future; await it from any executor (the crate's
//! // hand-rolled `block_on` works, and so does `.wait()`).
//! let future = service.submit(SuggestRequest::new([1.0, 0.1])).unwrap();
//! let answer = runtime::block_on(future).unwrap();
//! assert_eq!(answer.version, 0);
//! service.shutdown();
//! ```
//!
//! Internally a worker pool drains a bounded MPSC submission queue,
//! coalesces requests into micro-batches (size- or deadline-triggered),
//! executes them through [`FairRanker::respond_batch`] on a
//! point-in-time [`FairRanker::snapshot`], and completes per-request
//! one-shot futures. Repeated traffic takes a fast path: a
//! [`SuggestionCache`] memoizes the oracle's fairness verdict per
//! certified weight-space region
//! ([`fairrank::IndexBackend::region_of`]), so a hit skips the
//! `O(n log n)` ranking pass while producing bit-identical answers.
//! [`FairRankService::try_suggest`] surfaces backpressure as
//! [`ServiceError::Overloaded`]; [`FairRankService::update`] serializes
//! writers, swaps generations copy-on-write so readers never block
//! behind index maintenance, and purges the cache atomically with the
//! swap. The whole pipeline is dependency-free: the tiny executor
//! machinery lives in [`runtime`].
//!
//! [`FairRanker::respond_batch`]: fairrank::FairRanker::respond_batch
//! [`FairRanker::snapshot`]: fairrank::FairRanker::snapshot

mod cache;
mod error;
pub mod runtime;
mod service;

pub use cache::{CacheKey, CacheStats, SuggestionCache};
pub use error::ServiceError;
pub use service::{FairRankService, ServiceBuilder, ServiceStats, SuggestionFuture};

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use fairrank::{DatasetUpdate, FairRanker, KnownFairness, Strategy, SuggestRequest};
    use fairrank_datasets::synthetic::generic;
    use fairrank_datasets::Dataset;
    use fairrank_fairness::Proportionality;
    use fairrank_geometry::HALF_PI;

    use crate::runtime::block_on;
    use crate::{FairRankService, ServiceError};

    fn ranker_2d(n: usize, seed: u64) -> (FairRanker, Dataset) {
        let ds = generic::uniform(n, 2, 0.9, seed);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 10).with_max_count(0, 5);
        let ranker = FairRanker::builder(ds.clone(), Box::new(oracle))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap();
        (ranker, ds)
    }

    fn fan(count: usize) -> Vec<SuggestRequest> {
        (0..count)
            .map(|i| {
                let t = (i as f64 + 0.5) / count as f64 * HALF_PI;
                SuggestRequest::new(vec![1.5 * t.cos(), 1.5 * t.sin()])
            })
            .collect()
    }

    #[test]
    fn serves_concurrent_submitters() {
        let (ranker, _) = ranker_2d(40, 7);
        let reference = ranker.snapshot();
        let service = FairRankService::builder(ranker)
            .workers(2)
            .max_batch(8)
            .max_delay(Duration::from_micros(100))
            .build();
        let reqs = fan(48);
        std::thread::scope(|scope| {
            for chunk in reqs.chunks(12) {
                let service = &service;
                let reference = &reference;
                scope.spawn(move || {
                    for req in chunk {
                        let got = service.suggest(req.clone()).unwrap();
                        assert_eq!(got, reference.respond(req).unwrap());
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.submitted, 48);
        assert_eq!(stats.completed, 48);
        assert!(stats.batches >= 1);
        service.shutdown();
    }

    #[test]
    fn futures_are_awaitable() {
        let (ranker, _) = ranker_2d(30, 9);
        let reference = ranker.snapshot();
        let service = FairRankService::builder(ranker).workers(1).build();
        let reqs = fan(10);
        let futures: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        for (req, fut) in reqs.iter().zip(futures) {
            assert_eq!(block_on(fut).unwrap(), reference.respond(req).unwrap());
        }
        service.shutdown();
    }

    #[test]
    fn try_suggest_overload_backpressure() {
        let (ranker, _) = ranker_2d(30, 11);
        // One worker, long delay, tiny queue: submissions pile up.
        let service = FairRankService::builder(ranker)
            .workers(1)
            .max_batch(64)
            .max_delay(Duration::from_millis(200))
            .queue_capacity(4)
            .build();
        let reqs = fan(64);
        let mut accepted = Vec::new();
        let mut overloaded = 0usize;
        for req in &reqs {
            match service.try_suggest(req.clone()) {
                Ok(fut) => accepted.push(fut),
                Err(ServiceError::Overloaded { capacity, depth }) => {
                    assert_eq!(capacity, 4);
                    assert!(depth >= capacity, "depth {depth} below capacity {capacity}");
                    overloaded += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(overloaded > 0, "tiny queue must shed load");
        assert_eq!(service.stats().rejected, overloaded as u64);
        for fut in accepted {
            fut.wait().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn invalid_requests_fail_their_caller_only() {
        let (ranker, _) = ranker_2d(30, 13);
        let reference = ranker.snapshot();
        let service = FairRankService::builder(ranker).workers(1).build();
        assert!(matches!(
            service.submit(SuggestRequest::new(vec![-1.0, 0.5])),
            Err(ServiceError::Rank(_))
        ));
        assert!(matches!(
            service.submit(SuggestRequest::new(vec![1.0])),
            Err(ServiceError::Rank(_))
        ));
        // A valid request right after still serves normally.
        let req = SuggestRequest::new(vec![1.0, 0.1]);
        assert_eq!(
            service.suggest(req.clone()).unwrap(),
            reference.respond(&req).unwrap()
        );
        service.shutdown();
    }

    #[test]
    fn update_while_serving_advances_version() {
        let (ranker, _) = ranker_2d(40, 17);
        let service = FairRankService::builder(ranker).workers(2).build();
        assert_eq!(service.version(), 0);
        let outcome = service
            .update(DatasetUpdate::Insert {
                scores: vec![0.6, 0.6],
                groups: vec![0],
            })
            .unwrap();
        // The maintained 2-D backend forks and maintains incrementally.
        assert_eq!(outcome, fairrank::UpdateOutcome::Incremental);
        assert_eq!(service.version(), 1);
        let answer = service
            .suggest(SuggestRequest::new(vec![1.0, 0.2]))
            .unwrap();
        assert_eq!(answer.version, 1, "answers reflect the new generation");
        // The post-update service answers like a direct post-update ranker.
        let direct = service.snapshot();
        let req = SuggestRequest::new(vec![1.0, 0.05]);
        assert_eq!(
            service.suggest(req.clone()).unwrap(),
            direct.respond(&req).unwrap()
        );
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let (ranker, _) = ranker_2d(30, 19);
        let reference = ranker.snapshot();
        // Huge delay: without the drain-on-close path these would sit
        // for 10 s; shutdown must complete them promptly.
        let service = FairRankService::builder(ranker)
            .workers(1)
            .max_batch(64)
            .max_delay(Duration::from_secs(10))
            .build();
        let reqs = fan(12);
        let futures: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        let start = std::time::Instant::now();
        service.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown must not wait out the batching deadline"
        );
        for (req, fut) in reqs.iter().zip(futures) {
            assert_eq!(fut.wait().unwrap(), reference.respond(req).unwrap());
        }
    }

    #[test]
    fn submissions_after_close_are_rejected() {
        let (ranker, _) = ranker_2d(20, 23);
        let reference = ranker.snapshot();
        let service = FairRankService::builder(ranker).workers(1).build();
        let probe = SuggestRequest::new(vec![1.0, 0.3]);
        // Queue one request, then close: the queued answer still
        // arrives, but every later submission path reports Closed.
        let queued = service.submit(probe.clone()).unwrap();
        service.close();
        assert!(matches!(
            service.try_suggest(probe.clone()),
            Err(ServiceError::Closed)
        ));
        assert!(matches!(
            service.submit(probe.clone()),
            Err(ServiceError::Closed)
        ));
        assert!(matches!(
            service.suggest(probe.clone()),
            Err(ServiceError::Closed)
        ));
        assert_eq!(queued.wait().unwrap(), reference.respond(&probe).unwrap());
        service.shutdown();
    }

    #[test]
    fn already_fair_and_infeasible_pass_through() {
        let ds = generic::uniform(25, 2, 0.0, 29);
        let always = fairrank_fairness::FnOracle::new("always", |_: &[u32]| true);
        let ranker = FairRanker::builder(ds.clone(), Box::new(always))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap();
        let service = FairRankService::builder(ranker).workers(1).build();
        let ans = service
            .suggest(SuggestRequest::new(vec![1.0, 1.0]))
            .unwrap();
        assert_eq!(ans.fairness, KnownFairness::AlreadyFair);
        service.shutdown();

        let never = fairrank_fairness::FnOracle::new("never", |_: &[u32]| false);
        let ranker = FairRanker::builder(ds, Box::new(never))
            .strategy(Strategy::TwoD)
            .build()
            .unwrap();
        let service = FairRankService::builder(ranker).workers(1).build();
        let ans = service
            .suggest(SuggestRequest::new(vec![1.0, 1.0]))
            .unwrap();
        assert!(ans.is_infeasible());
        service.shutdown();
    }

    #[test]
    fn top_k_requests_served_through_the_queue() {
        let (ranker, ds) = ranker_2d(35, 31);
        let service = FairRankService::builder(ranker).workers(1).build();
        let ans = service
            .suggest(SuggestRequest::new(vec![1.0, 0.02]).with_top_k(5))
            .unwrap();
        let top = ans.stats.top_k.as_deref().unwrap();
        assert_eq!(top, &ds.rank(&ans.weights)[..5]);
        service.shutdown();
    }
}
