//! A minimal hand-rolled async runtime: just enough executor machinery
//! to await a [`FairRankService`](crate::FairRankService) answer without
//! an external runtime dependency.
//!
//! This build environment vendors every dependency offline, so instead
//! of pulling in a full reactor the crate ships the three primitives the
//! serving pipeline actually needs:
//!
//! * [`block_on`] — drive any future to completion on the current
//!   thread, parking between polls (a thread-parking [`Waker`]).
//! * [`oneshot`] — a `Waker`-integrated single-value channel: the worker
//!   pool completes one per request, and the caller either `.await`s the
//!   receiver (it is a [`Future`]) or blocks on [`oneshot::Receiver::wait`].
//! * [`Deadline`] — the micro-batcher's timer: a monotonic expiry point
//!   with saturating remaining-time queries, driven by
//!   [`Condvar::wait_timeout`](std::sync::Condvar::wait_timeout) inside
//!   the worker loop.
//!
//! Everything here is runtime-agnostic: the oneshot receivers are plain
//! futures, so they compose with any executor a downstream application
//! already runs — `block_on` is merely the built-in fallback.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Thread-parking waker: `wake` unparks the thread that is blocked
/// inside [`block_on`].
struct ThreadWaker(Thread);

impl std::task::Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive `future` to completion on the current thread.
///
/// Polls once, then parks until the future's waker fires — no spinning.
/// Spurious unparks (allowed by [`std::thread::park`]) simply trigger a
/// redundant poll, which every well-formed future tolerates.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// A monotonic expiry point — the micro-batcher's deadline trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `delay` from now (saturating at the far future).
    #[must_use]
    pub fn after(delay: Duration) -> Self {
        Deadline {
            at: Instant::now()
                .checked_add(delay)
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400)),
        }
    }

    /// Time left until expiry; [`Duration::ZERO`] once expired.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Has the deadline passed?
    #[must_use]
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }
}

/// A `Waker`-based single-value channel: the bridge between the worker
/// pool (which completes answers) and callers (which await them).
pub mod oneshot {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Waker};

    /// The sending half vanished without producing a value (worker
    /// panic or service teardown race).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Canceled;

    impl std::fmt::Display for Canceled {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for Canceled {}

    struct State<T> {
        value: Option<T>,
        waker: Option<Waker>,
        tx_alive: bool,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Completes the channel with one value. Dropping without sending
    /// cancels the receiver.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The awaitable half: a [`Future`] resolving to the sent value, or
    /// [`Canceled`] when the sender vanished.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a connected sender/receiver pair.
    #[must_use]
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                value: None,
                waker: None,
                tx_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Deliver `value`, waking the receiver. Consumes the sender;
        /// returns the value back if the receiver is already gone.
        pub fn send(self, value: T) -> Result<(), T> {
            // Sole owner check: receiver dropped ⇒ its Arc is gone.
            if Arc::strong_count(&self.inner) == 1 {
                return Err(value);
            }
            let waker = {
                let mut state = self.inner.state.lock().expect("oneshot lock poisoned");
                state.value = Some(value);
                state.waker.take()
            };
            self.inner.ready.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let waker = {
                let mut state = self.inner.state.lock().expect("oneshot lock poisoned");
                state.tx_alive = false;
                state.waker.take()
            };
            self.inner.ready.notify_all();
            if let Some(w) = waker {
                w.wake();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block the current thread until the value (or cancellation)
        /// arrives — the synchronous twin of `.await`.
        ///
        /// # Errors
        /// [`Canceled`] when the sender was dropped without sending.
        pub fn wait(self) -> Result<T, Canceled> {
            let mut state = self.inner.state.lock().expect("oneshot lock poisoned");
            loop {
                if let Some(v) = state.value.take() {
                    return Ok(v);
                }
                if !state.tx_alive {
                    return Err(Canceled);
                }
                state = self.inner.ready.wait(state).expect("oneshot lock poisoned");
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, Canceled>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.inner.state.lock().expect("oneshot lock poisoned");
            if let Some(v) = state.value.take() {
                return Poll::Ready(Ok(v));
            }
            if !state.tx_alive {
                return Poll::Ready(Err(Canceled));
            }
            // Replace (not accumulate) the waker: only the latest
            // polling task is owed a wake.
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 21 * 2 }), 42);
    }

    #[test]
    fn oneshot_send_then_await() {
        let (tx, rx) = oneshot::channel();
        tx.send(7u32).unwrap();
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn oneshot_cross_thread_wakeup() {
        let (tx, rx) = oneshot::channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send("late").unwrap();
        });
        assert_eq!(block_on(rx), Ok("late"));
        sender.join().unwrap();
    }

    #[test]
    fn oneshot_wait_blocking() {
        let (tx, rx) = oneshot::channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(5u8).unwrap();
        });
        assert_eq!(rx.wait(), Ok(5));
        sender.join().unwrap();
    }

    #[test]
    fn oneshot_dropped_sender_cancels() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::Canceled));
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(rx.wait(), Err(oneshot::Canceled));
    }

    #[test]
    fn oneshot_dropped_receiver_returns_value() {
        let (tx, rx) = oneshot::channel();
        drop(rx);
        assert_eq!(tx.send(9i64), Err(9));
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(60));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(59));
    }
}
