//! # fairrank-datasets
//!
//! Columnar dataset model and data sources for the fair-ranking system of
//! Asudeh et al. (SIGMOD 2019).
//!
//! The paper evaluates on two real datasets that cannot be redistributed
//! here, so this crate ships **calibrated synthetic generators** instead
//! (see DESIGN.md D1/D2 for the substitution argument):
//!
//! * [`synthetic::compas`] — a COMPAS-like recidivism dataset: 6,889
//!   individuals, seven scoring attributes, and the protected attributes
//!   `sex`, `race`, `age_binary`, `age_bucketized` with ProPublica's
//!   published marginals and a tunable correlation between protected groups
//!   and scores (the quantity the paper's experiments actually exercise).
//! * [`synthetic::dot`] — a DOT-like flight on-time dataset scalable to the
//!   paper's 1.32M rows, with market-share-weighted carriers and
//!   heavy-tailed delays.
//! * [`synthetic::generic`] — uniform / correlated / anti-correlated
//!   attribute generators, the standard stress workloads of the top-k
//!   literature.
//!
//! [`Dataset`] is the shared columnar container: `n × d` non-negative
//! scoring attributes (higher is better after [`Dataset::normalize_min_max`])
//! plus any number of categorical *type attributes* (protected features)
//! that fairness oracles inspect. [`csvio`] round-trips datasets through a
//! small self-contained CSV codec. [`RankWorkspace`] is the probe-loop
//! companion to [`Dataset::rank`]: allocation-free repeated ranking with
//! partial top-k sorting for prefix-bounded oracles.

pub mod csvio;
pub mod dataset;
pub mod distributions;
pub mod kernels;
pub mod rank;
pub mod synthetic;

pub use dataset::{Dataset, DatasetError, TypeAttribute};
pub use rank::RankWorkspace;
