//! The columnar dataset container shared by all fairrank crates.

use std::fmt;

use crate::kernels::{self, AlignedCol};

/// A categorical *type attribute* (protected feature): one small-cardinality
/// group id per item, with human-readable labels (paper §2, fairness model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeAttribute {
    /// Attribute name, e.g. `"race"`.
    pub name: String,
    /// Group labels; `values[i]` indexes into this.
    pub labels: Vec<String>,
    /// Group id per item, `values.len() == n`.
    pub values: Vec<u32>,
}

impl TypeAttribute {
    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.labels.len()
    }

    /// Count of items per group.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.labels.len()];
        for &v in &self.values {
            counts[v as usize] += 1;
        }
        counts
    }

    /// Proportion of each group in the dataset.
    #[must_use]
    pub fn group_proportions(&self) -> Vec<f64> {
        let n = self.values.len().max(1) as f64;
        self.group_sizes().iter().map(|&c| c as f64 / n).collect()
    }
}

/// Errors constructing or transforming datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row has the wrong number of attributes.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Expected width.
        expected: usize,
        /// Found width.
        found: usize,
    },
    /// A scoring value is NaN or infinite.
    NonFiniteValue {
        /// Item index.
        row: usize,
        /// Attribute index.
        attr: usize,
    },
    /// A type attribute has the wrong length or an out-of-range group id.
    MalformedTypeAttribute(String),
    /// Requested attribute name does not exist.
    UnknownAttribute(String),
    /// The dataset has no items.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedRow {
                row,
                expected,
                found,
            } => {
                write!(f, "row {row} has {found} attributes, expected {expected}")
            }
            DatasetError::NonFiniteValue { row, attr } => {
                write!(f, "non-finite scoring value at row {row}, attribute {attr}")
            }
            DatasetError::MalformedTypeAttribute(name) => {
                write!(f, "malformed type attribute {name:?}")
            }
            DatasetError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            DatasetError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// An `n × d` dataset of scalar scoring attributes plus categorical type
/// attributes (paper §2: data model).
///
/// Scoring attributes are stored **columnar** (struct-of-arrays): one
/// 64-byte-aligned [`AlignedCol`] per attribute, so whole-dataset
/// scoring is `d` streaming multiply-accumulate passes the compiler
/// vectorizes (see [`crate::kernels`]). Row access is a gather
/// ([`Dataset::row`] / [`Dataset::row_into`] / [`Dataset::value`]);
/// every ranking path consumes columns through the kernels instead.
/// After [`Dataset::normalize_min_max`], all values are in `[0, 1]` and
/// larger is better, matching the paper's preliminaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    attr_names: Vec<String>,
    /// `d` columns of `n` values each.
    cols: Vec<AlignedCol>,
    n: usize,
    d: usize,
    types: Vec<TypeAttribute>,
}

impl Dataset {
    /// Build from rows of scoring attributes.
    ///
    /// # Errors
    /// On ragged rows, non-finite values or an empty input.
    pub fn from_rows(attr_names: Vec<String>, rows: &[Vec<f64>]) -> Result<Dataset, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        let d = attr_names.len();
        let mut cols: Vec<AlignedCol> = (0..d)
            .map(|_| AlignedCol::with_capacity(rows.len()))
            .collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    expected: d,
                    found: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DatasetError::NonFiniteValue { row: i, attr: j });
                }
                cols[j].push(v);
            }
        }
        Ok(Dataset {
            attr_names,
            n: rows.len(),
            d,
            cols,
            types: Vec::new(),
        })
    }

    /// Attach a type attribute.
    ///
    /// # Errors
    /// If `values.len() != n` or a group id exceeds the label count.
    pub fn add_type_attribute(
        &mut self,
        name: impl Into<String>,
        labels: Vec<String>,
        values: Vec<u32>,
    ) -> Result<(), DatasetError> {
        let name = name.into();
        if values.len() != self.n || values.iter().any(|&v| v as usize >= labels.len()) {
            return Err(DatasetError::MalformedTypeAttribute(name));
        }
        self.types.push(TypeAttribute {
            name,
            labels,
            values,
        });
        Ok(())
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of scoring attributes.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Scoring attribute names.
    #[must_use]
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// One scoring value: attribute `j` of item `i`.
    ///
    /// # Panics
    /// If `i >= len()` or `j >= dim()`.
    #[inline]
    #[must_use]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.cols[j].as_slice()[i]
    }

    /// The full column of scoring attribute `j`, as a contiguous
    /// 64-byte-aligned slice of `len()` values — the input the
    /// [`crate::kernels`] primitives stream over.
    ///
    /// # Panics
    /// If `j >= dim()`.
    #[inline]
    #[must_use]
    pub fn column(&self, j: usize) -> &[f64] {
        self.cols[j].as_slice()
    }

    /// The scoring vector of one item, gathered from the columns into a
    /// fresh `Vec`. For repeated row access, [`Dataset::row_into`]
    /// reuses a caller buffer.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.d);
        self.row_into(i, &mut out);
        out
    }

    /// Gather item `i`'s scoring vector into `out` (cleared and
    /// refilled).
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c.as_slice()[i]));
    }

    /// The whole scoring matrix gathered into a row-major flat buffer
    /// (`n * d` values, row `i` at `i*d..(i+1)*d`) — the pre-columnar
    /// layout. Used by the `O(n²)` pairwise hyperplane loops (which are
    /// row-shaped by nature) and the persist codec's legacy arm.
    #[must_use]
    pub fn to_row_major(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n * self.d);
        for i in 0..self.n {
            out.extend(self.cols.iter().map(|c| c.as_slice()[i]));
        }
        out
    }

    /// All type attributes.
    #[must_use]
    pub fn type_attributes(&self) -> &[TypeAttribute] {
        &self.types
    }

    /// Look up a type attribute by name.
    #[must_use]
    pub fn type_attribute(&self, name: &str) -> Option<&TypeAttribute> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Score of item `i` under weight vector `w` (`f_w(t) = Σ w_j t[j]`).
    ///
    /// The single-item scalar reference: attribute products accumulated
    /// in ascending `j` order from `0.0`, the exact operation sequence
    /// [`crate::kernels::score_all_into`] reproduces per item — so
    /// kernel scores are bit-identical to this, by construction.
    ///
    /// # Panics
    /// If `w.len() != dim()`.
    #[inline]
    #[must_use]
    pub fn score(&self, w: &[f64], i: usize) -> f64 {
        assert_eq!(w.len(), self.d);
        self.cols
            .iter()
            .zip(w)
            .map(|(c, b)| c.as_slice()[i] * b)
            .sum()
    }

    /// Rank all items by descending score under `w`; ties broken by item id
    /// ascending, so rankings are total orders and reproducible.
    ///
    /// Scores through the kernel/workspace path via a thread-local
    /// [`crate::RankWorkspace`], so the score buffer is reused across
    /// calls — the only allocation is the returned permutation itself.
    #[must_use]
    pub fn rank(&self, w: &[f64]) -> Vec<u32> {
        self.rank_bounded(w, None)
    }

    /// The top-`k` item ids under `w` (`k` clamped to `n`): the exact
    /// `k`-prefix of [`Dataset::rank`], placed via partial selection
    /// (`O(n + k log k)`) instead of a full sort.
    #[must_use]
    pub fn top_k(&self, w: &[f64], k: usize) -> Vec<u32> {
        let mut r = self.rank_bounded(w, Some(k));
        r.truncate(k.min(self.n));
        r
    }

    /// Shared allocation-light ranking entry point: score through the
    /// columnar kernels into a thread-local workspace buffer, then
    /// select/sort into the returned permutation.
    fn rank_bounded(&self, w: &[f64], bound: Option<usize>) -> Vec<u32> {
        use std::cell::RefCell;
        thread_local! {
            static SCORES: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
        }
        let mut out = Vec::new();
        SCORES.with(|s| {
            let mut scores = s.borrow_mut();
            kernels::score_all_into(self, w, &mut scores);
            kernels::top_k_select_into(&scores, bound, &mut out);
        });
        out
    }

    /// Min–max normalize every scoring attribute to `[0, 1]`
    /// (`(v − min)/(max − min)`; constant attributes map to 0). For
    /// attribute indices in `invert`, the direction is flipped
    /// (`(max − v)/(max − min)`) so that *larger normalized values are
    /// always better* — the paper does this for `age`.
    pub fn normalize_min_max(&mut self, invert: &[usize]) {
        for (j, col) in self.cols.iter_mut().enumerate() {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in col.as_slice() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let span = hi - lo;
            let flip = invert.contains(&j);
            for v in col.as_mut_slice() {
                *v = if span <= f64::EPSILON {
                    0.0
                } else if flip {
                    (hi - *v) / span
                } else {
                    (*v - lo) / span
                };
            }
        }
    }

    /// Append one item: its scoring vector plus one group id per type
    /// attribute (in [`Dataset::type_attributes`] order). Returns the new
    /// item's id (`n − 1` after the insert) — existing ids are unchanged.
    ///
    /// # Errors
    /// On wrong scoring arity, non-finite values, wrong `groups` arity, or
    /// a group id outside an attribute's label set.
    pub fn insert_row(&mut self, scores: &[f64], groups: &[u32]) -> Result<u32, DatasetError> {
        if scores.len() != self.d {
            return Err(DatasetError::RaggedRow {
                row: self.n,
                expected: self.d,
                found: scores.len(),
            });
        }
        if let Some(attr) = scores.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFiniteValue { row: self.n, attr });
        }
        if groups.len() != self.types.len() {
            return Err(DatasetError::MalformedTypeAttribute(format!(
                "insert carries {} group ids for {} type attributes",
                groups.len(),
                self.types.len()
            )));
        }
        for (t, &g) in self.types.iter().zip(groups) {
            if g as usize >= t.labels.len() {
                return Err(DatasetError::MalformedTypeAttribute(t.name.clone()));
            }
        }
        for (col, &v) in self.cols.iter_mut().zip(scores) {
            col.push(v);
        }
        for (t, &g) in self.types.iter_mut().zip(groups) {
            t.values.push(g);
        }
        self.n += 1;
        Ok((self.n - 1) as u32)
    }

    /// Remove item `i`. Items above `i` shift down by one id (the dense
    /// `0..n` id space is an invariant every index relies on); type
    /// attributes stay aligned.
    ///
    /// # Errors
    /// If `i` is out of range, or the removal would empty the dataset
    /// (a [`Dataset`] is never empty).
    pub fn remove_row(&mut self, i: usize) -> Result<(), DatasetError> {
        if i >= self.n {
            return Err(DatasetError::UnknownAttribute(format!("item #{i}")));
        }
        if self.n == 1 {
            return Err(DatasetError::Empty);
        }
        for col in &mut self.cols {
            col.remove(i);
        }
        for t in &mut self.types {
            t.values.remove(i);
        }
        self.n -= 1;
        Ok(())
    }

    /// Replace item `i`'s scoring vector in place (id and group
    /// memberships unchanged).
    ///
    /// # Errors
    /// If `i` is out of range, the arity is wrong, or a value is
    /// non-finite.
    pub fn rescore_row(&mut self, i: usize, scores: &[f64]) -> Result<(), DatasetError> {
        if i >= self.n {
            return Err(DatasetError::UnknownAttribute(format!("item #{i}")));
        }
        if scores.len() != self.d {
            return Err(DatasetError::RaggedRow {
                row: i,
                expected: self.d,
                found: scores.len(),
            });
        }
        if let Some(attr) = scores.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFiniteValue { row: i, attr });
        }
        for (col, &v) in self.cols.iter_mut().zip(scores) {
            col.as_mut_slice()[i] = v;
        }
        Ok(())
    }

    /// Whether item `i` dominates item `j` (≥ everywhere, > somewhere).
    ///
    /// # Panics
    /// If either index is out of range.
    #[must_use]
    pub fn dominates(&self, i: usize, j: usize) -> bool {
        let mut strict = false;
        for col in &self.cols {
            let (x, y) = (col.as_slice()[i], col.as_slice()[j]);
            if x < y {
                return false;
            }
            if x > y {
                strict = true;
            }
        }
        strict
    }

    /// All unordered pairs `(i, j)`, `i < j`, where neither item dominates
    /// the other — exactly the pairs with an ordering exchange
    /// (paper Algorithm 1 line 4 / Algorithm 4 line 4).
    #[must_use]
    pub fn non_dominating_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in i + 1..self.n {
                if !self.dominates(i, j) && !self.dominates(j, i) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    /// A new dataset restricted to the first `attrs` scoring attributes by
    /// index, keeping all type attributes. Used to run experiments at
    /// varying `d` over the same items (paper §6.3–6.4).
    ///
    /// # Errors
    /// If any index is out of range or `attrs` is empty.
    pub fn project(&self, attrs: &[usize]) -> Result<Dataset, DatasetError> {
        if attrs.is_empty() {
            return Err(DatasetError::Empty);
        }
        for &a in attrs {
            if a >= self.d {
                return Err(DatasetError::UnknownAttribute(format!("#{a}")));
            }
        }
        // Columnar projection is a column clone — no per-row gather.
        let cols: Vec<AlignedCol> = attrs.iter().map(|&a| self.cols[a].clone()).collect();
        Ok(Dataset {
            attr_names: attrs.iter().map(|&a| self.attr_names[a].clone()).collect(),
            n: self.n,
            d: attrs.len(),
            cols,
            types: self.types.clone(),
        })
    }

    /// Uniform sample without replacement of `m` items (`m` clamped to
    /// `n`), keeping type attributes aligned. The paper's §5.4 large-scale
    /// preprocessing runs on such samples.
    #[must_use]
    pub fn sample<R: rand::Rng>(&self, m: usize, rng: &mut R) -> Dataset {
        use rand::seq::SliceRandom;
        let m = m.min(self.n);
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.shuffle(rng);
        idx.truncate(m);
        idx.sort_unstable(); // stable item order for reproducibility
        self.subset(&idx)
    }

    /// The dataset restricted to the given item indices (in the given
    /// order).
    ///
    /// # Panics
    /// If any index is out of range.
    #[must_use]
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let cols: Vec<AlignedCol> = self
            .cols
            .iter()
            .map(|c| {
                let src = c.as_slice();
                idx.iter().map(|&i| src[i]).collect()
            })
            .collect();
        let types = self
            .types
            .iter()
            .map(|t| TypeAttribute {
                name: t.name.clone(),
                labels: t.labels.clone(),
                values: idx.iter().map(|&i| t.values[i]).collect(),
            })
            .collect();
        Dataset {
            attr_names: self.attr_names.clone(),
            n: idx.len(),
            d: self.d,
            cols,
            types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        // The paper's Figure 3 dataset.
        Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[
                vec![1.0, 3.5],
                vec![1.5, 3.1],
                vec![1.91, 2.3],
                vec![2.3, 1.8],
                vec![3.2, 0.9],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validations() {
        assert_eq!(
            Dataset::from_rows(vec!["a".into()], &[]).unwrap_err(),
            DatasetError::Empty
        );
        assert!(matches!(
            Dataset::from_rows(vec!["a".into(), "b".into()], &[vec![1.0]]).unwrap_err(),
            DatasetError::RaggedRow { .. }
        ));
        assert!(matches!(
            Dataset::from_rows(vec!["a".into()], &[vec![f64::NAN]]).unwrap_err(),
            DatasetError::NonFiniteValue { .. }
        ));
    }

    #[test]
    fn scoring_and_ranking() {
        let ds = toy();
        // Under f = x + y all five items: t1=4.5, t2=4.6, t3=4.21, t4≈4.1, t5≈4.1.
        let r = ds.rank(&[1.0, 1.0]);
        assert_eq!(r[0], 1);
        assert_eq!(r[1], 0);
        assert_eq!(r[2], 2);
        // t4 and t5 tie at 4.1 up to floating-point rounding; both orders
        // of the last two positions are total-order consistent.
        let tail: std::collections::HashSet<u32> = r[3..].iter().copied().collect();
        assert_eq!(tail, [3u32, 4u32].into_iter().collect());
    }

    #[test]
    fn exact_ties_break_by_id() {
        let ds = Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[vec![1.0, 2.0], vec![2.0, 1.0], vec![1.5, 1.5]],
        )
        .unwrap();
        // All three score exactly 3.0 under f = x + y (binary-exact values).
        assert_eq!(ds.rank(&[1.0, 1.0]), vec![0, 1, 2]);
    }

    #[test]
    fn rank_on_axis_functions() {
        let ds = toy();
        let rx = ds.rank(&[1.0, 0.0]);
        assert_eq!(rx[0], 4, "t5 has the largest x");
        let ry = ds.rank(&[0.0, 1.0]);
        assert_eq!(ry[0], 0, "t1 has the largest y");
    }

    #[test]
    fn top_k_clamps() {
        let ds = toy();
        assert_eq!(ds.top_k(&[1.0, 0.0], 2).len(), 2);
        assert_eq!(ds.top_k(&[1.0, 0.0], 99).len(), 5);
    }

    #[test]
    fn type_attribute_roundtrip() {
        let mut ds = toy();
        ds.add_type_attribute(
            "color",
            vec!["blue".into(), "orange".into()],
            vec![0, 1, 0, 1, 0],
        )
        .unwrap();
        let t = ds.type_attribute("color").unwrap();
        assert_eq!(t.group_count(), 2);
        assert_eq!(t.group_sizes(), vec![3, 2]);
        let props = t.group_proportions();
        assert!((props[0] - 0.6).abs() < 1e-12);
        assert!(ds.type_attribute("nope").is_none());
    }

    #[test]
    fn type_attribute_validation() {
        let mut ds = toy();
        assert!(ds
            .add_type_attribute("bad", vec!["a".into()], vec![0, 0])
            .is_err());
        assert!(ds
            .add_type_attribute("bad2", vec!["a".into()], vec![0, 0, 0, 0, 1])
            .is_err());
    }

    #[test]
    fn normalization_range_and_inversion() {
        let mut ds = Dataset::from_rows(
            vec!["v".into(), "age".into()],
            &[vec![10.0, 20.0], vec![30.0, 60.0], vec![20.0, 40.0]],
        )
        .unwrap();
        ds.normalize_min_max(&[1]);
        // v: min-max normalized ascending; age inverted (youngest → 1).
        assert_eq!(ds.row(0), &[0.0, 1.0]);
        assert_eq!(ds.row(1), &[1.0, 0.0]);
        assert_eq!(ds.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn normalization_constant_column() {
        let mut ds = Dataset::from_rows(vec!["c".into()], &[vec![5.0], vec![5.0]]).unwrap();
        ds.normalize_min_max(&[]);
        assert_eq!(ds.row(0), &[0.0]);
    }

    #[test]
    fn dominance_and_pairs() {
        let ds = toy();
        // In Figure 3 no item dominates another (x ascending, y descending).
        assert_eq!(ds.non_dominating_pairs().len(), 10);
        let ds2 = Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[vec![2.0, 2.0], vec![1.0, 1.0], vec![0.5, 3.0]],
        )
        .unwrap();
        assert!(ds2.dominates(0, 1));
        // Pairs without dominance: (0,2), (1,2).
        assert_eq!(ds2.non_dominating_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn projection_selects_attributes() {
        let ds = toy();
        let p = ds.project(&[1]).unwrap();
        assert_eq!(p.dim(), 1);
        assert_eq!(p.row(0), &[3.5]);
        assert_eq!(p.attr_names(), &["y".to_string()]);
        assert!(ds.project(&[]).is_err());
        assert!(ds.project(&[7]).is_err());
    }

    #[test]
    fn sampling_preserves_types_alignment() {
        let mut ds = toy();
        ds.add_type_attribute(
            "color",
            vec!["blue".into(), "orange".into()],
            vec![0, 1, 0, 1, 0],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let s = ds.sample(3, &mut rng);
        assert_eq!(s.len(), 3);
        let t = s.type_attribute("color").unwrap();
        assert_eq!(t.values.len(), 3);
        // Every sampled row matches an original row with the same group.
        for i in 0..3 {
            let row = s.row(i);
            let found = (0..ds.len()).any(|j| {
                ds.row(j) == row && ds.type_attribute("color").unwrap().values[j] == t.values[i]
            });
            assert!(found, "sampled row {row:?} not aligned");
        }
    }

    #[test]
    fn insert_remove_rescore_rows() {
        let mut ds = toy();
        ds.add_type_attribute(
            "color",
            vec!["blue".into(), "orange".into()],
            vec![0, 1, 0, 1, 0],
        )
        .unwrap();
        let id = ds.insert_row(&[2.0, 2.0], &[1]).unwrap();
        assert_eq!(id, 5);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.row(5), &[2.0, 2.0]);
        assert_eq!(ds.type_attribute("color").unwrap().values[5], 1);

        ds.rescore_row(5, &[0.5, 0.5]).unwrap();
        assert_eq!(ds.row(5), &[0.5, 0.5]);

        // Remove in the middle: ids above shift down, groups stay aligned.
        let before_item3 = ds.row(3).to_vec();
        let before_group3 = ds.type_attribute("color").unwrap().values[3];
        ds.remove_row(2).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.row(2), before_item3.as_slice());
        assert_eq!(ds.type_attribute("color").unwrap().values[2], before_group3);
    }

    #[test]
    fn row_mutation_validation() {
        let mut ds = toy();
        ds.add_type_attribute("c", vec!["a".into()], vec![0; 5])
            .unwrap();
        assert!(matches!(
            ds.insert_row(&[1.0], &[0]),
            Err(DatasetError::RaggedRow { .. })
        ));
        assert!(matches!(
            ds.insert_row(&[1.0, f64::NAN], &[0]),
            Err(DatasetError::NonFiniteValue { .. })
        ));
        assert!(ds.insert_row(&[1.0, 1.0], &[]).is_err());
        assert!(ds.insert_row(&[1.0, 1.0], &[7]).is_err());
        assert!(ds.remove_row(99).is_err());
        assert!(ds.rescore_row(99, &[1.0, 1.0]).is_err());
        assert!(ds.rescore_row(0, &[1.0]).is_err());
        assert!(ds.rescore_row(0, &[f64::INFINITY, 1.0]).is_err());
        // Cannot empty the dataset.
        let mut single =
            Dataset::from_rows(vec!["x".into(), "y".into()], &[vec![1.0, 1.0]]).unwrap();
        assert_eq!(single.remove_row(0), Err(DatasetError::Empty));
    }

    #[test]
    fn sample_larger_than_n_is_full() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ds.sample(100, &mut rng).len(), 5);
    }
}
