//! DOT-like synthetic flight on-time dataset.
//!
//! Stands in for the US Department of Transportation on-time database the
//! paper uses for its large-scale sampling experiment (§5.4/§6.4):
//! 1,322,024 records of flights by 14 US carriers in Q1 2016. The paper's
//! experiment ranks flights on `departure_delay`, `arrival_delay` and
//! `taxi_in` and constrains the share of each of the four major carriers
//! (DL, AA, WN, UA) in the top 10%.
//!
//! The generator reproduces the structural features that experiment
//! depends on: market-share-weighted carrier assignment, heavy-tailed
//! delay distributions, per-carrier punctuality offsets (so carrier shares
//! at the top of the ranking genuinely deviate from base rates), and
//! scale (any `n` up to and beyond 1.3M).
//!
//! Delays and taxi times are *inverted* during normalization: lower delay
//! means better on-time performance, and the ranking model prefers larger
//! scores.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::distributions::{categorical, exponential, normal};

/// The 14 carriers with (synthetic, roughly 2016-shaped) market shares and
/// punctuality offsets in minutes (negative = typically earlier).
///
/// The four constrained majors (WN, DL, AA, UA) get *mild* offsets: the
/// paper's §6.4 validation succeeded for 100% of sampled functions, which
/// requires the majors' top-10% shares to stay within a few points of
/// their base rates across most of the weight space. Smaller carriers keep
/// strong offsets so carrier composition at the top still genuinely
/// deviates from base rates (the property the experiment measures).
pub const CARRIERS: [(&str, f64, f64); 14] = [
    ("WN", 0.205, -0.5),
    ("DL", 0.17, -0.8),
    ("AA", 0.155, 0.5),
    ("UA", 0.105, 0.8),
    ("OO", 0.08, 2.0),
    ("EV", 0.06, 4.0),
    ("B6", 0.05, 5.0),
    ("AS", 0.04, -5.0),
    ("MQ", 0.04, 2.5),
    ("US", 0.03, 0.0),
    ("NK", 0.03, 6.0),
    ("F9", 0.025, 4.5),
    ("HA", 0.02, -6.0),
    ("VX", 0.015, -1.0),
];

/// Scoring attribute names (paper §6.4).
pub const ATTR_NAMES: [&str; 3] = ["departure_delay", "arrival_delay", "taxi_in"];

/// Configuration for the DOT-like generator.
#[derive(Debug, Clone)]
pub struct DotConfig {
    /// Number of flight records (paper: 1,322,024).
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Min–max normalize with all three attributes inverted (lower raw
    /// delay ⇒ higher score).
    pub normalized: bool,
}

impl Default for DotConfig {
    fn default() -> Self {
        DotConfig {
            n: 1_322_024,
            seed: 0xD07,
            normalized: true,
        }
    }
}

/// Generate the dataset.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn generate(cfg: &DotConfig) -> Dataset {
    assert!(cfg.n > 0, "need at least one flight");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let shares: Vec<f64> = CARRIERS.iter().map(|c| c.1).collect();

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(cfg.n);
    let mut airline = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let c = categorical(&mut rng, &shares);
        let offset = CARRIERS[c].2;
        // Departure delay: mostly near schedule, exponential late tail.
        let mut dep = offset + normal(&mut rng, 0.0, 9.0);
        if rng.gen::<f64>() < 0.22 {
            dep += exponential(&mut rng, 1.0 / 35.0);
        }
        let dep = dep.clamp(-25.0, 600.0);
        // Arrival delay correlates with departure, some recovery in air.
        let arr = (dep + normal(&mut rng, -2.0, 8.0)).clamp(-40.0, 650.0);
        // Taxi-in time: short with a mild tail.
        let taxi = (4.0 + exponential(&mut rng, 1.0 / 4.0)).min(60.0);
        rows.push(vec![dep, arr, taxi]);
        airline.push(c as u32);
    }

    let mut ds = Dataset::from_rows(ATTR_NAMES.iter().map(|s| (*s).to_string()).collect(), &rows)
        .expect("generated rows are well-formed");
    ds.add_type_attribute(
        "airline_name",
        CARRIERS.iter().map(|c| c.0.to_string()).collect(),
        airline,
    )
    .expect("aligned");
    if cfg.normalized {
        ds.normalize_min_max(&[0, 1, 2]);
    }
    ds
}

/// Group ids of the four major carriers the paper constrains (DL, AA, WN,
/// UA), as indices into the `airline_name` labels.
#[must_use]
pub fn major_carrier_groups() -> Vec<u32> {
    ["DL", "AA", "WN", "UA"]
        .iter()
        .map(|name| {
            CARRIERS
                .iter()
                .position(|c| c.0 == *name)
                .expect("major carrier present") as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_scale() {
        let ds = generate(&DotConfig {
            n: 5000,
            ..DotConfig::default()
        });
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.len(), 5000);
        assert_eq!(ds.type_attribute("airline_name").unwrap().group_count(), 14);
    }

    #[test]
    fn market_shares_respected() {
        let ds = generate(&DotConfig {
            n: 60_000,
            ..DotConfig::default()
        });
        let props = ds
            .type_attribute("airline_name")
            .unwrap()
            .group_proportions();
        for (i, (name, share, _)) in CARRIERS.iter().enumerate() {
            assert!(
                (props[i] - share).abs() < 0.01,
                "{name}: {} vs {share}",
                props[i]
            );
        }
    }

    #[test]
    fn normalization_inverts_delays() {
        let norm = generate(&DotConfig {
            n: 10_000,
            ..DotConfig::default()
        });
        let raw = generate(&DotConfig {
            n: 10_000,
            normalized: false,
            ..DotConfig::default()
        });
        // The most-delayed raw departure gets the lowest normalized score.
        let worst = (0..raw.len())
            .max_by(|&a, &b| raw.value(a, 0).total_cmp(&raw.value(b, 0)))
            .unwrap();
        let min_norm = (0..norm.len())
            .map(|i| norm.value(i, 0))
            .fold(f64::INFINITY, f64::min);
        assert!((norm.value(worst, 0) - min_norm).abs() < 1e-12);
    }

    #[test]
    fn punctual_carriers_overrepresented_at_top() {
        // The structural property §6.4 depends on: carrier composition in
        // the top 10% differs from base shares.
        let ds = generate(&DotConfig {
            n: 50_000,
            ..DotConfig::default()
        });
        let airline = ds.type_attribute("airline_name").unwrap();
        let w = vec![1.0, 1.0, 1.0];
        let k = ds.len() / 10;
        let top = ds.top_k(&w, k);
        let hawaiian = CARRIERS.iter().position(|c| c.0 == "HA").unwrap() as u32;
        let base = airline.group_proportions()[hawaiian as usize];
        let top_share = top
            .iter()
            .filter(|&&i| airline.values[i as usize] == hawaiian)
            .count() as f64
            / k as f64;
        assert!(
            top_share > base * 1.3,
            "punctual HA should be over-represented: top {top_share} vs base {base}"
        );
    }

    #[test]
    fn major_carriers_resolve() {
        let groups = major_carrier_groups();
        assert_eq!(groups.len(), 4);
        let names: Vec<&str> = groups.iter().map(|&g| CARRIERS[g as usize].0).collect();
        assert_eq!(names, vec!["DL", "AA", "WN", "UA"]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&DotConfig {
            n: 1000,
            ..DotConfig::default()
        });
        let b = generate(&DotConfig {
            n: 1000,
            ..DotConfig::default()
        });
        assert_eq!(a, b);
    }
}
