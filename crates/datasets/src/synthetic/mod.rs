//! Calibrated synthetic data sources standing in for the paper's real
//! datasets (DESIGN.md D1/D2), plus generic stress-test generators.

pub mod compas;
pub mod dot;
pub mod generic;
