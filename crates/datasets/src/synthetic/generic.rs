//! Generic synthetic workloads: uniform, correlated and anti-correlated
//! attribute distributions — the standard stress tests of the top-k /
//! skyline literature, used here for property tests and scaling
//! experiments where a named dataset is not required.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::distributions::clamped_normal;

/// i.i.d. `U[0,1]^d` attributes with a binary `group` attribute whose
/// membership probability is tilted by the first attribute:
/// `P(group = 0) = 0.5 + group_bias · (t[0] − 0.5)`.
///
/// With `group_bias = 0` groups are independent of scores (every fairness
/// constraint is easy); with `group_bias → 1` group 0 concentrates at the
/// top of attribute-0 rankings.
///
/// # Panics
/// If `n == 0` or `d == 0`.
#[must_use]
pub fn uniform(n: usize, d: usize, group_bias: f64, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    with_group(rows, group_bias, &mut rng)
}

/// Correlated attributes via a latent quality factor:
/// `t[j] = clamp(ρ·z + (1−ρ)·u_j)` with `z, u_j ~ U[0,1]`.
///
/// # Panics
/// If `n == 0` or `d == 0`.
#[must_use]
pub fn correlated(n: usize, d: usize, rho: f64, group_bias: f64, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0);
    let rho = rho.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let z = rng.gen::<f64>();
            (0..d)
                .map(|_| (rho * z + (1.0 - rho) * rng.gen::<f64>()).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    with_group(rows, group_bias, &mut rng)
}

/// Anti-correlated attributes concentrated near the simplex
/// `Σ t[j] ≈ d/2` — maximizes the number of non-dominating pairs and hence
/// ordering exchanges (the hard case for arrangement construction).
///
/// # Panics
/// If `n == 0` or `d == 0`.
#[must_use]
pub fn anticorrelated(n: usize, d: usize, group_bias: f64, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            // Dirichlet-ish: exponential weights normalized, then jitter.
            let mut parts: Vec<f64> = (0..d)
                .map(|_| -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln())
                .collect();
            let total: f64 = parts.iter().sum();
            for p in &mut parts {
                *p = (*p / total * d as f64 / 2.0 + clamped_normal(&mut rng, 0.0, 0.05, -0.2, 0.2))
                    .clamp(0.0, 1.0);
            }
            parts
        })
        .collect();
    with_group(rows, group_bias, &mut rng)
}

fn with_group(rows: Vec<Vec<f64>>, group_bias: f64, rng: &mut StdRng) -> Dataset {
    let d = rows[0].len();
    let group: Vec<u32> = rows
        .iter()
        .map(|r| {
            let p0 = (0.5 + group_bias.clamp(-1.0, 1.0) * (r[0] - 0.5)).clamp(0.0, 1.0);
            u32::from(rng.gen::<f64>() >= p0)
        })
        .collect();
    let mut ds = Dataset::from_rows((0..d).map(|j| format!("a{j}")).collect(), &rows)
        .expect("generated rows are well-formed");
    ds.add_type_attribute("group", vec!["g0".into(), "g1".into()], group)
        .expect("aligned");
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_range() {
        let ds = uniform(500, 3, 0.0, 1);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 3);
        for i in 0..ds.len() {
            assert!(ds.row(i).iter().all(|v| (0.0..=1.0).contains(v)));
        }
        assert!(ds.type_attribute("group").is_some());
    }

    #[test]
    fn group_bias_controls_correlation() {
        let biased = uniform(20_000, 2, 0.9, 2);
        let g = biased.type_attribute("group").unwrap();
        // Group 0 should dominate the top of attribute-0 rankings.
        let top = biased.top_k(&[1.0, 0.0], 2000);
        let share0 = top.iter().filter(|&&i| g.values[i as usize] == 0).count() as f64 / 2000.0;
        assert!(share0 > 0.75, "top share {share0}");

        let unbiased = uniform(20_000, 2, 0.0, 3);
        let g = unbiased.type_attribute("group").unwrap();
        let top = unbiased.top_k(&[1.0, 0.0], 2000);
        let share0 = top.iter().filter(|&&i| g.values[i as usize] == 0).count() as f64 / 2000.0;
        assert!((share0 - 0.5).abs() < 0.06, "top share {share0}");
    }

    #[test]
    fn correlated_reduces_nondominating_pairs() {
        let corr = correlated(200, 3, 0.9, 0.0, 4);
        let anti = anticorrelated(200, 3, 0.0, 4);
        let pc = corr.non_dominating_pairs().len();
        let pa = anti.non_dominating_pairs().len();
        assert!(
            pc < pa,
            "correlated data should dominate more: {pc} vs {pa}"
        );
    }

    #[test]
    fn anticorrelated_mostly_incomparable() {
        let ds = anticorrelated(150, 2, 0.0, 5);
        let pairs = ds.non_dominating_pairs().len();
        let total = 150 * 149 / 2;
        assert!(
            pairs * 2 > total,
            "anti-correlated data should be mostly incomparable: {pairs}/{total}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform(100, 2, 0.3, 9), uniform(100, 2, 0.3, 9));
        assert_ne!(uniform(100, 2, 0.3, 9), uniform(100, 2, 0.3, 10));
    }
}
