//! COMPAS-like synthetic recidivism dataset.
//!
//! The paper's default dataset is ProPublica's COMPAS collection: 6,889
//! individuals with demographics, recidivism scores and offense history.
//! This generator reproduces the published schema and marginals:
//!
//! * scoring attributes (paper §6.1, in the paper's order):
//!   `c_days_from_compas`, `juv_other_count`, `days_b_screening_arrest`,
//!   `start`, `end`, `age`, `priors_count`;
//! * type attributes: `sex` (≈80% male), `race` (≈50% African-American,
//!   ≈34% Caucasian, ≈16% other), `age_binary` (≈60% aged ≤35),
//!   `age_bucketized` (≈42% / 34% / 24%);
//! * a tunable `bias` coupling protected groups to scoring attributes —
//!   the structural property the paper's experiments measure (with zero
//!   coupling every fairness constraint is trivially satisfiable; with
//!   strong coupling satisfactory regions shrink and fragment).
//!
//! Attribute values are min–max normalized to `[0, 1]` with `age`
//! *inverted* (the paper: "For all attributes except age, a higher value
//! corresponded to a higher score").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::distributions::{categorical, clamped_normal, exponential, poisson};

/// Index of the `age` scoring attribute (inverted during normalization).
pub const AGE_ATTR: usize = 5;

/// The scoring-attribute names, in the paper's order.
pub const ATTR_NAMES: [&str; 7] = [
    "c_days_from_compas",
    "juv_other_count",
    "days_b_screening_arrest",
    "start",
    "end",
    "age",
    "priors_count",
];

/// Configuration for the COMPAS-like generator.
#[derive(Debug, Clone)]
pub struct CompasConfig {
    /// Number of individuals (paper: 6,889).
    pub n: usize,
    /// Strength of the coupling between protected groups and scoring
    /// attributes in `[0, 1]`. `0.35` reproduces the paper's validation
    /// behaviour (roughly half of random d=3 queries violate the default
    /// FM1 constraint).
    pub bias: f64,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Min–max normalize (with `age` inverted) before returning.
    pub normalized: bool,
}

impl Default for CompasConfig {
    fn default() -> Self {
        CompasConfig {
            n: 6889,
            bias: 0.35,
            seed: 0xC0345,
            normalized: true,
        }
    }
}

/// Generate the dataset.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn generate(cfg: &CompasConfig) -> Dataset {
    assert!(cfg.n > 0, "need at least one individual");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let bias = cfg.bias.clamp(0.0, 1.0);

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(cfg.n);
    let mut sex = Vec::with_capacity(cfg.n);
    let mut race = Vec::with_capacity(cfg.n);
    let mut age_binary = Vec::with_capacity(cfg.n);
    let mut age_bucket = Vec::with_capacity(cfg.n);

    for _ in 0..cfg.n {
        // Demographics with the published marginals.
        let r = categorical(&mut rng, &[0.50, 0.34, 0.16]) as u32; // AA/Cauc/Other
        let s = categorical(&mut rng, &[0.80, 0.20]) as u32; // male/female
        let age: f64 = match categorical(&mut rng, &[0.42, 0.34, 0.24]) {
            0 => rng.gen_range(18.0..=30.0),
            1 => rng.gen_range(31.0..=40.0),
            _ => rng.gen_range(41.0..=70.0),
        };
        let aa = f64::from(r == 0);
        let male = f64::from(s == 0);
        let youth = ((50.0 - age) / 32.0).clamp(0.0, 1.0);

        // Offense-history attributes with group-dependent shifts — the
        // synthetic stand-in for the historical bias embodied in COMPAS.
        // The couplings are deliberately *differentiated* across
        // attributes (c_days strongly AA-positive, juv_other youth- and
        // AA-positive, start mildly AA-negative, days_b_screening
        // neutral): the paper's validation experiments hinge on the
        // fairness level-set slicing *through* the space of scoring
        // functions, which requires attributes whose race correlations
        // differ in sign and strength — exactly what the real COMPAS
        // columns have. Calibrated so the paper's default FM1 model
        // (≤60% AA in the top 30%) rejects roughly half of random d=3
        // queries at any n — the paper's Figure 16 setting (52/100 fair).
        let priors = poisson(&mut rng, 0.8 + 2.2 * youth + 2.2 * bias * aa + 0.3 * male) as f64;
        let juv_other = poisson(&mut rng, 0.6 + 0.5 * youth * (1.0 + 0.8 * bias * aa)) as f64;
        let days_b_screening = clamped_normal(&mut rng, 0.0, 5.0, -30.0, 30.0);
        let start = (rng.gen_range(0.0..1000.0) - 300.0 * bias * aa).max(0.0);
        let end = (start + exponential(&mut rng, 1.0 / 300.0)).min(1200.0);
        let c_days = (exponential(&mut rng, 1.0 / 180.0) + 800.0 * bias * aa).min(4000.0);

        rows.push(vec![
            c_days,
            juv_other,
            days_b_screening,
            start,
            end,
            age,
            priors,
        ]);
        sex.push(s);
        race.push(r);
        age_binary.push(u32::from(age > 35.0));
        age_bucket.push(if age <= 30.0 {
            0
        } else if age <= 40.0 {
            1
        } else {
            2
        });
    }

    let mut ds = Dataset::from_rows(ATTR_NAMES.iter().map(|s| (*s).to_string()).collect(), &rows)
        .expect("generated rows are well-formed");
    ds.add_type_attribute("sex", vec!["male".into(), "female".into()], sex)
        .expect("aligned");
    ds.add_type_attribute(
        "race",
        vec![
            "African-American".into(),
            "Caucasian".into(),
            "Other".into(),
        ],
        race,
    )
    .expect("aligned");
    ds.add_type_attribute("age_binary", vec!["<=35".into(), ">35".into()], age_binary)
        .expect("aligned");
    ds.add_type_attribute(
        "age_bucketized",
        vec!["<=30".into(), "31-40".into(), ">40".into()],
        age_bucket,
    )
    .expect("aligned");

    if cfg.normalized {
        ds.normalize_min_max(&[AGE_ATTR]);
    }
    ds
}

/// The paper's default d=3 projection for the validation experiments:
/// `start`, `c_days_from_compas`, `juv_other_count` (§6.2).
#[must_use]
pub fn validation_projection() -> Vec<usize> {
    vec![3, 0, 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let ds = generate(&CompasConfig {
            n: 500,
            ..CompasConfig::default()
        });
        assert_eq!(ds.dim(), 7);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.attr_names()[0], "c_days_from_compas");
        assert_eq!(ds.attr_names()[AGE_ATTR], "age");
        for name in ["sex", "race", "age_binary", "age_bucketized"] {
            assert!(ds.type_attribute(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn marginals_close_to_published() {
        let ds = generate(&CompasConfig {
            n: 20_000,
            ..CompasConfig::default()
        });
        let race = ds.type_attribute("race").unwrap().group_proportions();
        assert!((race[0] - 0.50).abs() < 0.02, "AA share {}", race[0]);
        let sex = ds.type_attribute("sex").unwrap().group_proportions();
        assert!((sex[0] - 0.80).abs() < 0.02, "male share {}", sex[0]);
        let ab = ds.type_attribute("age_binary").unwrap().group_proportions();
        assert!((ab[0] - 0.59).abs() < 0.03, "young share {}", ab[0]);
        let buckets = ds
            .type_attribute("age_bucketized")
            .unwrap()
            .group_proportions();
        assert!((buckets[0] - 0.42).abs() < 0.02);
        assert!((buckets[1] - 0.34).abs() < 0.02);
    }

    #[test]
    fn normalized_range_and_age_inversion() {
        let ds = generate(&CompasConfig {
            n: 2000,
            ..CompasConfig::default()
        });
        for i in 0..ds.len() {
            for v in ds.row(i) {
                assert!((0.0..=1.0).contains(&v), "value {v} out of range");
            }
        }
        // Age inversion: find youngest raw individual — must have the
        // *highest* normalized age score. Regenerate unnormalized to check.
        let raw = generate(&CompasConfig {
            n: 2000,
            normalized: false,
            ..CompasConfig::default()
        });
        let youngest = (0..raw.len())
            .min_by(|&a, &b| raw.value(a, AGE_ATTR).total_cmp(&raw.value(b, AGE_ATTR)))
            .unwrap();
        let max_norm_age = (0..ds.len())
            .map(|i| ds.value(i, AGE_ATTR))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((ds.value(youngest, AGE_ATTR) - max_norm_age).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&CompasConfig {
            n: 100,
            ..CompasConfig::default()
        });
        let b = generate(&CompasConfig {
            n: 100,
            ..CompasConfig::default()
        });
        assert_eq!(a, b);
        let c = generate(&CompasConfig {
            n: 100,
            seed: 999,
            ..CompasConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn bias_skews_topk_composition() {
        // The couplings are differentiated by design: ranking by c_days
        // over-represents African-Americans in the top 30%, ranking by
        // start under-represents them, and with zero bias neither does.
        let k_share = |ds: &Dataset, w: &[f64]| {
            let race = ds.type_attribute("race").unwrap();
            let k = ds.len() * 3 / 10;
            let top = ds.top_k(w, k);
            let aa = top
                .iter()
                .filter(|&&i| race.values[i as usize] == 0)
                .count();
            aa as f64 / k as f64 - race.group_proportions()[0]
        };
        let biased = generate(&CompasConfig {
            n: 4000,
            bias: 0.9,
            ..CompasConfig::default()
        });
        // c_days = attr 0 (positive coupling), start = attr 3 (negative).
        let mut w_cdays = vec![0.0; biased.dim()];
        w_cdays[0] = 1.0;
        let mut w_start = vec![0.0; biased.dim()];
        w_start[3] = 1.0;
        assert!(
            k_share(&biased, &w_cdays) > 0.05,
            "c_days ranking should over-represent AA: {}",
            k_share(&biased, &w_cdays)
        );
        assert!(
            k_share(&biased, &w_start) < -0.05,
            "start ranking should under-represent AA: {}",
            k_share(&biased, &w_start)
        );

        let unbiased = generate(&CompasConfig {
            n: 4000,
            bias: 0.0,
            ..CompasConfig::default()
        });
        for w in [&w_cdays, &w_start] {
            assert!(
                k_share(&unbiased, w).abs() < 0.05,
                "zero bias must not skew: {}",
                k_share(&unbiased, w)
            );
        }
    }

    #[test]
    fn validation_projection_names() {
        let ds = generate(&CompasConfig {
            n: 50,
            ..CompasConfig::default()
        });
        let p = ds.project(&validation_projection()).unwrap();
        assert_eq!(
            p.attr_names(),
            &[
                "start".to_string(),
                "c_days_from_compas".to_string(),
                "juv_other_count".to_string()
            ]
        );
    }
}
