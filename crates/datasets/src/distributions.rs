//! Small sampling kernels on top of `rand`'s uniform source.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! handful of shaped distributions the synthetic generators need (normal,
//! exponential, Poisson, categorical) are implemented here directly.

use rand::Rng;

/// Standard normal via the Box–Muller transform.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    // Avoid u1 = 0 (log of zero).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Exponential with the given rate `λ` (mean `1/λ`).
///
/// # Panics
/// If `rate <= 0`.
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Poisson by inversion (suitable for the small means used by the
/// generators; falls back to a normal approximation for large means).
///
/// # Panics
/// If `mean < 0`.
pub fn poisson<R: Rng>(rng: &mut R, mean: f64) -> u32 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        return normal(rng, mean, mean.sqrt()).round().max(0.0) as u32;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // defensive: numerically impossible in practice
        }
    }
}

/// Draw a category index proportional to `weights` (need not sum to 1).
///
/// # Panics
/// If `weights` is empty or all weights are zero/negative.
pub fn categorical<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().filter(|w| w.is_sign_positive()).sum();
    assert!(total > 0.0, "categorical needs positive total weight");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Truncate-and-clamp helper: clamps a sample into `[lo, hi]`.
pub fn clamped_normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(43);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.08, "mean {mean}");
        assert!(exponential(&mut rng, 10.0) >= 0.0);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 20_000;
        let m1 = (0..n).map(|_| poisson(&mut rng, 2.5) as f64).sum::<f64>() / n as f64;
        assert!((m1 - 2.5).abs() < 0.08, "small-mean {m1}");
        let m2 = (0..n).map(|_| poisson(&mut rng, 50.0) as f64).sum::<f64>() / n as f64;
        assert!((m2 - 50.0).abs() < 0.4, "large-mean {m2}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn categorical_proportions() {
        let mut rng = StdRng::seed_from_u64(45);
        let weights = [0.5, 0.3, 0.2];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            let p = *c as f64 / n as f64;
            assert!((p - w).abs() < 0.02, "p {p} vs w {w}");
        }
    }

    #[test]
    fn categorical_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..100 {
            let i = categorical(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn clamped_normal_range() {
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..1000 {
            let v = clamped_normal(&mut rng, 0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
