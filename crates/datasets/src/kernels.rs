//! Chunked auto-vectorizing kernels over the columnar [`Dataset`].
//!
//! Every hot path of the fair-ranking pipeline — oracle probe ranking,
//! 2-D sweep re-ranks, MARKCELL probes, approx-grid cell searches,
//! batch serving — bottoms out in the same primitive: the dense dot
//! product `f_w(t) = w · t` evaluated for *every* item. The row-major
//! layout scored one item per call (`Dataset::score`), a horizontal
//! reduction the compiler cannot vectorize across items. The columnar
//! layout stores one 64-byte-aligned buffer per attribute
//! ([`AlignedCol`]), so whole-dataset scoring becomes `d` streaming
//! multiply-accumulate passes over contiguous, cache-line-aligned
//! columns — a shape LLVM auto-vectorizes on stable Rust, no `std::simd`
//! required.
//!
//! Three primitives, designed to compose:
//!
//! * [`score_all_into`] — fill a caller buffer with every item's score
//!   under one weight vector (the multiply-accumulate sweep).
//! * [`side_test_batch`] — classify every entry of a scored column
//!   against a threshold: which side of the scoring hyperplane
//!   `w · x = b` each item lies on (`total_cmp` semantics, so signed
//!   zeros and ties are exact).
//! * [`top_k_select_into`] — the ranking selection consuming the scored
//!   column: full sort, or `select_nth_unstable` + prefix sort when the
//!   oracle provably inspects only the top-`k`.
//!
//! # Bit-identity contract
//!
//! [`score_all_into`] accumulates column `j` into every item's partial
//! sum in ascending `j` order, starting from `0.0` — *exactly* the
//! operation sequence of the scalar `Dataset::score` fold
//! (`((0 + w₀t₀) + w₁t₁) + …`). No `mul_add` / FMA contraction is used,
//! so the vectorized result is bit-identical to the scalar reference on
//! every input, not merely close. The `scalar-kernels` cargo feature
//! swaps the blocked sweep for a per-item `Dataset::score` loop (the CI
//! fallback leg); both paths are proven bit-identical in
//! `tests/columnar_equivalence.rs`.

use std::cmp::Ordering;
use std::fmt;

use crate::dataset::Dataset;

/// Values per [`Lane`]: 8 × `f64` = one 64-byte cache line.
const LANE: usize = 8;

/// One cache line of column data. `repr(align(64))` makes every
/// `Vec<Lane>` allocation — and therefore every column — start on a
/// 64-byte boundary, the alignment AVX-512 loads and prefetchers like
/// best (in the spirit of trueno-viz's aligned SIMD framebuffer).
#[repr(C, align(64))]
#[derive(Debug, Clone, Copy, Default)]
struct Lane([f64; LANE]);

/// A growable `f64` buffer whose storage is 64-byte aligned — the
/// per-attribute column of the columnar [`Dataset`].
///
/// Backed by a `Vec<Lane>` of whole cache lines plus a logical length,
/// so the aligned allocation is managed entirely by safe `Vec` growth;
/// the only `unsafe` is the slice view over the contiguous lane array.
#[derive(Clone, Default)]
pub struct AlignedCol {
    lanes: Vec<Lane>,
    len: usize,
}

impl AlignedCol {
    /// An empty column with room for `n` values.
    #[must_use]
    pub fn with_capacity(n: usize) -> AlignedCol {
        AlignedCol {
            lanes: Vec::with_capacity(n.div_ceil(LANE)),
            len: 0,
        }
    }

    /// A column holding a copy of `values`.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> AlignedCol {
        let mut col = AlignedCol::with_capacity(values.len());
        for &v in values {
            col.push(v);
        }
        col
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column as a contiguous (64-byte-aligned) slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `Lane` is `repr(C)` over `[f64; LANE]`, so the lane
        // array is a contiguous run of `lanes.len() * LANE` f64s, and
        // `len <= lanes.len() * LANE` is an invariant of every mutator.
        unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<f64>(), self.len) }
    }

    /// The column as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as `as_slice`, plus exclusive access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// Append one value.
    pub fn push(&mut self, v: f64) {
        if self.len == self.lanes.len() * LANE {
            self.lanes.push(Lane::default());
        }
        self.lanes[self.len / LANE].0[self.len % LANE] = v;
        self.len += 1;
    }

    /// Remove and return the value at `i`, shifting everything above it
    /// down by one.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn remove(&mut self, i: usize) -> f64 {
        let v = self.as_slice()[i];
        self.as_mut_slice().copy_within(i + 1.., i);
        self.len -= 1;
        let needed = self.len.div_ceil(LANE);
        self.lanes.truncate(needed);
        v
    }
}

impl PartialEq for AlignedCol {
    fn eq(&self, other: &AlignedCol) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for AlignedCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<f64> for AlignedCol {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> AlignedCol {
        let mut col = AlignedCol::default();
        for v in iter {
            col.push(v);
        }
        col
    }
}

/// Values per accumulation tile of [`score_all_into`]: the output block
/// plus one column block stay resident in L1/L2 while the `d` column
/// passes stream over them.
const BLOCK: usize = 4096;

/// Score every item under `w` into `out` (cleared and refilled to
/// `ds.len()` entries): `out[i] = Σ_j w[j] · column_j[i]`.
///
/// The blocked multiply-accumulate sweep over the aligned columns; the
/// inner loop is a pure element-wise `out += w_j * col` stream the
/// compiler vectorizes. Results are bit-identical to calling
/// [`Dataset::score`] per item (see the module docs for why), which is
/// what lets every ranking path adopt this kernel without perturbing a
/// single verdict, certificate, or persisted artifact.
///
/// # Panics
/// If `w.len() != ds.dim()`.
pub fn score_all_into(ds: &Dataset, w: &[f64], out: &mut Vec<f64>) {
    assert_eq!(w.len(), ds.dim(), "weight arity mismatch");
    out.clear();
    out.resize(ds.len(), 0.0);
    fill_scores(ds, w, out);
}

/// The vectorized columnar sweep (default build).
#[cfg(not(feature = "scalar-kernels"))]
fn fill_scores(ds: &Dataset, w: &[f64], out: &mut [f64]) {
    let n = out.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + BLOCK).min(n);
        let chunk = &mut out[start..end];
        for (j, &wj) in w.iter().enumerate() {
            let col = &ds.column(j)[start..end];
            for (o, &x) in chunk.iter_mut().zip(col) {
                *o += wj * x;
            }
        }
        start = end;
    }
}

/// The scalar fallback (`--features scalar-kernels`): one
/// [`Dataset::score`] call per item, the pre-refactor shape. Kept as a
/// CI matrix leg so the reference semantics stay compiled and green.
#[cfg(feature = "scalar-kernels")]
fn fill_scores(ds: &Dataset, w: &[f64], out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = ds.score(w, i);
    }
}

/// Classify every entry of a scored column against `threshold`:
/// `1` above, `-1` below, `0` exactly equal — `f64::total_cmp`
/// semantics, so the signs agree exactly with the ranking comparator
/// (signed zeros included, and NaN cannot arise from finite data and
/// finite weights).
///
/// This is the hyperplane side test in score space: with
/// `scores = score_all_into(ds, w, …)` and `threshold = b`, entry `i`
/// reports which side of `w · x = b` item `i` lies on. The 2-D sweep's
/// `rank_steps` certificate path consumes it to place one item's rank
/// against the whole scored column.
pub fn side_test_batch(scores: &[f64], threshold: f64, out: &mut Vec<i8>) {
    out.clear();
    out.extend(scores.iter().map(|s| match s.total_cmp(&threshold) {
        Ordering::Greater => 1i8,
        Ordering::Equal => 0,
        Ordering::Less => -1,
    }));
}

/// Rank item ids by a scored column into `out` (cleared and refilled):
/// descending score via `total_cmp`, ties broken by ascending id — the
/// canonical ranking comparator of the whole system.
///
/// With `bound = Some(k)`, `0 < k < n`, only the first `k` positions are
/// guaranteed sorted (placed with `select_nth_unstable` in `O(n)`, then
/// a `O(k log k)` prefix sort); they are exactly the first `k` of the
/// full sort because the comparator is a total order. The tail holds the
/// remaining ids in unspecified order — still a permutation.
pub fn top_k_select_into(scores: &[f64], bound: Option<usize>, out: &mut Vec<u32>) {
    let n = scores.len();
    out.clear();
    out.extend(0..n as u32);
    let cmp = |a: &u32, b: &u32| {
        scores[*b as usize]
            .total_cmp(&scores[*a as usize])
            .then(a.cmp(b))
    };
    match bound {
        // k = 0 would mean "the oracle inspects nothing"; rank fully so
        // the output stays identical to the full sort.
        Some(k) if k > 0 && k < n => {
            out.select_nth_unstable_by(k - 1, cmp);
            out[..k].sort_unstable_by(cmp);
        }
        _ => out.sort_unstable_by(cmp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize, d: usize, seed: u64) -> Dataset {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 8.0).round() / 8.0
        };
        let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
        Dataset::from_rows((0..d).map(|j| format!("a{j}")).collect(), &rows).unwrap()
    }

    #[test]
    fn columns_are_64_byte_aligned() {
        let ds = ds(100, 4, 1);
        for j in 0..ds.dim() {
            assert_eq!(ds.column(j).as_ptr() as usize % 64, 0, "column {j}");
        }
        // Alignment survives growth.
        let mut col = AlignedCol::default();
        for i in 0..1000 {
            col.push(i as f64);
        }
        assert_eq!(col.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn aligned_col_push_remove() {
        let mut col = AlignedCol::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(col.len(), 4);
        assert_eq!(col.remove(1), 2.0);
        assert_eq!(col.as_slice(), &[1.0, 3.0, 4.0]);
        col.push(9.0);
        assert_eq!(col.as_slice(), &[1.0, 3.0, 4.0, 9.0]);
        // Across lane boundaries.
        let mut long: AlignedCol = (0..20).map(f64::from).collect();
        assert_eq!(long.remove(0), 0.0);
        assert_eq!(long.len(), 19);
        assert_eq!(long.as_slice()[18], 19.0);
        let eq: AlignedCol = (1..20).map(f64::from).collect();
        assert_eq!(long, eq);
    }

    #[test]
    fn score_all_bit_identical_to_scalar() {
        for (n, d, seed) in [(1, 1, 1), (7, 2, 2), (100, 3, 3), (5000, 7, 4)] {
            let ds = ds(n, d, seed);
            let w: Vec<f64> = (0..d).map(|j| 0.1 + j as f64 * 0.37).collect();
            let mut out = Vec::new();
            score_all_into(&ds, &w, &mut out);
            assert_eq!(out.len(), n);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(
                    o.to_bits(),
                    ds.score(&w, i).to_bits(),
                    "item {i} of n={n} d={d}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight arity mismatch")]
    fn score_all_arity_mismatch_panics() {
        let ds = ds(4, 2, 9);
        score_all_into(&ds, &[1.0], &mut Vec::new());
    }

    #[test]
    fn side_test_signs() {
        let scores = [1.0, 0.5, 0.5, 0.25, -0.0, 0.0];
        let mut out = Vec::new();
        side_test_batch(&scores, 0.5, &mut out);
        assert_eq!(out, vec![1, 0, 0, -1, -1, -1]);
        // total_cmp distinguishes signed zeros, exactly like the ranking
        // comparator does.
        side_test_batch(&scores, 0.0, &mut out);
        assert_eq!(out, vec![1, 1, 1, 1, -1, 0]);
    }

    #[test]
    fn top_k_select_matches_full_sort_prefix() {
        let ds = ds(60, 2, 5);
        let w = [0.6, 0.4];
        let mut scores = Vec::new();
        score_all_into(&ds, &w, &mut scores);
        let mut full = Vec::new();
        top_k_select_into(&scores, None, &mut full);
        assert_eq!(full, ds.rank(&w));
        for k in [0usize, 1, 7, 59, 60, 100] {
            let mut part = Vec::new();
            top_k_select_into(&scores, Some(k), &mut part);
            let k_eff = if k == 0 { 60 } else { k.min(60) };
            assert_eq!(&part[..k_eff], &full[..k_eff], "k={k}");
            let mut sorted = part.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..60).collect::<Vec<u32>>());
        }
    }
}
