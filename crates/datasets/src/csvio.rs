//! Minimal self-contained CSV codec for [`Dataset`] round-trips.
//!
//! Supports the subset of RFC 4180 the fairrank tooling needs: a header
//! row, comma separation, double-quote escaping with `""` doubling, and
//! both `\n` and `\r\n` line endings. Scoring columns parse as `f64`;
//! designated type columns are interned into categorical group ids in
//! order of first appearance.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::dataset::{Dataset, DatasetError};

/// Errors reading a CSV into a [`Dataset`].
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the CSV text.
    Parse(String),
    /// The parsed data failed dataset validation.
    Dataset(DatasetError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(m) => write!(f, "csv parse error: {m}"),
            CsvError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<DatasetError> for CsvError {
    fn from(e: DatasetError) -> Self {
        CsvError::Dataset(e)
    }
}

/// Split one CSV record respecting quotes. Returns the fields.
fn split_record(line: &str) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) => {
                if cur.is_empty() {
                    in_quotes = true;
                } else {
                    return Err(CsvError::Parse(format!("stray quote in {line:?}")));
                }
            }
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => {
                fields.push(std::mem::take(&mut cur));
            }
            (c, _) => cur.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::Parse(format!("unterminated quote in {line:?}")));
    }
    fields.push(cur);
    Ok(fields)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV text into a [`Dataset`].
///
/// `scoring_cols` name the numeric columns (in the order they become
/// scoring attributes); `type_cols` name the categorical columns.
///
/// # Errors
/// On malformed CSV, missing columns, non-numeric scoring values or
/// dataset validation failure.
pub fn parse_csv(
    text: &str,
    scoring_cols: &[&str],
    type_cols: &[&str],
) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Parse("empty file".into()))?;
    let header = split_record(header)?;
    let find = |name: &str| -> Result<usize, CsvError> {
        header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| CsvError::Parse(format!("missing column {name:?}")))
    };
    let score_idx: Vec<usize> = scoring_cols
        .iter()
        .map(|c| find(c))
        .collect::<Result<_, _>>()?;
    let type_idx: Vec<usize> = type_cols
        .iter()
        .map(|c| find(c))
        .collect::<Result<_, _>>()?;

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut type_raw: Vec<Vec<String>> = vec![Vec::new(); type_idx.len()];
    for (lineno, line) in lines.enumerate() {
        let fields = split_record(line)?;
        if fields.len() != header.len() {
            return Err(CsvError::Parse(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                header.len()
            )));
        }
        let row: Vec<f64> = score_idx
            .iter()
            .map(|&i| {
                fields[i].trim().parse::<f64>().map_err(|_| {
                    CsvError::Parse(format!(
                        "row {}: non-numeric value {:?} in scoring column",
                        lineno + 2,
                        fields[i]
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        rows.push(row);
        for (t, &i) in type_raw.iter_mut().zip(&type_idx) {
            t.push(fields[i].clone());
        }
    }

    let mut ds = Dataset::from_rows(
        scoring_cols.iter().map(|s| (*s).to_string()).collect(),
        &rows,
    )?;
    for (name, raw) in type_cols.iter().zip(type_raw) {
        // Intern labels in order of first appearance.
        let mut labels: Vec<String> = Vec::new();
        let values: Vec<u32> = raw
            .iter()
            .map(|v| {
                if let Some(pos) = labels.iter().position(|l| l == v) {
                    pos as u32
                } else {
                    labels.push(v.clone());
                    (labels.len() - 1) as u32
                }
            })
            .collect();
        ds.add_type_attribute(*name, labels, values)?;
    }
    Ok(ds)
}

/// Read a CSV file into a [`Dataset`]; see [`parse_csv`].
///
/// # Errors
/// Propagates I/O and parse failures.
pub fn read_csv(
    path: &Path,
    scoring_cols: &[&str],
    type_cols: &[&str],
) -> Result<Dataset, CsvError> {
    let text = fs::read_to_string(path)?;
    parse_csv(&text, scoring_cols, type_cols)
}

/// Serialize a [`Dataset`] (scoring + type attributes) to CSV text.
#[must_use]
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    let mut header: Vec<String> = ds.attr_names().to_vec();
    for t in ds.type_attributes() {
        header.push(t.name.clone());
    }
    out.push_str(
        &header
            .iter()
            .map(|h| quote_field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for i in 0..ds.len() {
        let mut fields: Vec<String> = ds.row(i).iter().map(|v| format!("{v}")).collect();
        for t in ds.type_attributes() {
            fields.push(quote_field(&t.labels[t.values[i] as usize]));
        }
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Write a [`Dataset`] to a CSV file; see [`to_csv`].
///
/// # Errors
/// On I/O failure.
pub fn write_csv(ds: &Dataset, path: &Path) -> Result<(), CsvError> {
    fs::write(path, to_csv(ds))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::from_rows(
            vec!["gpa".into(), "sat".into()],
            &[vec![3.5, 1200.0], vec![3.9, 1400.0], vec![2.8, 1000.0]],
        )
        .unwrap();
        ds.add_type_attribute("gender", vec!["f".into(), "m".into()], vec![0, 1, 0])
            .unwrap();
        ds
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let text = to_csv(&ds);
        let back = parse_csv(&text, &["gpa", "sat"], &["gender"]).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.row(1), [3.9, 1400.0]);
        let g = back.type_attribute("gender").unwrap();
        assert_eq!(g.labels, vec!["f".to_string(), "m".to_string()]);
        assert_eq!(g.values, vec![0, 1, 0]);
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let path = std::env::temp_dir().join("fairrank_csv_test.csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path, &["gpa", "sat"], &["gender"]).unwrap();
        assert_eq!(back.len(), ds.len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn quoted_fields() {
        let text = "name,score\n\"Smith, Jane\",1.5\n\"He said \"\"hi\"\"\",2.0\n";
        let ds = parse_csv(text, &["score"], &["name"]).unwrap();
        let t = ds.type_attribute("name").unwrap();
        assert_eq!(t.labels[0], "Smith, Jane");
        assert_eq!(t.labels[1], "He said \"hi\"");
    }

    #[test]
    fn column_subset_and_order() {
        let text = "a,b,c\n1,2,x\n3,4,y\n";
        let ds = parse_csv(text, &["b", "a"], &["c"]).unwrap();
        assert_eq!(ds.attr_names(), &["b".to_string(), "a".to_string()]);
        assert_eq!(ds.row(0), [2.0, 1.0]);
    }

    #[test]
    fn error_on_missing_column() {
        let text = "a,b\n1,2\n";
        assert!(matches!(
            parse_csv(text, &["z"], &[]),
            Err(CsvError::Parse(_))
        ));
    }

    #[test]
    fn error_on_bad_number() {
        let text = "a\nfoo\n";
        assert!(matches!(
            parse_csv(text, &["a"], &[]),
            Err(CsvError::Parse(_))
        ));
    }

    #[test]
    fn error_on_ragged_row() {
        let text = "a,b\n1\n";
        assert!(matches!(
            parse_csv(text, &["a"], &[]),
            Err(CsvError::Parse(_))
        ));
    }

    #[test]
    fn error_on_unterminated_quote() {
        let text = "a\n\"oops\n";
        assert!(parse_csv(text, &["a"], &[]).is_err());
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_csv("", &["a"], &[]),
            Err(CsvError::Parse(_))
        ));
    }
}
