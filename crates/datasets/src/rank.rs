//! Reusable ranking workspace: probe-loop ranking without per-call heap
//! allocation, with partial top-k ranking for prefix-bounded oracles.
//!
//! [`Dataset::rank`](crate::Dataset::rank) allocates two fresh vectors
//! (scores + order) per call. The offline phases of the fair-ranking
//! pipeline call it once per oracle probe — at the paper's configuration
//! (N = 40,000 cells over COMPAS' 6,889 items) that is tens of thousands
//! of `O(n log n)` re-sorts with two allocations each, the single hottest
//! loop of the system. [`RankWorkspace`] amortizes both costs:
//!
//! * **Buffer reuse** — scores and order live in the workspace (or in a
//!   caller-owned buffer via [`RankWorkspace::rank_into`]) and are
//!   recycled across probes; the steady state performs zero allocations.
//! * **Partial ranking** — when the oracle provably inspects only the
//!   top-`k` prefix ([`top_k_bound`]), the workspace places the exact
//!   top-`k` with `select_nth_unstable` in `O(n)` and sorts only that
//!   prefix (`O(n + k log k)` instead of `O(n log n)`). The remaining
//!   items are present but unordered — still a permutation, and the
//!   verdict of any prefix-bounded oracle is identical by contract.
//!
//! The comparator is *exactly* the one [`Dataset::rank`] uses (descending
//! score via `total_cmp`, ties broken by ascending item id), so the
//! ranked prefix is bit-identical to the full sort's prefix — verified by
//! the property suite.
//!
//! [`top_k_bound`]: https://docs.rs/fairrank-fairness (FairnessOracle::top_k_bound)

use crate::dataset::Dataset;
use crate::kernels;

/// Reusable buffers for repeated rankings of one (or more) datasets.
///
/// Create once per worker/thread and feed it to every probe. The
/// workspace adapts to whatever dataset it is handed; reuse across
/// datasets of different sizes is fine (buffers grow, never shrink).
#[derive(Debug, Default, Clone)]
pub struct RankWorkspace {
    scores: Vec<f64>,
    order: Vec<u32>,
}

impl RankWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> RankWorkspace {
        RankWorkspace::default()
    }

    /// A workspace pre-sized for datasets of `n` items.
    #[must_use]
    pub fn with_capacity(n: usize) -> RankWorkspace {
        RankWorkspace {
            scores: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
        }
    }

    /// Rank all items of `ds` by descending score under `w` into the
    /// workspace's own buffer — identical output to [`Dataset::rank`],
    /// but allocation-free after the first call.
    ///
    /// # Panics
    /// If `w.len() != ds.dim()`.
    pub fn rank(&mut self, ds: &Dataset, w: &[f64]) -> &[u32] {
        self.rank_with_bound(ds, w, None)
    }

    /// Like [`RankWorkspace::rank`], but when `bound = Some(k)` with
    /// `0 < k < n` only the first `k` positions of the returned
    /// permutation are guaranteed sorted (and are exactly the first `k`
    /// of the full ranking); the tail holds the remaining item ids in
    /// unspecified order. Pass an oracle's `top_k_bound()` here.
    ///
    /// # Panics
    /// If `w.len() != ds.dim()`.
    pub fn rank_with_bound(&mut self, ds: &Dataset, w: &[f64], bound: Option<usize>) -> &[u32] {
        let mut order = std::mem::take(&mut self.order);
        self.rank_into(ds, w, bound, &mut order);
        self.order = order;
        &self.order
    }

    /// Rank into a caller-owned buffer (cleared and refilled), so callers
    /// that keep rankings alive across probes — batch pipelines, the 2-D
    /// sweep's persistent ranking — reuse their own allocation too.
    ///
    /// # Panics
    /// If `w.len() != ds.dim()`.
    pub fn rank_into(&mut self, ds: &Dataset, w: &[f64], bound: Option<usize>, out: &mut Vec<u32>) {
        // The columnar scoring kernel fills the reused score buffer in
        // one vectorized multiply-accumulate sweep (bit-identical to
        // per-item `Dataset::score` — tests/columnar_equivalence.rs),
        // then the select kernel ranks by it. Both buffers are reused;
        // the steady state performs zero allocations.
        kernels::score_all_into(ds, w, &mut self.scores);
        kernels::top_k_select_into(&self.scores, bound, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize, d: usize, seed: u64) -> Dataset {
        // Small deterministic LCG-backed dataset; ties included on purpose.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 8.0).round() / 8.0
        };
        let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
        Dataset::from_rows((0..d).map(|j| format!("a{j}")).collect(), &rows).unwrap()
    }

    #[test]
    fn full_rank_matches_dataset_rank() {
        let ds = ds(60, 3, 7);
        let mut ws = RankWorkspace::new();
        for w in [[1.0, 0.5, 0.25], [0.0, 1.0, 0.0], [0.3, 0.3, 0.3]] {
            assert_eq!(ws.rank(&ds, &w), ds.rank(&w).as_slice());
        }
    }

    #[test]
    fn partial_rank_prefix_matches_full_sort() {
        let ds = ds(80, 2, 13);
        let mut ws = RankWorkspace::new();
        let w = [0.7, 0.3];
        let full = ds.rank(&w);
        for k in [1usize, 2, 5, 17, 79, 80, 500] {
            let partial = ws.rank_with_bound(&ds, &w, Some(k)).to_vec();
            let k_eff = k.min(80);
            assert_eq!(&partial[..k_eff], &full[..k_eff], "prefix differs at k={k}");
            // Still a permutation.
            let mut sorted = partial.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..80).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn zero_bound_falls_back_to_full() {
        let ds = ds(20, 2, 3);
        let mut ws = RankWorkspace::new();
        assert_eq!(
            ws.rank_with_bound(&ds, &[1.0, 1.0], Some(0)),
            ds.rank(&[1.0, 1.0]).as_slice()
        );
    }

    #[test]
    fn rank_into_reuses_caller_buffer() {
        let ds = ds(30, 2, 5);
        let mut ws = RankWorkspace::new();
        let mut buf: Vec<u32> = Vec::new();
        ws.rank_into(&ds, &[1.0, 0.2], None, &mut buf);
        assert_eq!(buf, ds.rank(&[1.0, 0.2]));
        let cap = buf.capacity();
        ws.rank_into(&ds, &[0.2, 1.0], None, &mut buf);
        assert_eq!(buf, ds.rank(&[0.2, 1.0]));
        assert_eq!(buf.capacity(), cap, "steady-state must not reallocate");
    }

    #[test]
    fn workspace_adapts_across_dataset_sizes() {
        let small = ds(10, 2, 1);
        let large = ds(50, 2, 2);
        let mut ws = RankWorkspace::with_capacity(10);
        assert_eq!(
            ws.rank(&small, &[1.0, 1.0]),
            small.rank(&[1.0, 1.0]).as_slice()
        );
        assert_eq!(
            ws.rank(&large, &[1.0, 1.0]),
            large.rank(&[1.0, 1.0]).as_slice()
        );
        assert_eq!(
            ws.rank(&small, &[0.5, 1.0]),
            small.rank(&[0.5, 1.0]).as_slice()
        );
    }

    #[test]
    #[should_panic(expected = "weight arity mismatch")]
    fn arity_mismatch_panics() {
        let ds = ds(5, 2, 9);
        RankWorkspace::new().rank(&ds, &[1.0, 1.0, 1.0]);
    }
}
