//! Sampling for large-scale settings (paper §5.4).
//!
//! Preprocessing cost grows with `n²` hyperplanes, but a uniform sample
//! preserves the distributional structure that decides which scoring
//! functions are satisfactory. For datasets with millions of items the
//! paper builds the index on a small uniform sample (1,000 rows of the
//! 1.3M-row DOT data) and validates that the assigned functions remain
//! satisfactory on the full data — which §6.4 reports succeeding for
//! 100% of cells.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;

use crate::approximate::{ApproxIndex, BuildOptions};
use crate::error::FairRankError;

/// Outcome of validating a sampled index against the full dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Distinct functions the index assigned.
    pub functions_checked: usize,
    /// How many remained satisfactory on the full dataset.
    pub satisfactory: usize,
}

impl ValidationReport {
    /// Fraction of assigned functions that hold on the full data.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.functions_checked == 0 {
            return 1.0;
        }
        self.satisfactory as f64 / self.functions_checked as f64
    }
}

/// Build an approximate index from a uniform sample of `ds`.
///
/// `make_oracle` constructs the fairness oracle *for the sample* — group
/// proportions and top-k sizes must be restated relative to the sample
/// (e.g. "top 10%" of 1,000 rows is 100).
///
/// Returns the index together with the sample it was built on.
///
/// # Errors
/// Propagates [`ApproxIndex::build`] errors.
pub fn build_on_sample<F>(
    ds: &Dataset,
    sample_size: usize,
    seed: u64,
    make_oracle: F,
    opts: &BuildOptions,
) -> Result<(ApproxIndex, Dataset), FairRankError>
where
    F: FnOnce(&Dataset) -> Box<dyn FairnessOracle>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = ds.sample(sample_size, &mut rng);
    let oracle = make_oracle(&sample);
    let index = ApproxIndex::build(&sample, oracle.as_ref(), opts)?;
    Ok((index, sample))
}

/// Re-check every distinct function of a (sampled) index against the full
/// dataset and its full-data oracle — the paper's §6.4 validation.
///
/// Runs through the batched probe pipeline: at DOT scale (1.32M rows)
/// every serial probe is a full `O(n log n)` re-sort with fresh
/// allocations, while the batched path reuses one workspace and ranks
/// only the oracle's top-k prefix.
#[must_use]
pub fn validate_against(
    index: &ApproxIndex,
    full: &Dataset,
    full_oracle: &dyn FairnessOracle,
) -> ValidationReport {
    let verdicts = crate::probes::batch_verdicts(full, full_oracle, index.functions());
    ValidationReport {
        functions_checked: index.functions().len(),
        satisfactory: verdicts.iter().filter(|&&v| v).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::Proportionality;

    #[test]
    fn sampled_build_validates_on_full_data() {
        // 5,000 items; index built on a 600-item sample, mirroring the
        // paper's §6.4 setup (1,000-row sample of 1.3M, constraint with
        // slack over the base proportion). A share estimate over the top
        // 10% of a 600-row sample has σ ≈ 0.06, so the 0.70 cap (base
        // share ≈ 0.5, top share ≈ 0.62 under balanced weights) leaves
        // enough margin for sampled verdicts to transfer.
        let ds = generic::uniform(5000, 3, 0.6, 77);
        let full_attr = ds.type_attribute("group").unwrap();
        let full_oracle = Proportionality::new(full_attr, 500).with_max_share(0, 0.70);

        let (index, sample) = build_on_sample(
            &ds,
            600,
            123,
            |s| {
                let attr = s.type_attribute("group").unwrap();
                Box::new(Proportionality::new(attr, 60).with_max_share(0, 0.70))
            },
            &BuildOptions {
                n_cells: 150,
                max_hyperplanes: Some(400),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sample.len(), 600);
        assert!(index.is_satisfiable());

        let report = validate_against(&index, &ds, &full_oracle);
        assert!(report.functions_checked > 0);
        assert!(
            report.success_rate() >= 0.9,
            "sampled functions should transfer: {:?}",
            report
        );
    }

    #[test]
    fn empty_report_rate_is_one() {
        let r = ValidationReport {
            functions_checked: 0,
            satisfactory: 0,
        };
        assert_eq!(r.success_rate(), 1.0);
    }

    #[test]
    fn sample_determinism() {
        let ds = generic::uniform(500, 2, 0.3, 3);
        let (a, sa) = build_on_sample(
            &ds,
            50,
            9,
            |s| {
                let attr = s.type_attribute("group").unwrap();
                Box::new(Proportionality::new(attr, 10).with_max_count(0, 6))
            },
            &BuildOptions {
                n_cells: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let (b, sb) = build_on_sample(
            &ds,
            50,
            9,
            |s| {
                let attr = s.type_attribute("group").unwrap();
                Box::new(Proportionality::new(attr, 10).with_max_count(0, 6))
            },
            &BuildOptions {
                n_cells: 60,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.functions(), b.functions());
    }
}
