//! # fairrank
//!
//! A query-answering system that helps users design **fair score-based
//! ranking schemes** — a from-scratch Rust implementation of
//!
//! > Abolfazl Asudeh, H. V. Jagadish, Julia Stoyanovich, Gautam Das.
//! > *Designing Fair Ranking Schemes.* SIGMOD 2019.
//!
//! ## The problem
//!
//! Items are ranked by a linear scoring function
//! `f_w(t) = Σ w_j · t[j]`, `w ≥ 0`. A black-box fairness oracle accepts
//! or rejects the induced ranking. Given a user's proposed weight vector,
//! the system answers the **closest satisfactory function** query: the
//! weight vector, minimal in *angular distance* from the query, whose
//! ranking the oracle accepts.
//!
//! ## Offline / online split
//!
//! Indexing happens offline; queries answer in interactive time:
//!
//! | dims | offline | online | paper |
//! |---|---|---|---|
//! | d = 2 | [`twod::ray_sweep`] (2DRAYSWEEP) | [`twod::online_2d`] (2DONLINE), `O(log n)` | §3 |
//! | d ≥ 3, exact | [`md::sat_regions`] (SATREGIONS + AT⁺) | [`md::closest_satisfactory`] (MDBASELINE) | §4 |
//! | d ≥ 3, approximate | [`approximate::ApproxIndex::build`] (CELLPLANE× + MARKCELL/ATC⁺ + CELLCOLORING) | [`approximate::ApproxIndex::lookup`] (MDONLINE), `O(log N)` with the Theorem 6 distance guarantee | §5 |
//!
//! [`FairRanker`] wraps all three behind one builder API over the
//! pluggable [`backend::IndexBackend`] trait ([`backend::Strategy::Auto`]
//! picks the algorithm per the table above); [`sampling`] scales
//! preprocessing to millions of items by indexing a uniform sample
//! (paper §5.4); [`pruning`] implements the §8 convex/dominance-layer
//! top-k reduction; [`persist`] round-trips individual artifacts *and*
//! whole rankers ([`FairRanker::save`]/[`FairRanker::load`]) through
//! storage for the offline→online hand-off.
//!
//! ## Quick example
//!
//! ```
//! use fairrank::{FairRanker, KnownFairness, SuggestRequest};
//! use fairrank_datasets::synthetic::generic;
//! use fairrank_fairness::Proportionality;
//!
//! // 60 items, two attributes; group 0 concentrates at the top of
//! // attribute-0 rankings.
//! let ds = generic::uniform(60, 2, 0.9, 42);
//! // Fair ⇔ at most half of the top-10 belong to group 0.
//! let oracle = Proportionality::new(ds.type_attribute("group").unwrap(), 10)
//!     .with_max_count(0, 5);
//! // Strategy::Auto (the default) picks 2DRAYSWEEP for d = 2.
//! let ranker = FairRanker::builder(ds, Box::new(oracle)).build().unwrap();
//! let answer = ranker.respond(&SuggestRequest::new([1.0, 0.1])).unwrap();
//! match answer.fairness {
//!     KnownFairness::AlreadyFair => println!("keep your weights"),
//!     KnownFairness::Suggested { distance } => {
//!         println!("try {:?} ({distance:.3} rad away)", answer.weights)
//!     }
//!     KnownFairness::Infeasible => println!("no fair linear ranking exists"),
//! }
//! ```
//!
//! For async serving — individual requests coalesced into micro-batches
//! by a worker pool, with backpressure and live updates — see the
//! `fairrank-serve` crate's `FairRankService`.

pub mod approximate;
pub mod backend;
pub(crate) mod buildtel;
pub mod error;
pub mod md;
pub mod parallel;
pub mod persist;
pub mod probes;
pub mod pruning;
pub mod ranker;
pub mod request;
pub mod sampling;
pub mod twod;
pub mod update;

pub use backend::{
    Answer, BackendStats, IndexBackend, QueryCtx, RegionKey, SharedCounters, Strategy,
};
pub use error::FairRankError;
pub use ranker::{FairRanker, FairRankerBuilder};
pub use request::{KnownFairness, SuggestOptions, SuggestRequest, SuggestStats, Suggestion};
pub use update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

// Re-export the companion crates so downstream users need one dependency.
pub use fairrank_datasets as datasets;
pub use fairrank_fairness as fairness;
pub use fairrank_geometry as geometry;
pub use fairrank_lp as lp;
