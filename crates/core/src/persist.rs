//! Binary persistence for offline index artifacts and whole rankers.
//!
//! The paper's system splits work into an offline preprocessing phase and
//! an interactive online phase; in a deployment those phases run in
//! different processes (or machines), so the index must survive a
//! round-trip through storage. This module provides a small, versioned,
//! checksummed binary codec for the three backend artifacts:
//!
//! * [`ApproxIndex`] — the §5 grid index (MDONLINE's input). The grid
//!   itself is *not* serialized: construction is deterministic in
//!   `(d, scheme, n_cells)`, so the codec stores those parameters and
//!   rebuilds, then cross-checks `γ` and the cell count against the saved
//!   values to detect algorithm drift between writer and reader versions.
//! * [`AngularIntervals`] — the 2-D satisfactory-interval index
//!   (2DONLINE's input).
//! * [`SatRegion`] lists — the §4 exact arrangement regions
//!   (MDBASELINE's input): constraints plus validated witnesses.
//!
//! On top of the per-artifact codecs sits the **whole-ranker envelope**
//! ([`encode_ranker`] / [`decode_ranker`], used by
//! [`FairRanker::save`](crate::FairRanker::save) /
//! [`load`](crate::FairRanker::load)): dataset dimensionality, the
//! backend's [`persist_tag`](crate::backend::IndexBackend::persist_tag),
//! and the backend's own sealed artifact, all inside one outer checksum —
//! so a flipped bit anywhere in the envelope (header, tag, or embedded
//! payload) is caught end-to-end. [`decode_backend`] dispatches a tag
//! back to the matching concrete decoder, which is what lets
//! `FairRanker::load` reassemble a backend without the caller naming its
//! type.
//!
//! Format: magic `FRIX`, format version, artifact tag, payload,
//! FNV-1a-64 checksum over everything before it. All integers are
//! little-endian; floats are IEEE-754 bit patterns. Decoders never
//! panic on malformed input (fuzz-style property-tested in
//! `tests/ranker_persistence.rs` and `tests/build_equivalence.rs`).
//!
//! Datasets and region lists additionally have a **version-3 chunked
//! transport** ([`encode_dataset_chunked`] / [`encode_regions_chunked`])
//! that wraps the sealed whole-buffer artifact in self-sealing frames so
//! [`decode_dataset_from`] / [`decode_regions_from`] can consume them
//! incrementally off a byte stream — verifying integrity chunk by chunk
//! instead of after buffering the whole artifact.

use bytes::{Buf, BufMut};

use fairrank_datasets::Dataset;
use fairrank_geometry::grid::{AngleGrid, PartitionScheme};
use fairrank_geometry::interval::AngularIntervals;
use fairrank_lp::{Constraint, Rel};

use crate::approximate::{ApproxGrid, ApproxIndex, BuildOptions, BuildStats};
use crate::backend::IndexBackend;
use crate::error::FairRankError;
use crate::md::{ExactRegions, SatRegion};
use crate::twod::TwoDIntervals;

const MAGIC: &[u8; 4] = b"FRIX";
const VERSION: u16 = 1;
/// Whole-ranker envelope format: version 2 appends the ranker's update
/// counter (`FairRanker::version`) to the version-1 layout. Version-1
/// envelopes remain decodable (their counter reads as 0); the embedded
/// per-artifact payloads are unchanged in both directions, so artifact
/// readers of either vintage still decode them.
const RANKER_VERSION: u16 = 2;
/// Artifact tag: [`ApproxIndex`] / [`ApproxGrid`].
pub const TAG_APPROX: u8 = 1;
/// Artifact tag: [`AngularIntervals`] / [`TwoDIntervals`].
pub const TAG_INTERVALS: u8 = 2;
/// Artifact tag: satisfactory-region lists / [`ExactRegions`].
pub const TAG_REGIONS: u8 = 3;
/// Envelope tag: a whole ranker (dim + backend tag + backend artifact).
pub const TAG_RANKER: u8 = 4;
/// Artifact tag: a whole [`Dataset`] (scoring columns + type attributes).
pub const TAG_DATASET: u8 = 5;
/// Artifact tag: a versioned [`DatasetUpdate`](crate::DatasetUpdate) log frame — the
/// replication wire format ([`encode_update_log`] / [`decode_update_log`]).
pub const TAG_UPDATE_LOG: u8 = 6;
/// Dataset payload format. Version 2 stores the scoring attributes
/// **column-major**, matching the in-memory columnar layout, so encoding
/// is a straight per-column copy and decoding fills each column
/// sequentially. Version-1 streams — row-major, the layout of the
/// pre-columnar `Dataset` — still decode ([`encode_dataset_row_major`]
/// writes one, which is also the bench suite's reference arm).
const DATASET_VERSION: u16 = 2;

/// Errors arising while decoding or writing a persisted index.
///
/// `#[non_exhaustive]`: future artifact kinds may add variants without
/// a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The artifact tag does not match the requested type.
    WrongArtifact {
        /// Tag found in the stream.
        found: u8,
        /// Tag the caller asked for.
        expected: u8,
    },
    /// The payload ended early or contains an invalid value.
    Truncated,
    /// Checksum mismatch: the bytes were corrupted.
    ChecksumMismatch,
    /// The deterministic grid rebuild disagrees with the saved parameters
    /// (the writer used a different partitioning algorithm version).
    GridDrift,
    /// A whole-ranker envelope names a backend tag this library has no
    /// decoder for.
    UnknownBackend(u8),
    /// Reading or writing the artifact file failed.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not a fairrank index (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported index format version {v}")
            }
            PersistError::WrongArtifact { found, expected } => {
                write!(f, "artifact tag {found} where {expected} was expected")
            }
            PersistError::Truncated => write!(f, "index payload truncated or invalid"),
            PersistError::ChecksumMismatch => write!(f, "index checksum mismatch"),
            PersistError::GridDrift => {
                write!(
                    f,
                    "grid rebuild mismatch: writer used a different partitioning"
                )
            }
            PersistError::UnknownBackend(tag) => {
                write!(f, "no decoder for backend tag {tag}")
            }
            PersistError::Io(msg) => write!(f, "artifact i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for FairRankError {
    fn from(e: PersistError) -> FairRankError {
        FairRankError::Persist(e)
    }
}

/// Incremental FNV-1a 64-bit state, for hashing data that arrives in
/// pieces (the streaming decoders hash as they read).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit — small, dependency-free integrity check (not crypto).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    out.put_u32_le(u32::try_from(v.len()).expect("vector fits u32"));
    for &x in v {
        out.put_f64_le(x);
    }
}

fn get_f64_vec(buf: &mut &[u8]) -> Result<Vec<f64>, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 8 {
        return Err(PersistError::Truncated);
    }
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

fn header_versioned(tag: u8, version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.put_slice(MAGIC);
    out.put_u16_le(version);
    out.put_u8(tag);
    out
}

fn header(tag: u8) -> Vec<u8> {
    header_versioned(tag, VERSION)
}

/// Parse the magic/version/tag preamble; returns the stream's format
/// version (≤ `max_version`).
fn check_header_versioned(
    buf: &mut &[u8],
    expected_tag: u8,
    max_version: u16,
) -> Result<u16, PersistError> {
    if buf.remaining() < 7 {
        return Err(PersistError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version > max_version {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let tag = buf.get_u8();
    if tag != expected_tag {
        return Err(PersistError::WrongArtifact {
            found: tag,
            expected: expected_tag,
        });
    }
    Ok(version)
}

fn check_header(buf: &mut &[u8], expected_tag: u8) -> Result<(), PersistError> {
    check_header_versioned(buf, expected_tag, VERSION).map(|_| ())
}

fn seal(mut payload: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&payload);
    payload.put_u64_le(sum);
    payload
}

fn unseal(bytes: &[u8]) -> Result<&[u8], PersistError> {
    if bytes.len() < 8 {
        return Err(PersistError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(body)
}

/// Chunked-transport format for [`TAG_DATASET`] / [`TAG_REGIONS`]: the
/// payload is the complete sealed whole-buffer artifact, carried as a
/// sequence of `[u32 len, bytes, u64 fnv1a(bytes)]` frames and closed
/// by a zero-length terminator frame, so a reader can both verify each
/// chunk as it arrives and find the end of the artifact without a length
/// prefix — the properties a streaming decode over a socket or file
/// handle needs. The outer trailing seal still covers the whole stream.
/// Version-1/2 whole-buffer layouts are unchanged.
const CHUNKED_VERSION: u16 = 3;
/// Default chunk granularity for the chunked encoders (1 MiB): large
/// enough that per-chunk overhead (12 bytes) vanishes, small enough that
/// a corrupted transfer is caught within a chunk of where it happened.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 20;
/// Upper bound a decoder accepts for a single chunk's length — a guard
/// against a corrupted or hostile length prefix forcing a giant
/// allocation before the checksum can catch it.
const MAX_CHUNK_LEN: usize = 1 << 26;

/// Wrap a sealed whole-buffer artifact in the version-3 chunked frame.
fn encode_chunked(tag: u8, inner: &[u8], chunk_len: usize) -> Vec<u8> {
    let chunk_len = chunk_len.clamp(1, MAX_CHUNK_LEN);
    let mut out = header_versioned(tag, CHUNKED_VERSION);
    out.reserve(inner.len() + 12 * (inner.len() / chunk_len + 2));
    for chunk in inner.chunks(chunk_len) {
        out.put_u32_le(u32::try_from(chunk.len()).expect("chunk fits u32"));
        out.put_slice(chunk);
        out.put_u64_le(fnv1a(chunk));
    }
    out.put_u32_le(0);
    seal(out)
}

/// Reassemble the inner artifact from an in-memory chunked body (the
/// whole-buffer acceptance path for version-3 streams; the header has
/// already been consumed from `buf`).
fn reassemble_chunks(buf: &mut &[u8]) -> Result<Vec<u8>, PersistError> {
    let mut inner = Vec::new();
    loop {
        if buf.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let len = buf.get_u32_le() as usize;
        if len == 0 {
            break;
        }
        if len > MAX_CHUNK_LEN || buf.remaining() < len + 8 {
            return Err(PersistError::Truncated);
        }
        let (chunk, rest) = buf.split_at(len);
        *buf = rest;
        let stored = buf.get_u64_le();
        if fnv1a(chunk) != stored {
            return Err(PersistError::ChecksumMismatch);
        }
        inner.extend_from_slice(chunk);
    }
    if buf.has_remaining() {
        return Err(PersistError::Truncated);
    }
    Ok(inner)
}

fn read_exact(r: &mut impl std::io::Read, buf: &mut [u8]) -> Result<(), PersistError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::Io(e.to_string())
        }
    })
}

/// Read one version-3 chunked artifact off a byte stream, verifying each
/// chunk seal as it arrives and the outer stream seal at the end, and
/// return the reassembled inner whole-buffer artifact. The frame is
/// self-delimiting, so the reader is left positioned exactly past the
/// artifact — back-to-back artifacts on one stream decode in sequence.
/// Only chunked (version-3) streams are accepted here: a whole-buffer
/// layout has no terminator, so a streaming reader could not find its
/// end without consuming the rest of the stream.
fn read_chunked(r: &mut impl std::io::Read, expected_tag: u8) -> Result<Vec<u8>, PersistError> {
    let mut hasher = Fnv::new();
    let mut head = [0u8; 7];
    read_exact(r, &mut head)?;
    hasher.update(&head);
    if &head[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != CHUNKED_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if head[6] != expected_tag {
        return Err(PersistError::WrongArtifact {
            found: head[6],
            expected: expected_tag,
        });
    }
    let mut inner = Vec::new();
    loop {
        let mut len4 = [0u8; 4];
        read_exact(r, &mut len4)?;
        hasher.update(&len4);
        let len = u32::from_le_bytes(len4) as usize;
        if len == 0 {
            break;
        }
        if len > MAX_CHUNK_LEN {
            return Err(PersistError::Truncated);
        }
        let start = inner.len();
        inner.resize(start + len, 0);
        read_exact(r, &mut inner[start..])?;
        hasher.update(&inner[start..]);
        let mut seal8 = [0u8; 8];
        read_exact(r, &mut seal8)?;
        hasher.update(&seal8);
        if fnv1a(&inner[start..]) != u64::from_le_bytes(seal8) {
            return Err(PersistError::ChecksumMismatch);
        }
    }
    let mut tail = [0u8; 8];
    read_exact(r, &mut tail)?;
    if hasher.finish() != u64::from_le_bytes(tail) {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(inner)
}

/// Serialize an [`ApproxIndex`] to bytes.
#[must_use]
pub fn encode_approx_index(index: &ApproxIndex) -> Vec<u8> {
    let mut out = header(TAG_APPROX);
    let grid = &index.grid;
    out.put_u32_le(u32::try_from(grid.dim() + 1).expect("small d"));
    out.put_u8(match grid.scheme() {
        PartitionScheme::EqualArea => 0,
        PartitionScheme::Uniform => 1,
    });
    out.put_u64_le(grid.target_cells() as u64);
    // Integrity cross-checks for the deterministic rebuild.
    out.put_f64_le(grid.gamma());
    out.put_u64_le(grid.cell_count() as u64);

    out.put_u64_le(index.assigned.len() as u64);
    for a in &index.assigned {
        out.put_u32_le(a.map_or(u32::MAX, |v| v));
    }
    out.put_u64_le(index.functions.len() as u64);
    for f in &index.functions {
        put_f64_vec(&mut out, f);
    }
    seal(out)
}

/// Deserialize an [`ApproxIndex`] from bytes produced by
/// [`encode_approx_index`].
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted or incompatible input.
pub fn decode_approx_index(bytes: &[u8]) -> Result<ApproxIndex, PersistError> {
    let body = unseal(bytes)?;
    let mut buf = body;
    check_header(&mut buf, TAG_APPROX)?;
    if buf.remaining() < 4 + 1 + 8 + 8 + 8 {
        return Err(PersistError::Truncated);
    }
    let d = buf.get_u32_le() as usize;
    let scheme = match buf.get_u8() {
        0 => PartitionScheme::EqualArea,
        1 => PartitionScheme::Uniform,
        _ => return Err(PersistError::Truncated),
    };
    let target = usize::try_from(buf.get_u64_le()).map_err(|_| PersistError::Truncated)?;
    let saved_gamma = buf.get_f64_le();
    let saved_cells = buf.get_u64_le() as usize;
    if d < 2 || target == 0 {
        return Err(PersistError::Truncated);
    }

    let grid = match scheme {
        PartitionScheme::EqualArea => AngleGrid::equal_area(d, target),
        PartitionScheme::Uniform => AngleGrid::uniform(d, target),
    };
    if (grid.gamma() - saved_gamma).abs() > 1e-12 || grid.cell_count() != saved_cells {
        return Err(PersistError::GridDrift);
    }

    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let n_assigned = buf.get_u64_le() as usize;
    if n_assigned != grid.cell_count() || buf.remaining() < n_assigned * 4 {
        return Err(PersistError::Truncated);
    }
    let assigned: Vec<Option<u32>> = (0..n_assigned)
        .map(|_| {
            let v = buf.get_u32_le();
            (v != u32::MAX).then_some(v)
        })
        .collect();

    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let n_functions = buf.get_u64_le() as usize;
    let mut functions = Vec::with_capacity(n_functions.min(1 << 20));
    for _ in 0..n_functions {
        let f = get_f64_vec(&mut buf)?;
        if f.len() != grid.dim() || f.iter().any(|v| !v.is_finite()) {
            return Err(PersistError::Truncated);
        }
        functions.push(f);
    }
    // Every assignment must point at a stored function.
    if assigned
        .iter()
        .flatten()
        .any(|&v| v as usize >= functions.len())
    {
        return Err(PersistError::Truncated);
    }
    if buf.has_remaining() {
        return Err(PersistError::Truncated);
    }

    // The decoded index reconstructs its build parameters from the grid
    // (`n_cells`, scheme) but carries no maintenance state (probe logs),
    // and the TAG_APPROX payload does not record the hyperplane caps or
    // pruning flags — those come back as library defaults. Its first
    // live update therefore pays one full rebuild under those
    // reconstructed options (re-seeding the maintenance state); replicas
    // that must preserve a non-default cap configuration should rebuild
    // from the dataset instead of updating a decoded index.
    let opts = BuildOptions {
        n_cells: grid.target_cells(),
        scheme: grid.scheme(),
        ..Default::default()
    };
    let cell_count = grid.cell_count();
    Ok(ApproxIndex {
        grid,
        assigned,
        functions,
        stats: BuildStats::default(),
        opts,
        satisfied: vec![false; cell_count],
        probe_log: Vec::new(),
        decided: Vec::new(),
    })
}

/// Serialize a 2-D [`AngularIntervals`] index to bytes.
#[must_use]
pub fn encode_intervals(intervals: &AngularIntervals) -> Vec<u8> {
    let mut out = header(TAG_INTERVALS);
    out.put_u64_le(intervals.len() as u64);
    for &(lo, hi) in intervals.as_slice() {
        out.put_f64_le(lo);
        out.put_f64_le(hi);
    }
    seal(out)
}

/// Deserialize an [`AngularIntervals`] index.
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted or incompatible input.
pub fn decode_intervals(bytes: &[u8]) -> Result<AngularIntervals, PersistError> {
    let body = unseal(bytes)?;
    let mut buf = body;
    check_header(&mut buf, TAG_INTERVALS)?;
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() != len * 16 {
        return Err(PersistError::Truncated);
    }
    let mut pairs = Vec::with_capacity(len);
    for _ in 0..len {
        let lo = buf.get_f64_le();
        let hi = buf.get_f64_le();
        if !lo.is_finite() || !hi.is_finite() {
            return Err(PersistError::Truncated);
        }
        pairs.push((lo, hi));
    }
    Ok(AngularIntervals::from_pairs(pairs))
}

/// Serialize a §4 satisfactory-region list (`angle_dim` angle
/// coordinates per point) to bytes.
///
/// # Panics
/// If a region's constraint or witness arity disagrees with
/// `angle_dim` — regions from [`crate::md::sat_regions`] are always
/// consistent.
#[must_use]
pub fn encode_regions(regions: &[SatRegion], angle_dim: usize) -> Vec<u8> {
    let mut out = header(TAG_REGIONS);
    out.put_u32_le(u32::try_from(angle_dim).expect("small dim"));
    out.put_u64_le(regions.len() as u64);
    for region in regions {
        assert_eq!(region.witness.len(), angle_dim, "witness arity");
        out.put_u32_le(u32::try_from(region.constraints.len()).expect("constraints fit u32"));
        for c in &region.constraints {
            assert_eq!(c.a.len(), angle_dim, "constraint arity");
            out.put_u8(match c.rel {
                Rel::Le => 0,
                Rel::Ge => 1,
                Rel::Eq => 2,
            });
            out.put_f64_le(c.b);
            put_f64_vec(&mut out, &c.a);
        }
        put_f64_vec(&mut out, &region.witness);
    }
    seal(out)
}

/// Deserialize a satisfactory-region list produced by
/// [`encode_regions`]; returns the regions and their angle
/// dimensionality.
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted or incompatible input.
pub fn decode_regions(bytes: &[u8]) -> Result<(Vec<SatRegion>, usize), PersistError> {
    let mut buf = unseal(bytes)?;
    let version = check_header_versioned(&mut buf, TAG_REGIONS, CHUNKED_VERSION)?;
    if version == CHUNKED_VERSION {
        let inner = reassemble_chunks(&mut buf)?;
        return decode_regions_inner(&inner);
    }
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    decode_regions_fields(buf)
}

/// Decode the whole-buffer region artifact a chunked stream carries
/// (version capped at [`VERSION`], so chunked frames cannot nest).
fn decode_regions_inner(bytes: &[u8]) -> Result<(Vec<SatRegion>, usize), PersistError> {
    let mut buf = unseal(bytes)?;
    check_header(&mut buf, TAG_REGIONS)?;
    decode_regions_fields(buf)
}

fn decode_regions_fields(mut buf: &[u8]) -> Result<(Vec<SatRegion>, usize), PersistError> {
    if buf.remaining() < 4 + 8 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u32_le() as usize;
    if dim == 0 {
        return Err(PersistError::Truncated);
    }
    let n_regions = buf.get_u64_le() as usize;
    let mut regions = Vec::with_capacity(n_regions.min(1 << 20));
    for _ in 0..n_regions {
        if buf.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let n_constraints = buf.get_u32_le() as usize;
        let mut constraints = Vec::with_capacity(n_constraints.min(1 << 20));
        for _ in 0..n_constraints {
            if buf.remaining() < 1 + 8 {
                return Err(PersistError::Truncated);
            }
            let rel = match buf.get_u8() {
                0 => Rel::Le,
                1 => Rel::Ge,
                2 => Rel::Eq,
                _ => return Err(PersistError::Truncated),
            };
            let b = buf.get_f64_le();
            let a = get_f64_vec(&mut buf)?;
            if !b.is_finite() || a.len() != dim || a.iter().any(|v| !v.is_finite()) {
                return Err(PersistError::Truncated);
            }
            constraints.push(Constraint { a, rel, b });
        }
        let witness = get_f64_vec(&mut buf)?;
        if witness.len() != dim || witness.iter().any(|v| !v.is_finite()) {
            return Err(PersistError::Truncated);
        }
        regions.push(SatRegion {
            constraints,
            witness,
        });
    }
    if buf.has_remaining() {
        return Err(PersistError::Truncated);
    }
    Ok((regions, dim))
}

/// Serialize a satisfactory-region list in the **version-3 chunked
/// transport** — the sealed artifact of [`encode_regions`] carried as
/// self-sealing frames (see [`encode_dataset_chunked`] for the layout).
/// [`decode_regions`] accepts it whole-buffer; [`decode_regions_from`]
/// consumes it off a stream.
///
/// # Panics
/// As [`encode_regions`]: if a region's arity disagrees with
/// `angle_dim`.
#[must_use]
pub fn encode_regions_chunked(
    regions: &[SatRegion],
    angle_dim: usize,
    chunk_len: usize,
) -> Vec<u8> {
    encode_chunked(TAG_REGIONS, &encode_regions(regions, angle_dim), chunk_len)
}

/// Decode a version-3 chunked region artifact directly off a byte
/// stream; the streaming counterpart of [`decode_regions`]. The reader
/// is left positioned exactly past the artifact.
///
/// # Errors
/// [`PersistError`] on malformed, corrupted, truncated, or non-chunked
/// input; [`PersistError::Io`] if the underlying reader fails.
pub fn decode_regions_from(
    reader: &mut impl std::io::Read,
) -> Result<(Vec<SatRegion>, usize), PersistError> {
    decode_regions_inner(&read_chunked(reader, TAG_REGIONS)?)
}

/// Reassemble a backend from its artifact tag and sealed artifact bytes
/// — the dispatch half of
/// [`IndexBackend::persist_tag`] / [`IndexBackend::encode`].
///
/// # Errors
/// [`PersistError::UnknownBackend`] for a tag with no decoder; any
/// [`PersistError`] from the concrete artifact codec.
pub fn decode_backend(tag: u8, bytes: &[u8]) -> Result<Box<dyn IndexBackend>, PersistError> {
    match tag {
        TAG_INTERVALS => Ok(Box::new(TwoDIntervals::new(decode_intervals(bytes)?))),
        TAG_REGIONS => {
            let (regions, dim) = decode_regions(bytes)?;
            Ok(Box::new(ExactRegions::new(regions, dim)))
        }
        TAG_APPROX => Ok(Box::new(ApproxGrid::new(decode_approx_index(bytes)?))),
        other => Err(PersistError::UnknownBackend(other)),
    }
}

/// Serialize a whole ranker index: the dataset dimensionality, the
/// backend's tag, the ranker's update counter, and the backend's own
/// sealed artifact, inside one outer checksummed envelope. Used by
/// [`FairRanker::to_bytes`](crate::FairRanker::to_bytes).
#[must_use]
pub fn encode_ranker_versioned(
    dataset_dim: usize,
    update_version: u64,
    backend: &dyn IndexBackend,
) -> Vec<u8> {
    let payload = backend.encode();
    let mut out = header_versioned(TAG_RANKER, RANKER_VERSION);
    out.put_u32_le(u32::try_from(dataset_dim).expect("small dim"));
    out.put_u8(backend.persist_tag());
    out.put_u64_le(update_version);
    out.put_u64_le(payload.len() as u64);
    out.put_slice(&payload);
    seal(out)
}

/// [`encode_ranker_versioned`] with an update counter of zero — the
/// pre-live-updates signature, kept for callers that version elsewhere.
#[must_use]
pub fn encode_ranker(dataset_dim: usize, backend: &dyn IndexBackend) -> Vec<u8> {
    encode_ranker_versioned(dataset_dim, 0, backend)
}

/// Decode a whole-ranker envelope produced by [`encode_ranker_versioned`]
/// (or a version-1 envelope from before the update counter existed — its
/// counter reads as 0): the dataset dimensionality the index was built
/// over, the ranker's update counter, and the reassembled backend.
///
/// The outer FNV-1a checksum covers the envelope end-to-end (header,
/// dimensionality, tag, counter, and the embedded artifact bytes), and
/// the embedded artifact additionally carries its own seal — corruption
/// is caught at whichever layer it lands in.
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted, truncated or
/// unknown-backend input.
pub fn decode_ranker_versioned(
    bytes: &[u8],
) -> Result<(usize, u64, Box<dyn IndexBackend>), PersistError> {
    let body = unseal(bytes)?;
    let mut buf = body;
    let version = check_header_versioned(&mut buf, TAG_RANKER, RANKER_VERSION)?;
    let counter_len = if version >= 2 { 8 } else { 0 };
    if buf.remaining() < 4 + 1 + counter_len + 8 {
        return Err(PersistError::Truncated);
    }
    let dim = buf.get_u32_le() as usize;
    let tag = buf.get_u8();
    let update_version = if version >= 2 { buf.get_u64_le() } else { 0 };
    let payload_len = usize::try_from(buf.get_u64_le()).map_err(|_| PersistError::Truncated)?;
    if dim < 2 || buf.remaining() != payload_len {
        return Err(PersistError::Truncated);
    }
    let backend = decode_backend(tag, buf)?;
    if backend.dim() != dim {
        return Err(PersistError::Truncated);
    }
    Ok((dim, update_version, backend))
}

/// [`decode_ranker_versioned`] without the update counter.
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted, truncated or
/// unknown-backend input.
pub fn decode_ranker(bytes: &[u8]) -> Result<(usize, Box<dyn IndexBackend>), PersistError> {
    decode_ranker_versioned(bytes).map(|(dim, _, backend)| (dim, backend))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(u32::try_from(s.len()).expect("string fits u32"));
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(PersistError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| PersistError::Truncated)
}

fn put_dataset_types(out: &mut Vec<u8>, ds: &Dataset) {
    out.put_u32_le(u32::try_from(ds.type_attributes().len()).expect("few type attrs"));
    for t in ds.type_attributes() {
        put_str(out, &t.name);
        out.put_u32_le(u32::try_from(t.labels.len()).expect("few labels"));
        for l in &t.labels {
            put_str(out, l);
        }
        for &v in &t.values {
            out.put_u32_le(v);
        }
    }
}

fn get_dataset_types(buf: &mut &[u8], ds: &mut Dataset) -> Result<(), PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let n_types = buf.get_u32_le() as usize;
    for _ in 0..n_types {
        let name = get_str(buf)?;
        if buf.remaining() < 4 {
            return Err(PersistError::Truncated);
        }
        let n_labels = buf.get_u32_le() as usize;
        let mut labels = Vec::with_capacity(n_labels.min(1 << 16));
        for _ in 0..n_labels {
            labels.push(get_str(buf)?);
        }
        if buf.remaining() < ds.len() * 4 {
            return Err(PersistError::Truncated);
        }
        let values: Vec<u32> = (0..ds.len()).map(|_| buf.get_u32_le()).collect();
        ds.add_type_attribute(name, labels, values)
            .map_err(|_| PersistError::Truncated)?;
    }
    Ok(())
}

/// Serialize a [`Dataset`] in the columnar version-2 layout: item count,
/// dimensionality, attribute names, one f64 column per scoring attribute
/// (a straight copy of the in-memory columns), then the type attributes.
#[must_use]
pub fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let mut out = header_versioned(TAG_DATASET, DATASET_VERSION);
    out.put_u64_le(ds.len() as u64);
    out.put_u32_le(u32::try_from(ds.dim()).expect("small dim"));
    for name in ds.attr_names() {
        put_str(&mut out, name);
    }
    for j in 0..ds.dim() {
        put_f64_vec(&mut out, ds.column(j));
    }
    put_dataset_types(&mut out, ds);
    seal(out)
}

/// Serialize a [`Dataset`] in the **legacy row-major version-1 layout**
/// (one flat `n × d` f64 vector, item-major) — the wire format of the
/// pre-columnar `Dataset`. Kept so the v1 decode path stays exercised;
/// also the row-major reference arm of the persistence benchmarks.
#[must_use]
pub fn encode_dataset_row_major(ds: &Dataset) -> Vec<u8> {
    let mut out = header_versioned(TAG_DATASET, 1);
    out.put_u64_le(ds.len() as u64);
    out.put_u32_le(u32::try_from(ds.dim()).expect("small dim"));
    for name in ds.attr_names() {
        put_str(&mut out, name);
    }
    put_f64_vec(&mut out, &ds.to_row_major());
    put_dataset_types(&mut out, ds);
    seal(out)
}

/// Decode a [`Dataset`] from either payload version: columnar v2 streams
/// and legacy row-major v1 streams both reconstruct the same columnar
/// in-memory dataset, bit-identically.
///
/// # Errors
/// [`PersistError`] on corrupted, truncated, or foreign input.
pub fn decode_dataset(bytes: &[u8]) -> Result<Dataset, PersistError> {
    let mut buf = unseal(bytes)?;
    let version = check_header_versioned(&mut buf, TAG_DATASET, CHUNKED_VERSION)?;
    if version == CHUNKED_VERSION {
        let inner = reassemble_chunks(&mut buf)?;
        return decode_dataset_inner(&inner);
    }
    decode_dataset_fields(buf, version)
}

/// Decode the whole-buffer artifact a chunked stream carries. Capping the
/// accepted version at [`DATASET_VERSION`] here is what stops a hostile
/// stream nesting chunked frames inside chunked frames.
fn decode_dataset_inner(bytes: &[u8]) -> Result<Dataset, PersistError> {
    let mut buf = unseal(bytes)?;
    let version = check_header_versioned(&mut buf, TAG_DATASET, DATASET_VERSION)?;
    decode_dataset_fields(buf, version)
}

fn decode_dataset_fields(mut buf: &[u8], version: u16) -> Result<Dataset, PersistError> {
    if buf.remaining() < 12 {
        return Err(PersistError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    let d = buf.get_u32_le() as usize;
    if n == 0 || d == 0 || n.checked_mul(d).is_none_or(|nd| nd > (1 << 32)) {
        return Err(PersistError::Truncated);
    }
    let mut names = Vec::with_capacity(d);
    for _ in 0..d {
        names.push(get_str(&mut buf)?);
    }
    let mut rows = vec![vec![0.0f64; d]; n];
    if version >= 2 {
        for j in 0..d {
            let col = get_f64_vec(&mut buf)?;
            if col.len() != n {
                return Err(PersistError::Truncated);
            }
            for (row, v) in rows.iter_mut().zip(col) {
                row[j] = v;
            }
        }
    } else {
        let flat = get_f64_vec(&mut buf)?;
        if flat.len() != n * d {
            return Err(PersistError::Truncated);
        }
        for (i, chunk) in flat.chunks_exact(d).enumerate() {
            rows[i].copy_from_slice(chunk);
        }
    }
    let mut ds = Dataset::from_rows(names, &rows).map_err(|_| PersistError::Truncated)?;
    get_dataset_types(&mut buf, &mut ds)?;
    if buf.has_remaining() {
        return Err(PersistError::Truncated);
    }
    Ok(ds)
}

/// Serialize a [`Dataset`] in the **version-3 chunked transport**: the
/// sealed columnar artifact of [`encode_dataset`], split into
/// `chunk_len`-byte frames each carrying its own FNV-1a seal, closed by
/// a zero-length terminator, under one outer stream seal. The layout is
/// self-delimiting, which is what lets [`decode_dataset_from`] consume
/// it off a live byte stream without knowing the total length up front;
/// [`decode_dataset`] also accepts it whole-buffer. Use
/// [`DEFAULT_CHUNK_LEN`] unless you have a reason not to
/// (`chunk_len` is clamped to `1..=64 MiB`).
#[must_use]
pub fn encode_dataset_chunked(ds: &Dataset, chunk_len: usize) -> Vec<u8> {
    encode_chunked(TAG_DATASET, &encode_dataset(ds), chunk_len)
}

/// Decode a version-3 chunked [`Dataset`] artifact directly off a byte
/// stream, verifying each chunk's seal as it arrives. The reader is left
/// positioned exactly past the artifact's trailing seal, so consecutive
/// artifacts on one stream decode in sequence.
///
/// # Errors
/// [`PersistError`] on malformed, corrupted, or truncated input, on a
/// non-chunked (version-1/2) stream — whose end a streaming reader
/// cannot find — and [`PersistError::Io`] if the underlying reader
/// fails.
pub fn decode_dataset_from(reader: &mut impl std::io::Read) -> Result<Dataset, PersistError> {
    decode_dataset_inner(&read_chunked(reader, TAG_DATASET)?)
}

fn get_u32_vec(buf: &mut &[u8]) -> Result<Vec<u32>, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len * 4 {
        return Err(PersistError::Truncated);
    }
    Ok((0..len).map(|_| buf.get_u32_le()).collect())
}

/// Serialize a versioned [`DatasetUpdate`](crate::DatasetUpdate) log frame: the dataset
/// version the frame applies on top of (`base_version`), followed by the
/// updates in application order. Applying the frame advances a replica
/// from `base_version` to `base_version + updates.len()` — each
/// [`FairRanker::update`](crate::FairRanker::update) bumps the counter
/// by one — which is the convergence check replicas run before applying.
///
/// This is the wire format a replicating writer ships over its update
/// stream; the ranker snapshot that seeds a replica travels separately
/// as a [`TAG_RANKER`] envelope.
#[must_use]
pub fn encode_update_log(base_version: u64, updates: &[crate::DatasetUpdate]) -> Vec<u8> {
    use crate::DatasetUpdate;
    let mut out = header(TAG_UPDATE_LOG);
    out.put_u64_le(base_version);
    out.put_u32_le(u32::try_from(updates.len()).expect("frame fits u32"));
    for update in updates {
        match update {
            DatasetUpdate::Insert { scores, groups } => {
                out.put_u8(0);
                put_f64_vec(&mut out, scores);
                out.put_u32_le(u32::try_from(groups.len()).expect("few type attrs"));
                for &g in groups {
                    out.put_u32_le(g);
                }
            }
            DatasetUpdate::Remove { item } => {
                out.put_u8(1);
                out.put_u32_le(*item);
            }
            DatasetUpdate::Rescore { item, scores } => {
                out.put_u8(2);
                out.put_u32_le(*item);
                put_f64_vec(&mut out, scores);
            }
        }
    }
    seal(out)
}

/// Decode an update-log frame produced by [`encode_update_log`]:
/// `(base_version, updates)`.
///
/// Structural validity only — scores must be finite (a non-finite score
/// can never come from a validated update), but arity and id-range
/// checks belong to [`DatasetUpdate::validate`](crate::DatasetUpdate::validate)
/// against the dataset the frame is applied to.
///
/// # Errors
/// Any [`PersistError`] on malformed, corrupted or truncated input;
/// never panics.
pub fn decode_update_log(bytes: &[u8]) -> Result<(u64, Vec<crate::DatasetUpdate>), PersistError> {
    use crate::DatasetUpdate;
    let body = unseal(bytes)?;
    let mut buf = body;
    check_header(&mut buf, TAG_UPDATE_LOG)?;
    if buf.remaining() < 8 + 4 {
        return Err(PersistError::Truncated);
    }
    let base_version = buf.get_u64_le();
    let n_updates = buf.get_u32_le() as usize;
    let mut updates = Vec::with_capacity(n_updates.min(1 << 20));
    for _ in 0..n_updates {
        if buf.remaining() < 1 {
            return Err(PersistError::Truncated);
        }
        let update = match buf.get_u8() {
            0 => {
                let scores = get_f64_vec(&mut buf)?;
                if scores.iter().any(|v| !v.is_finite()) {
                    return Err(PersistError::Truncated);
                }
                let groups = get_u32_vec(&mut buf)?;
                DatasetUpdate::Insert { scores, groups }
            }
            1 => {
                if buf.remaining() < 4 {
                    return Err(PersistError::Truncated);
                }
                DatasetUpdate::Remove {
                    item: buf.get_u32_le(),
                }
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(PersistError::Truncated);
                }
                let item = buf.get_u32_le();
                let scores = get_f64_vec(&mut buf)?;
                if scores.iter().any(|v| !v.is_finite()) {
                    return Err(PersistError::Truncated);
                }
                DatasetUpdate::Rescore { item, scores }
            }
            _ => return Err(PersistError::Truncated),
        };
        updates.push(update);
    }
    if buf.has_remaining() {
        return Err(PersistError::Truncated);
    }
    Ok((base_version, updates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approximate::BuildOptions;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::Proportionality;

    fn sample_index() -> ApproxIndex {
        let ds = generic::uniform(40, 3, 0.9, 7);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 8).with_max_count(0, 4);
        ApproxIndex::build(
            &ds,
            &oracle,
            &BuildOptions {
                n_cells: 120,
                max_hyperplanes: Some(150),
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn approx_round_trip() {
        let index = sample_index();
        let bytes = encode_approx_index(&index);
        let back = decode_approx_index(&bytes).unwrap();
        assert_eq!(back.functions(), index.functions());
        assert_eq!(back.grid().cell_count(), index.grid().cell_count());
        // Lookups agree everywhere.
        for i in 0..10 {
            for j in 0..10 {
                let q = [
                    (i as f64 + 0.5) / 10.0 * fairrank_geometry::HALF_PI,
                    (j as f64 + 0.5) / 10.0 * fairrank_geometry::HALF_PI,
                ];
                assert_eq!(index.lookup(&q), back.lookup(&q));
            }
        }
    }

    #[test]
    fn intervals_round_trip() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.4), (0.9, 1.2)]);
        let bytes = encode_intervals(&ivs);
        let back = decode_intervals(&bytes).unwrap();
        assert_eq!(back.as_slice(), ivs.as_slice());
    }

    #[test]
    fn empty_intervals_round_trip() {
        let ivs = AngularIntervals::new();
        let back = decode_intervals(&encode_intervals(&ivs)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corruption_detected() {
        let index = sample_index();
        let mut bytes = encode_approx_index(&index);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            decode_approx_index(&bytes),
            Err(PersistError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_detected() {
        let index = sample_index();
        let bytes = encode_approx_index(&index);
        for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            let res = decode_approx_index(&bytes[..cut]);
            assert!(res.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn wrong_artifact_rejected() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.4)]);
        let bytes = encode_intervals(&ivs);
        assert!(matches!(
            decode_approx_index(&bytes),
            Err(PersistError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_intervals(b"nonsense-bytes-here"),
            Err(PersistError::ChecksumMismatch) // checksum fails before magic
        );
        // With a valid checksum but wrong magic:
        let mut fake = b"XXXX".to_vec();
        let sum = super::fnv1a(&fake);
        fake.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_intervals(&fake), Err(PersistError::BadMagic));
    }

    fn sample_dataset() -> fairrank_datasets::Dataset {
        let mut ds = fairrank_datasets::Dataset::from_rows(
            vec!["gpa".into(), "sat".into()],
            &[
                vec![3.9, 0.71],
                vec![3.2, 0.99],
                vec![2.8, 0.42],
                vec![3.9, 0.42],
            ],
        )
        .unwrap();
        ds.add_type_attribute("gender", vec!["f".into(), "m".into()], vec![0, 1, 0, 1])
            .unwrap();
        ds
    }

    #[test]
    fn dataset_columnar_round_trip() {
        let ds = sample_dataset();
        let back = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_eq!(back, ds);
        for j in 0..ds.dim() {
            for i in 0..ds.len() {
                assert_eq!(back.value(i, j).to_bits(), ds.value(i, j).to_bits());
            }
        }
    }

    #[test]
    fn dataset_row_major_v1_still_decodes() {
        let ds = sample_dataset();
        let v1 = encode_dataset_row_major(&ds);
        let v2 = encode_dataset(&ds);
        assert_ne!(v1, v2, "v1 and v2 are distinct wire layouts");
        assert_eq!(decode_dataset(&v1).unwrap(), ds);
        assert_eq!(decode_dataset(&v1).unwrap(), decode_dataset(&v2).unwrap());
    }

    #[test]
    fn dataset_corruption_and_truncation_detected() {
        let ds = sample_dataset();
        for bytes in [encode_dataset(&ds), encode_dataset_row_major(&ds)] {
            let mut bad = bytes.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0xFF;
            assert!(decode_dataset(&bad).is_err());
            for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
                assert!(decode_dataset(&bytes[..cut]).is_err(), "{cut}-byte prefix");
            }
        }
    }

    #[test]
    fn dataset_wrong_artifact_rejected() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.4)]);
        assert!(matches!(
            decode_dataset(&encode_intervals(&ivs)),
            Err(PersistError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn update_log_round_trip() {
        let updates = vec![
            crate::DatasetUpdate::Insert {
                scores: vec![0.5, 0.25],
                groups: vec![1],
            },
            crate::DatasetUpdate::Remove { item: 3 },
            crate::DatasetUpdate::Rescore {
                item: 0,
                scores: vec![0.125, 0.875],
            },
        ];
        let bytes = encode_update_log(42, &updates);
        let (base, back) = decode_update_log(&bytes).unwrap();
        assert_eq!(base, 42);
        assert_eq!(back, updates);
    }

    #[test]
    fn empty_update_log_round_trip() {
        let (base, back) = decode_update_log(&encode_update_log(0, &[])).unwrap();
        assert_eq!(base, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn update_log_corruption_and_truncation_detected() {
        let updates = vec![crate::DatasetUpdate::Rescore {
            item: 7,
            scores: vec![0.5, 0.5, 0.5],
        }];
        let bytes = encode_update_log(9, &updates);
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(decode_update_log(&bad).is_err());
        for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_update_log(&bytes[..cut]).is_err(),
                "{cut}-byte prefix"
            );
        }
    }

    #[test]
    fn update_log_wrong_artifact_rejected() {
        let ivs = AngularIntervals::from_pairs([(0.1, 0.4)]);
        assert!(matches!(
            decode_update_log(&encode_intervals(&ivs)),
            Err(PersistError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn chunked_dataset_round_trips_at_every_granularity() {
        let ds = sample_dataset();
        let plain = encode_dataset(&ds);
        for chunk_len in [
            1usize,
            7,
            64,
            plain.len(),
            plain.len() * 4,
            DEFAULT_CHUNK_LEN,
        ] {
            let chunked = encode_dataset_chunked(&ds, chunk_len);
            // Whole-buffer decoder accepts v3.
            assert_eq!(
                decode_dataset(&chunked).unwrap(),
                ds,
                "whole-buffer, chunk {chunk_len}"
            );
            // Streaming decoder agrees bit-for-bit.
            let mut cursor = std::io::Cursor::new(chunked.as_slice());
            let back = decode_dataset_from(&mut cursor).unwrap();
            assert_eq!(back, ds, "streamed, chunk {chunk_len}");
            assert_eq!(
                cursor.position() as usize,
                chunked.len(),
                "reader past artifact"
            );
        }
    }

    #[test]
    fn chunked_regions_round_trip() {
        let ds = generic::anticorrelated(12, 3, 0.8, 21);
        let o = crate::md::SatRegionsOptions::default();
        let oracle = fairrank_fairness::FnOracle::new("always", |_: &[u32]| true);
        let r = crate::md::sat_regions(&ds, &oracle, &o).unwrap();
        let plain = encode_regions(&r.satisfactory, r.dim);
        for chunk_len in [13usize, plain.len() / 3 + 1, DEFAULT_CHUNK_LEN] {
            let chunked = encode_regions_chunked(&r.satisfactory, r.dim, chunk_len);
            let (back, dim) = decode_regions(&chunked).unwrap();
            assert_eq!(dim, r.dim);
            assert_eq!(
                encode_regions(&back, dim),
                plain,
                "whole-buffer, chunk {chunk_len}"
            );
            let mut cursor = std::io::Cursor::new(chunked.as_slice());
            let (streamed, sdim) = decode_regions_from(&mut cursor).unwrap();
            assert_eq!(
                encode_regions(&streamed, sdim),
                plain,
                "streamed, chunk {chunk_len}"
            );
        }
    }

    #[test]
    fn back_to_back_chunked_artifacts_stream_in_sequence() {
        let ds = sample_dataset();
        let mut stream = encode_dataset_chunked(&ds, 32);
        stream.extend_from_slice(&encode_dataset_chunked(&ds, 9));
        let mut cursor = std::io::Cursor::new(stream.as_slice());
        assert_eq!(decode_dataset_from(&mut cursor).unwrap(), ds);
        assert_eq!(decode_dataset_from(&mut cursor).unwrap(), ds);
        assert_eq!(cursor.position() as usize, stream.len());
    }

    #[test]
    fn chunked_corruption_and_truncation_detected() {
        let ds = sample_dataset();
        let bytes = encode_dataset_chunked(&ds, 16);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(decode_dataset(&bad).is_err(), "flip at {i} accepted");
            assert!(
                decode_dataset_from(&mut std::io::Cursor::new(bad.as_slice())).is_err(),
                "streamed flip at {i} accepted"
            );
        }
        for cut in [0usize, 3, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_dataset(&bytes[..cut]).is_err(), "{cut}-byte prefix");
            assert!(
                decode_dataset_from(&mut std::io::Cursor::new(&bytes[..cut])).is_err(),
                "streamed {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn streaming_decoder_rejects_whole_buffer_layouts() {
        let ds = sample_dataset();
        for bytes in [encode_dataset(&ds), encode_dataset_row_major(&ds)] {
            assert!(matches!(
                decode_dataset_from(&mut std::io::Cursor::new(bytes.as_slice())),
                Err(PersistError::UnsupportedVersion(_))
            ));
        }
    }

    #[test]
    fn chunked_frames_do_not_nest() {
        // Hand-build a v3 frame whose inner artifact is itself v3: the
        // inner decode must refuse (version cap), not recurse.
        let ds = sample_dataset();
        let inner = encode_dataset_chunked(&ds, 64);
        let nested = super::encode_chunked(TAG_DATASET, &inner, 64);
        assert!(matches!(
            decode_dataset(&nested),
            Err(PersistError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            decode_dataset_from(&mut std::io::Cursor::new(nested.as_slice())),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn future_version_rejected() {
        let ivs = AngularIntervals::new();
        let mut bytes = encode_intervals(&ivs);
        // Bump the version field (offset 4..6), re-seal.
        let body_len = bytes.len() - 8;
        bytes.truncate(body_len);
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        let sum = super::fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_intervals(&bytes),
            Err(PersistError::UnsupportedVersion(0xFFFF))
        );
    }
}
