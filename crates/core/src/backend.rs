//! The pluggable serving backend: one trait, three paper algorithms.
//!
//! The paper's system is an offline/online split — preprocess once, then
//! answer CLOSEST SATISFACTORY FUNCTION queries interactively — and each
//! of its three preprocessing strategies produces a different online
//! artifact: sorted satisfactory intervals (§3), an arrangement of
//! satisfactory regions (§4), or the approximate grid index (§5). This
//! module abstracts over those artifacts with [`IndexBackend`], making
//! the serving side of [`FairRanker`](crate::FairRanker) *open*: the
//! three built-in backends ([`TwoDIntervals`](crate::twod::TwoDIntervals),
//! [`ExactRegions`](crate::md::ExactRegions),
//! [`ApproxGrid`](crate::approximate::ApproxGrid)) are ordinary
//! implementations with no private privileges, and custom index
//! structures (different fairness/index trade-offs, as surveyed by Patro
//! et al. 2022) plug in through
//! [`FairRanker::from_backend`](crate::FairRanker::from_backend).
//!
//! ## Contract
//!
//! A backend answers the *index half* of a query:
//! [`suggest_unfair`](IndexBackend::suggest_unfair) receives weight
//! vectors that are already validated and whose induced ranking the
//! oracle has already rejected, and maps them to the closest
//! satisfactory function (or [`Answer::Infeasible`]). The
//! [`QueryCtx`] hands the backend the dataset and oracle for backends
//! that re-validate their answers (the exact m-D path does).
//!
//! Exact backends can additionally decide a query's fairness from the
//! index alone via [`known_fairness`](IndexBackend::known_fairness) —
//! the 2-D interval index characterizes the satisfactory angles
//! *exactly*, so the sharded serving path
//! ([`FairRanker::respond_batch_parallel`](crate::FairRanker::respond_batch_parallel))
//! skips the `O(n log n)` rank-and-ask pass entirely for it, answering
//! in `O(log n)` per query.
//!
//! ## Persistence
//!
//! Backends serialize through [`persist_tag`](IndexBackend::persist_tag)
//! / [`encode`](IndexBackend::encode), and
//! [`crate::persist::decode_backend`] dispatches a tag back to the
//! concrete decoder — which is what makes whole-ranker
//! [`save`](crate::FairRanker::save)/[`load`](crate::FairRanker::load)
//! possible without the caller naming the backend type.

use std::any::Any;
use std::sync::{Arc, Mutex};

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;

use crate::error::FairRankError;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

/// The index's raw answer to a closest-satisfactory-function query —
/// what [`IndexBackend::suggest_unfair`] returns. The unified
/// request/response API wraps this into a full
/// [`Suggestion`](crate::request::Suggestion) (weights + dataset version
/// + serving stats); see [`crate::request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// The queried weights already produce a fair ranking.
    AlreadyFair,
    /// The closest satisfactory function found by the index.
    Suggested {
        /// Suggested weight vector (same Euclidean norm as the query, so
        /// only the *direction* — the ranking — changes).
        weights: Vec<f64>,
        /// Angular distance from the query, in radians (`[0, π/2]`).
        distance: f64,
    },
    /// No linear scoring function satisfies the oracle on this dataset.
    Infeasible,
}

/// Shared update/rebuild counters behind every backend's
/// [`BackendStats`] — one mutex, one consistent snapshot.
///
/// Two design constraints meet here:
///
/// * **Consistency under concurrent serving.** The counters used to be
///   two plain `u64` fields incremented at different points of an update
///   (`updates` on entry, `rebuilds` only once a reconstruction
///   committed), so a stats reader racing an update could observe an
///   `(updates, rebuilds)` pair no committed state ever had. Both
///   counters now live under a single [`Mutex`] and every transition is
///   recorded in **one** locked pass ([`SharedCounters::record`]), so a
///   [`SharedCounters::snapshot`] is always some prefix of the committed
///   history.
/// * **Aggregation across copy-on-write forks.** A live update on a
///   ranker with outstanding snapshots forks the backend
///   ([`IndexBackend::clone_box`]); the `Arc` inside makes the fork
///   *share* these counters, so operational totals keep accumulating in
///   one place no matter how many snapshot generations serving has gone
///   through.
///
/// Cloning shares the underlying counters; a decoded (persisted) backend
/// starts a fresh pair — the counters are operational, not part of the
/// index artifact, and are excluded from backend structural equality.
#[derive(Debug, Clone, Default)]
pub struct SharedCounters {
    inner: Arc<Mutex<(u64, u64)>>,
}

impl SharedCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        SharedCounters::default()
    }

    /// Record one settled transition: `update` counts a dataset update
    /// applied through [`IndexBackend::apply`], `rebuild` counts a full
    /// index reconstruction. Both increments land in the same locked
    /// pass, so no reader can observe one without the other.
    pub fn record(&self, update: bool, rebuild: bool) {
        let mut inner = self.inner.lock().expect("counter lock poisoned");
        inner.0 += u64::from(update);
        inner.1 += u64::from(rebuild);
    }

    /// One consistent `(updates, rebuilds)` pair.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64) {
        *self.inner.lock().expect("counter lock poisoned")
    }
}

/// An opaque identity for a region of weight space over which a
/// backend's answers are constant — the handle the serving tier's
/// answer cache keys on.
///
/// The paper's central geometric fact is that suggestions are
/// piecewise-constant over regions of weight space: the satisfactory
/// intervals of §3, the arrangement cells of §4, the grid cells of §5.
/// [`IndexBackend::region_of`] maps a query to the key of its region
/// *when the backend can certify that every query in the region gets
/// the same fairness verdict*; two queries with equal keys may then
/// share one oracle verdict, which is exactly what the serve-tier
/// `SuggestionCache` memoizes.
///
/// Keys are meaningful only relative to one backend instance at one
/// dataset version — they are not stable across updates, rebuilds, or
/// backend kinds, which is why the cache includes
/// [`FairRanker::version`](crate::FairRanker::version) in its key and
/// purges on every update.
///
/// Construct via [`RegionKey::new`]; the `(kind, index)` split exists
/// so one backend can expose several disjoint key families (e.g. the
/// 2-D backend keys fair intervals and unfair gaps separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionKey(u64);

impl RegionKey {
    /// Build a key from a small key-family discriminant (`kind`) and a
    /// region index within that family. The pair is packed into one
    /// word: `kind` occupies the top 8 bits, so `index` must fit in 56
    /// bits (far beyond any real region count).
    #[must_use]
    pub fn new(kind: u8, index: u64) -> Self {
        debug_assert!(index < (1 << 56), "region index overflows RegionKey");
        RegionKey((u64::from(kind) << 56) | (index & ((1 << 56) - 1)))
    }

    /// The key-family discriminant this key was built with.
    #[must_use]
    pub fn kind(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// The region index within the key family.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0 & ((1 << 56) - 1)
    }
}

/// Everything a backend may consult while answering one query: the
/// dataset the index was built over and the fairness oracle.
///
/// Backends that fully pre-compute their answers (the 2-D intervals, the
/// approximate grid) ignore it; the exact m-D backend re-validates NLP
/// answers against the real oracle through it.
pub struct QueryCtx<'a> {
    /// The dataset the index was built over.
    pub ds: &'a Dataset,
    /// The fairness oracle the index was built against.
    pub oracle: &'a dyn FairnessOracle,
}

/// A uniform, backend-agnostic summary for reports and ops dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// Human-readable backend kind (`"2d-intervals"`, `"exact-regions"`,
    /// `"approx-grid"`).
    pub kind: &'static str,
    /// Number of stored index artifacts: intervals, satisfactory
    /// regions, or grid cells.
    pub artifacts: usize,
    /// Number of distinct satisfactory functions the backend can
    /// suggest (`None` when the backend derives answers analytically,
    /// as the 2-D border search does).
    pub functions: Option<usize>,
    /// The backend's worst-case distance error bound in radians
    /// (`Some(0.0)` for exact backends, the Theorem 6 bound for the
    /// grid).
    pub error_bound: Option<f64>,
    /// Dataset updates applied to this backend instance since it was
    /// built or loaded (operational counter; not persisted).
    pub updates: u64,
    /// How many of those updates triggered a full index reconstruction
    /// instead of in-place maintenance (operational counter; not
    /// persisted).
    pub rebuilds: u64,
}

/// An online index answering closest-satisfactory-function queries —
/// the serving half of the paper's offline/online split.
///
/// Implementations must be cheap to share across serving threads
/// (`Send + Sync`); [`FairRanker`](crate::FairRanker) fans queries out
/// over one shared backend instance.
pub trait IndexBackend: Send + Sync {
    /// Dimensionality of the weight vectors this index answers
    /// (the dataset's scoring-attribute count `d`).
    fn dim(&self) -> usize;

    /// Answer a query whose weights are validated and whose ranking the
    /// oracle has rejected. May still return
    /// [`Answer::AlreadyFair`] when the index disagrees at a region
    /// border (borders are ordering-exchange surfaces where rankings
    /// tie).
    ///
    /// # Errors
    /// Backend-specific failures; the built-in backends only fail on
    /// malformed input, which [`FairRanker`](crate::FairRanker) has
    /// already excluded.
    fn suggest_unfair(&self, weights: &[f64], ctx: &QueryCtx<'_>) -> Result<Answer, FairRankError>;

    /// The query's fairness verdict when the index itself decides it
    /// *exactly* — `None` when only the oracle can tell (the default).
    ///
    /// The 2-D interval index is the exact output of 2DRAYSWEEP, so it
    /// answers in `O(log n)` what the oracle answers in `O(n log n)`;
    /// the sharded serving path exploits this. Implementations must
    /// return verdicts identical to the oracle's on every query except
    /// exactly on an ordering-exchange angle, where the ranking ties
    /// and the oracle's verdict is itself tie-break-dependent.
    fn known_fairness(&self, weights: &[f64]) -> Option<bool> {
        let _ = weights;
        None
    }

    /// The identity of the weight-space region containing `weights`,
    /// when the backend can certify that its *fairness verdict* is
    /// constant over that region — `None` when it cannot (the default).
    ///
    /// The contract is the soundness property the serve-tier answer
    /// cache rests on: for any two validated queries `q1`, `q2` on the
    /// same backend instance, `region_of(q1) == region_of(q2)` (both
    /// `Some`) implies the oracle reaches the same verdict for both,
    /// so one cached verdict may answer both queries. Only the
    /// *verdict* need be constant — the suggested weights for unfair
    /// queries still depend on the query's own norm and position, and
    /// are recomputed per query through
    /// [`suggest_unfair`](IndexBackend::suggest_unfair).
    ///
    /// Like [`known_fairness`](IndexBackend::known_fairness), exactness
    /// is required everywhere except exactly on region borders
    /// (ordering-exchange surfaces where rankings tie and the oracle's
    /// verdict is itself tie-break-dependent). Backends must return
    /// `None` rather than guess: a wrong key silently serves wrong
    /// verdicts, while `None` merely skips the cache.
    fn region_of(&self, weights: &[f64]) -> Option<RegionKey> {
        let _ = weights;
        None
    }

    /// Maintain the index through one dataset update. `ctx` carries the
    /// pre-update snapshot (for removal deltas), the post-update dataset,
    /// and the re-bound oracle; the update has already been applied to
    /// `ctx.ds` and validated.
    ///
    /// The contract: once the update (and any
    /// [`Deferred`](UpdateOutcome::Deferred) coalescing window) has
    /// settled, the backend must answer
    /// [`suggest_unfair`](IndexBackend::suggest_unfair) /
    /// [`known_fairness`](IndexBackend::known_fairness) identically to
    /// the same backend rebuilt from scratch on `ctx.ds` — whether it
    /// maintains in place, rebuilds, or defers is its own trade-off,
    /// reported through the outcome.
    ///
    /// The default rejects with [`FairRankError::UpdateUnsupported`]:
    /// third-party backends opt in explicitly.
    ///
    /// # Errors
    /// [`FairRankError::UpdateUnsupported`] (the default), or any
    /// backend-specific rebuild failure. On error the backend must be
    /// left unchanged.
    fn apply(
        &mut self,
        update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<UpdateOutcome, FairRankError> {
        let _ = (update, ctx);
        Err(FairRankError::UpdateUnsupported(
            self.stats().kind.to_string(),
        ))
    }

    /// Force any [`Deferred`](UpdateOutcome::Deferred) updates to take
    /// effect now (backends without a coalescing buffer return
    /// [`UpdateOutcome::Noop`], the default).
    ///
    /// # Errors
    /// Backend-specific rebuild failures.
    fn flush(&mut self, ctx: &UpdateCtx<'_>) -> Result<UpdateOutcome, FairRankError> {
        let _ = ctx;
        Ok(UpdateOutcome::Noop)
    }

    /// Whether [`flush`](IndexBackend::flush) would do real work: `true`
    /// iff updates are buffered behind a coalescing threshold. The
    /// default (`false`) matches the default no-op `flush`. Lets
    /// [`FairRanker::flush_updates`](crate::FairRanker::flush_updates)
    /// skip the copy-on-write backend fork entirely on shared rankers
    /// when there is nothing to flush.
    fn has_pending_updates(&self) -> bool {
        false
    }

    /// A deep copy of this backend as a fresh boxed instance — the hook
    /// behind copy-on-write live updates on *shared* rankers.
    ///
    /// [`FairRanker::snapshot`](crate::FairRanker::snapshot) hands out
    /// cheap `Arc`-shared clones of a ranker (the async serving tier
    /// takes one per micro-batch); when
    /// [`FairRanker::update`](crate::FairRanker::update) finds such
    /// snapshots outstanding it cannot maintain the index in place, so
    /// it forks the backend through this method, maintains the fork, and
    /// swaps it in — in-flight snapshots keep serving the old index
    /// untouched.
    ///
    /// The default returns `None`: third-party backends that don't opt
    /// in simply reject updates while snapshots are outstanding
    /// ([`FairRankError::CloneUnsupported`]); exclusive rankers are
    /// still maintained in place without cloning. Implementations should
    /// share their [`SharedCounters`] with the clone so operational
    /// totals aggregate across forks.
    fn clone_box(&self) -> Option<Box<dyn IndexBackend>> {
        None
    }

    /// One-byte artifact tag identifying this backend kind in the
    /// persistence envelope (see [`crate::persist`]).
    fn persist_tag(&self) -> u8;

    /// Serialize the backend to its self-contained, checksummed artifact
    /// bytes — the inverse of [`crate::persist::decode_backend`] with
    /// [`persist_tag`](IndexBackend::persist_tag).
    fn encode(&self) -> Vec<u8>;

    /// Backend-agnostic statistics.
    fn stats(&self) -> BackendStats;

    /// Downcasting hook so callers can reach the concrete backend
    /// (e.g. [`crate::approximate::ApproxIndex`] build stats).
    fn as_any(&self) -> &dyn Any;
}

/// Convert an angle vector to the weight vector of norm `r` pointing
/// the same way — the shape every backend's suggestion takes (same norm
/// as the query, only the direction changes).
///
/// The unit direction is computed first and scaled afterwards (not
/// `to_cartesian(r, …)`): the float rounding then matches the
/// pre-backend ranker bit for bit, which the equivalence and
/// persistence suites rely on.
pub(crate) fn suggestion_weights(angles: &[f64], r: f64) -> Vec<f64> {
    fairrank_geometry::polar::to_cartesian(1.0, angles)
        .iter()
        .map(|v| v * r)
        .collect()
}

/// Which offline algorithm [`FairRanker::builder`](crate::FairRanker::builder)
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Strategy {
    /// 2DRAYSWEEP → sorted satisfactory intervals (paper §3). Requires
    /// `d == 2`.
    TwoD,
    /// SATREGIONS → exact satisfactory regions, answered by MDBASELINE
    /// (paper §4). Accurate but the region count grows as
    /// `O(h^{d−1})`; not interactive for large inputs.
    MdExact,
    /// The §5 grid pipeline → approximate `O(log N)` lookups with the
    /// Theorem 6 distance guarantee.
    MdApprox,
    /// Pick per the paper's §3-vs-§5 guidance: [`Strategy::TwoD`] for
    /// two attributes, [`Strategy::MdExact`] when the input is small
    /// enough for the exact arrangement to stay interactive, otherwise
    /// [`Strategy::MdApprox`]. See [`Strategy::pick`] for the exact
    /// rule.
    Auto,
}

/// Item-count threshold for [`Strategy::Auto`]: at most this many rows
/// before the exact arrangement (`O(n²)` hyperplanes, `O(h^{d−1})`
/// regions, one NLP per region per query) stops being interactive and
/// `Auto` switches to the approximate grid.
pub const AUTO_EXACT_MAX_ITEMS: usize = 48;

impl Strategy {
    /// Resolve `Auto` against a dataset: the concrete strategy
    /// [`FairRanker::builder`](crate::FairRanker::builder) will run.
    /// Non-`Auto` strategies return themselves.
    ///
    /// The rule: `d == 2` → [`Strategy::TwoD`] (§3 is exact *and*
    /// `O(log n)` online); otherwise [`Strategy::MdExact`] up to
    /// [`AUTO_EXACT_MAX_ITEMS`] rows and [`Strategy::MdApprox`] beyond
    /// (§5's motivation: MDBASELINE's `O(n^{2(d−1)})` query cost is not
    /// interactive at scale).
    #[must_use]
    pub fn pick(self, ds: &Dataset) -> Strategy {
        match self {
            Strategy::Auto => {
                if ds.dim() == 2 {
                    Strategy::TwoD
                } else if ds.len() <= AUTO_EXACT_MAX_ITEMS {
                    Strategy::MdExact
                } else {
                    Strategy::MdApprox
                }
            }
            concrete => concrete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;

    #[test]
    fn auto_picks_by_dim_and_size() {
        let two_d = generic::uniform(100, 2, 0.5, 1);
        assert_eq!(Strategy::Auto.pick(&two_d), Strategy::TwoD);
        let small_md = generic::uniform(AUTO_EXACT_MAX_ITEMS, 3, 0.5, 2);
        assert_eq!(Strategy::Auto.pick(&small_md), Strategy::MdExact);
        let large_md = generic::uniform(AUTO_EXACT_MAX_ITEMS + 1, 3, 0.5, 3);
        assert_eq!(Strategy::Auto.pick(&large_md), Strategy::MdApprox);
    }

    #[test]
    fn concrete_strategies_resolve_to_themselves() {
        let ds = generic::uniform(10, 4, 0.5, 4);
        for s in [Strategy::TwoD, Strategy::MdExact, Strategy::MdApprox] {
            assert_eq!(s.pick(&ds), s);
        }
    }
}
