//! The unified request/response types of the serving API.
//!
//! Every serving entry point — [`FairRanker::respond`],
//! [`FairRanker::respond_batch`],
//! [`FairRanker::respond_batch_parallel`], and the async
//! `FairRankService` in the `fairrank-serve` crate — speaks one pair of
//! types: a [`SuggestRequest`] in, a [`Suggestion`] out. The request
//! carries the query weights plus per-request options (top-k
//! materialization, fast-path control); the response carries the weights
//! to serve with, the fairness verdict ([`KnownFairness`]), the dataset
//! version the answer reflects, and per-answer serving statistics
//! ([`SuggestStats`]).
//!
//! This replaces the bare `&[f64]` slices and enum-only returns of the
//! original `FairRanker::suggest*` methods (removed after their
//! two-PR deprecation window): a structured request is what an async
//! submission queue can own and coalesce, and a structured response is
//! what a caller can route without re-deriving which weights to rank
//! with. The raw index verdict survives as
//! [`Answer`](crate::backend::Answer) — the enum previously named `Suggestion` — which backends
//! still return and [`Suggestion::fairness`] wraps.
//!
//! [`FairRanker::respond`]: crate::FairRanker::respond
//! [`FairRanker::respond_batch`]: crate::FairRanker::respond_batch
//! [`FairRanker::respond_batch_parallel`]: crate::FairRanker::respond_batch_parallel

/// One closest-satisfactory-function query, as submitted to the serving
/// API: the proposed weight vector plus per-request options.
///
/// Construct with [`SuggestRequest::new`] and refine with the builder
/// methods:
///
/// ```
/// use fairrank::{SuggestOptions, SuggestRequest};
///
/// let req = SuggestRequest::new([1.0, 0.25])
///     .with_top_k(10)
///     .with_options(SuggestOptions::default().index_fastpath(false));
/// assert_eq!(req.query, vec![1.0, 0.25]);
/// assert_eq!(req.k, Some(10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestRequest {
    /// The proposed weight vector (`len == ds.dim()`, finite,
    /// non-negative, not all zero — validated by the serving layer).
    pub query: Vec<f64>,
    /// When set, the response's [`SuggestStats::top_k`] materializes the
    /// top-`k` item ids ranked under the *answered* weights — the
    /// ranking the caller would actually serve.
    pub k: Option<usize>,
    /// Per-request serving options.
    pub options: SuggestOptions,
}

impl SuggestRequest {
    /// A request for `query` with default options and no top-k
    /// materialization.
    #[must_use]
    pub fn new(query: impl Into<Vec<f64>>) -> Self {
        SuggestRequest {
            query: query.into(),
            k: None,
            options: SuggestOptions::default(),
        }
    }

    /// Materialize the top-`k` ranking under the answered weights into
    /// [`SuggestStats::top_k`].
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Replace the per-request options.
    #[must_use]
    pub fn with_options(mut self, options: SuggestOptions) -> Self {
        self.options = options;
        self
    }
}

impl From<Vec<f64>> for SuggestRequest {
    fn from(query: Vec<f64>) -> Self {
        SuggestRequest::new(query)
    }
}

impl From<&[f64]> for SuggestRequest {
    fn from(query: &[f64]) -> Self {
        SuggestRequest::new(query.to_vec())
    }
}

/// Per-request serving options.
///
/// `#[non_exhaustive]`: future knobs (answer validation level, distance
/// budget, …) can be added without breaking constructors — start from
/// `SuggestOptions::default()` and override fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct SuggestOptions {
    /// Allow the sharded serving path to answer the "is it already
    /// fair?" check from the index alone when the backend characterizes
    /// the satisfactory set exactly
    /// ([`IndexBackend::known_fairness`](crate::backend::IndexBackend::known_fairness)
    /// — `O(log n)` instead of the `O(n log n)` oracle ranking).
    /// Default `true`; set `false` to force the oracle into the loop for
    /// every query (useful when auditing the index against the oracle).
    pub index_fastpath: bool,
}

impl SuggestOptions {
    /// Set [`SuggestOptions::index_fastpath`] (builder-style — the
    /// struct is `#[non_exhaustive]`, so downstream crates construct it
    /// from `default()`).
    #[must_use]
    pub fn index_fastpath(mut self, on: bool) -> Self {
        self.index_fastpath = on;
        self
    }
}

impl Default for SuggestOptions {
    fn default() -> Self {
        SuggestOptions {
            index_fastpath: true,
        }
    }
}

/// The fairness verdict inside a [`Suggestion`] — the
/// [`Answer`](crate::backend::Answer) shape with the weights hoisted
/// into the response envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum KnownFairness {
    /// The queried weights already produce a fair ranking;
    /// [`Suggestion::weights`] echoes the query.
    AlreadyFair,
    /// The query was unfair; [`Suggestion::weights`] is the closest
    /// satisfactory function the index found.
    Suggested {
        /// Angular distance from the query, in radians (`[0, π/2]`).
        distance: f64,
    },
    /// No linear scoring function satisfies the oracle on this dataset;
    /// [`Suggestion::weights`] echoes the query so the caller still has
    /// a deterministic vector to fall back on.
    Infeasible,
}

/// Per-answer serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestStats {
    /// Whether the fairness verdict came from the index alone
    /// (the `O(log n)` exact-backend fast path) rather than an oracle
    /// ranking pass.
    pub index_decided: bool,
    /// The top-k item ids ranked under [`Suggestion::weights`], present
    /// iff the request set [`SuggestRequest::k`].
    pub top_k: Option<Vec<u32>>,
}

/// One answered request — the response half of the unified serving API.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The weight vector to serve with: the query itself when it was
    /// already fair (or infeasible), the closest satisfactory function
    /// otherwise. Same Euclidean norm as the query — only the
    /// *direction*, and therefore the ranking, changes.
    pub weights: Vec<f64>,
    /// The dataset epoch ([`FairRanker::version`](crate::FairRanker::version))
    /// this answer reflects — under live updates, the snapshot the
    /// serving layer answered from.
    pub version: u64,
    /// The fairness verdict.
    pub fairness: KnownFairness,
    /// Per-answer serving statistics.
    pub stats: SuggestStats,
}

impl Suggestion {
    /// Whether the verdict was [`KnownFairness::AlreadyFair`].
    #[must_use]
    pub fn is_already_fair(&self) -> bool {
        matches!(self.fairness, KnownFairness::AlreadyFair)
    }

    /// Whether the verdict was [`KnownFairness::Infeasible`].
    #[must_use]
    pub fn is_infeasible(&self) -> bool {
        matches!(self.fairness, KnownFairness::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let req = SuggestRequest::new(vec![0.5, 0.5]);
        assert_eq!(req.k, None);
        assert!(req.options.index_fastpath);
        let req = req.with_top_k(3).with_options(SuggestOptions {
            index_fastpath: false,
        });
        assert_eq!(req.k, Some(3));
        assert!(!req.options.index_fastpath);
        let from_slice: SuggestRequest = [1.0, 2.0].as_slice().into();
        let from_vec: SuggestRequest = vec![1.0, 2.0].into();
        assert_eq!(from_slice, from_vec);
    }

    #[test]
    fn verdict_predicates() {
        let s = Suggestion {
            weights: vec![1.0],
            version: 0,
            fairness: KnownFairness::AlreadyFair,
            stats: SuggestStats {
                index_decided: true,
                top_k: None,
            },
        };
        assert!(s.is_already_fair());
        assert!(!s.is_infeasible());
    }
}
