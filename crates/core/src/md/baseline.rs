//! MDBASELINE (paper Algorithm 6): the exact online algorithm.
//!
//! For each satisfactory region, solve the non-linear program "closest
//! point of the region to the query in angular distance" (Eq. 10) and
//! return the global best. The paper's complexity (Theorem 4) is
//! `O(n^{2(d−1)} · NLp(n²))`; this is the reason §5 builds the approximate
//! grid index — MDBASELINE is the accuracy reference, not the interactive
//! path.
//!
//! The per-region NLP is solved with Frank–Wolfe over the region polytope
//! (see `fairrank-lp`); the region witness provides the feasible start.

use fairrank_geometry::polar::angular_distance;
use fairrank_lp::{minimize_over_polytope, FwOptions};

use crate::md::satregions::SatRegion;

/// Result of a closest-satisfactory-function query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosestResult {
    /// The suggested function, as an angle vector.
    pub angles: Vec<f64>,
    /// Angular distance from the query.
    pub distance: f64,
    /// Index of the satisfactory region the answer lies in.
    pub region: usize,
}

/// Find the closest point across all satisfactory regions to the query
/// angle vector. Returns `None` when there are no satisfactory regions
/// (the constraint is unsatisfiable by any linear function).
#[must_use]
pub fn closest_satisfactory(regions: &[SatRegion], query: &[f64]) -> Option<ClosestResult> {
    let mut best: Option<ClosestResult> = None;
    for (idx, region) in regions.iter().enumerate() {
        // Quick exit: the query itself inside a satisfactory region.
        if region.constraints.iter().all(|c| c.satisfied(query, 1e-9)) {
            return Some(ClosestResult {
                angles: query.to_vec(),
                distance: 0.0,
                region: idx,
            });
        }
        let objective = |theta: &[f64]| angular_distance(theta, query);
        let candidate = minimize_over_polytope(
            objective,
            &region.constraints,
            0.0,
            fairrank_geometry::HALF_PI,
            &region.witness,
            &FwOptions::default(),
        );
        // The witness itself is always a valid (if suboptimal) answer.
        let witness_dist = angular_distance(&region.witness, query);
        let (angles, distance) = match candidate {
            Some(fw) if fw.value <= witness_dist => (fw.x, fw.value),
            _ => (region.witness.clone(), witness_dist),
        };
        if best.as_ref().is_none_or(|b| distance < b.distance) {
            best = Some(ClosestResult {
                angles,
                distance,
                region: idx,
            });
        }
    }
    best
}

/// [`closest_satisfactory`] followed by oracle re-validation.
///
/// Two effects can leave the raw NLP answer *unfair* even though its region
/// is satisfactory: the optimum usually sits exactly on the region boundary
/// (an ordering-exchange surface, where two items tie and the ranking is
/// ambiguous), and for `d > 3` the linearized exchange hyperplanes only
/// approximate the true curved surfaces (DESIGN.md F2). This wrapper checks
/// the suggested function against the real oracle and, when it fails, walks
/// the answer toward the region's validated witness until the oracle
/// accepts — the distance grows by the smallest repair step that restores
/// fairness, and the witness itself bounds the worst case.
#[must_use]
pub fn closest_satisfactory_validated(
    regions: &[SatRegion],
    query: &[f64],
    ds: &fairrank_datasets::Dataset,
    oracle: &dyn fairrank_fairness::FairnessOracle,
) -> Option<ClosestResult> {
    use fairrank_geometry::polar::to_cartesian_into;
    let raw = closest_satisfactory(regions, query)?;
    // One workspace + weight buffer across the whole repair walk: the
    // validation loop can probe the oracle many times on the way to a
    // fair point, and each probe is allocation-free with a top-k partial
    // ranking when the oracle exposes a bound.
    let mut workspace = fairrank_datasets::RankWorkspace::with_capacity(ds.len());
    let mut weights: Vec<f64> = Vec::with_capacity(ds.dim());
    let top_k = oracle.top_k_bound();
    let mut is_fair = |angles: &[f64]| {
        to_cartesian_into(1.0, angles, &mut weights);
        oracle.is_satisfactory(workspace.rank_with_bound(ds, &weights, top_k))
    };
    if is_fair(&raw.angles) {
        return Some(raw);
    }
    // Repair: geometric walk from the answer toward its region's witness.
    // The segment stays inside the (convex) region, and the witness end is
    // validated, so the walk terminates. The repaired point can end up
    // farther than another region's witness, so the globally closest
    // witness is kept as a competing candidate.
    let witness = &regions[raw.region].witness;
    let mut repaired: Option<ClosestResult> = None;
    let mut t = 1e-6;
    while t < 1.0 {
        let candidate: Vec<f64> = raw
            .angles
            .iter()
            .zip(witness)
            .map(|(a, w)| a + t * (w - a))
            .collect();
        if is_fair(&candidate) {
            repaired = Some(ClosestResult {
                distance: angular_distance(&candidate, query),
                angles: candidate,
                region: raw.region,
            });
            break;
        }
        t *= 4.0;
    }
    let repaired = repaired.unwrap_or_else(|| ClosestResult {
        distance: angular_distance(witness, query),
        angles: witness.clone(),
        region: raw.region,
    });
    let best_witness = regions
        .iter()
        .enumerate()
        .map(|(idx, r)| (idx, angular_distance(&r.witness, query)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("regions nonempty: raw answer exists");
    if best_witness.1 < repaired.distance {
        return Some(ClosestResult {
            angles: regions[best_witness.0].witness.clone(),
            distance: best_witness.1,
            region: best_witness.0,
        });
    }
    Some(repaired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_lp::Constraint;

    fn region(constraints: Vec<Constraint>, witness: Vec<f64>) -> SatRegion {
        SatRegion {
            constraints,
            witness,
        }
    }

    #[test]
    fn no_regions_is_none() {
        assert!(closest_satisfactory(&[], &[0.3, 0.4]).is_none());
    }

    #[test]
    fn query_inside_region_distance_zero() {
        let r = region(vec![Constraint::le(vec![1.0, 0.0], 1.0)], vec![0.2, 0.2]);
        let res = closest_satisfactory(&[r], &[0.5, 0.5]).unwrap();
        assert_eq!(res.distance, 0.0);
        assert_eq!(res.angles, vec![0.5, 0.5]);
    }

    #[test]
    fn projects_to_boundary() {
        // Region θ₁ ≥ 1.0; query at θ = (0.2, 0.3): the optimum has
        // θ₁ = 1.0 (boundary) and θ₂ near the query's.
        let r = region(vec![Constraint::ge(vec![1.0, 0.0], 1.0)], vec![1.3, 0.3]);
        let res = closest_satisfactory(&[r], &[0.2, 0.3]).unwrap();
        assert!((res.angles[0] - 1.0).abs() < 1e-3, "{:?}", res.angles);
        assert!(res.distance > 0.0);
        // Distance must beat the witness's.
        assert!(res.distance <= angular_distance(&[1.3, 0.3], &[0.2, 0.3]) + 1e-9);
    }

    #[test]
    fn picks_best_of_multiple_regions() {
        let far = region(vec![Constraint::ge(vec![1.0, 0.0], 1.4)], vec![1.5, 1.5]);
        let near = region(vec![Constraint::le(vec![1.0, 0.0], 0.4)], vec![0.2, 0.5]);
        let res = closest_satisfactory(&[far, near], &[0.45, 0.5]).unwrap();
        assert_eq!(res.region, 1);
        assert!((res.angles[0] - 0.4).abs() < 1e-3, "{:?}", res.angles);
    }

    #[test]
    fn result_always_satisfies_region_constraints() {
        let cs = vec![
            Constraint::ge(vec![1.0, 0.2], 0.9),
            Constraint::le(vec![1.0, -0.4], 1.1),
        ];
        let r = region(cs.clone(), vec![1.2, 0.8]);
        let res = closest_satisfactory(&[r], &[0.1, 0.1]).unwrap();
        for c in &cs {
            assert!(c.satisfied(&res.angles, 1e-6), "{c} at {:?}", res.angles);
        }
    }

    #[test]
    fn degenerate_point_region_falls_back_to_witness() {
        // Equality-pinched region: Frank–Wolfe has nowhere to move; the
        // witness answer must survive.
        let cs = vec![
            Constraint::ge(vec![1.0, 0.0], 0.7),
            Constraint::le(vec![1.0, 0.0], 0.7),
            Constraint::ge(vec![0.0, 1.0], 0.7),
            Constraint::le(vec![0.0, 1.0], 0.7),
        ];
        let r = region(cs, vec![0.7, 0.7]);
        let res = closest_satisfactory(&[r], &[0.1, 0.1]).unwrap();
        assert!((res.angles[0] - 0.7).abs() < 1e-6);
        assert!((res.angles[1] - 0.7).abs() < 1e-6);
    }
}
