//! The multi-dimensional case (paper §4): ordering-exchange hyperplanes in
//! angle coordinates, the arrangement of satisfactory regions, the exact
//! (baseline) online algorithm — and [`ExactRegions`], the §4 artifact
//! packaged as a serving backend.

pub mod baseline;
pub mod hyperpolar;
pub mod satregions;

pub use baseline::{closest_satisfactory, closest_satisfactory_validated, ClosestResult};
pub use hyperpolar::{exchange_hyperplane, exchange_hyperplanes};
pub use satregions::{sat_regions, SatRegion, SatRegions, SatRegionsOptions};

use std::sync::{Arc, OnceLock};

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::polar::to_polar;
use fairrank_geometry::vector::norm;

use crate::backend::{Answer, BackendStats, IndexBackend, QueryCtx, RegionKey, SharedCounters};
use crate::error::FairRankError;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

/// [`RegionKey`] kind discriminant for a satisfactory arrangement
/// region (the only region family this backend can certify).
const REGION_MD_FAIR: u8 = 0;

/// The §4 serving backend: the satisfactory regions of the exchange
/// arrangement, answered by MDBASELINE (one NLP per region) with oracle
/// re-validation — accurate but not interactive for large inputs; prefer
/// [`crate::approximate::ApproxGrid`] at scale.
///
/// Unlike the 2-D intervals this backend does *not* decide fairness from
/// the index: for `d > 3` the linearized exchange hyperplanes only
/// approximate the true curved exchange surfaces, so region membership
/// is not a trustworthy verdict and the oracle stays in the loop (both
/// for the fairness pre-check and for validating suggestions).
#[derive(Debug, Clone)]
pub struct ExactRegions {
    regions: Vec<SatRegion>,
    /// Deferred-materialization cell (`None` = eager). A lazy backend
    /// starts with an empty `regions` list and runs [`sat_regions`] at
    /// most once, on the first query that needs the arrangement; the
    /// memoized result is shared across copy-on-write forks through the
    /// `Arc`, and the backend goes permanently eager on the first
    /// update rebuild.
    lazy: Option<Arc<OnceLock<Vec<SatRegion>>>>,
    /// Number of angle coordinates (`d − 1`).
    dim: usize,
    /// Options used when reconstructing the arrangement on updates.
    opts: SatRegionsOptions,
    /// Rebuild after this many coalesced updates (1 = immediately).
    rebuild_every: usize,
    /// Updates buffered since the last reconstruction.
    pending: usize,
    counters: SharedCounters,
}

impl ExactRegions {
    /// Wrap the satisfactory regions of a [`SatRegions`] result for a
    /// `d`-attribute dataset (`d = angle_dim + 1`). Updates rebuild
    /// immediately with default [`SatRegionsOptions`]; see
    /// [`ExactRegions::with_update_policy`].
    #[must_use]
    pub fn new(regions: Vec<SatRegion>, angle_dim: usize) -> Self {
        ExactRegions {
            regions,
            lazy: None,
            dim: angle_dim,
            opts: SatRegionsOptions::default(),
            rebuild_every: 1,
            pending: 0,
            counters: SharedCounters::new(),
        }
    }

    /// A lazily materialized backend for a `d`-attribute dataset
    /// (`d = angle_dim + 1`): construction is free, and the full
    /// [`sat_regions`] pass runs at most once — on the first query that
    /// needs the arrangement — memoized for every later query and shared
    /// across copy-on-write forks. Answers are bit-identical to the
    /// eagerly built backend with the same options; the only observable
    /// differences are *when* the build cost is paid and that
    /// [`IndexBackend::region_of`] refuses to certify region identity
    /// until materialization has happened.
    #[must_use]
    pub fn new_lazy(angle_dim: usize, opts: SatRegionsOptions, rebuild_every: usize) -> Self {
        ExactRegions {
            regions: Vec::new(),
            lazy: Some(Arc::new(OnceLock::new())),
            dim: angle_dim,
            opts,
            rebuild_every: rebuild_every.max(1),
            pending: 0,
            counters: SharedCounters::new(),
        }
    }

    /// The region list if it exists yet: always for an eager backend,
    /// only after the first materializing query for a lazy one.
    #[must_use]
    pub fn materialized(&self) -> Option<&[SatRegion]> {
        match &self.lazy {
            None => Some(&self.regions),
            Some(cell) => cell.get().map(Vec::as_slice),
        }
    }

    /// The region list, materializing it now if this backend is lazy and
    /// has not been queried yet. Idempotent; the memoized list is what
    /// every subsequent query reads.
    pub fn materialize(&self, ds: &Dataset, oracle: &dyn FairnessOracle) -> &[SatRegion] {
        match &self.lazy {
            None => &self.regions,
            Some(cell) => cell.get_or_init(|| {
                sat_regions(ds, oracle, &self.opts)
                    .expect("dimensionality was validated when the lazy backend was built")
                    .satisfactory
            }),
        }
    }

    /// Configure how updates reconstruct the arrangement: the
    /// [`sat_regions`] options to rebuild with, and how many updates to
    /// coalesce before paying one reconstruction (`O(n²)` hyperplanes).
    /// While updates are deferred the region list is stale — answers are
    /// still re-validated against the live oracle (so suggestions remain
    /// *fair*), but may not be closest until the rebuild lands.
    ///
    /// `rebuild_every` is clamped to at least 1.
    #[must_use]
    pub fn with_update_policy(mut self, opts: SatRegionsOptions, rebuild_every: usize) -> Self {
        self.opts = opts;
        self.rebuild_every = rebuild_every.max(1);
        self
    }

    /// Updates buffered behind the coalescing threshold.
    #[must_use]
    pub fn pending_updates(&self) -> usize {
        self.pending
    }

    /// The satisfactory regions (empty for a lazy backend that has not
    /// materialized yet — see [`ExactRegions::materialized`]).
    #[must_use]
    pub fn regions(&self) -> &[SatRegion] {
        self.materialized().unwrap_or(&[])
    }

    fn rebuild(&mut self, ctx: &UpdateCtx<'_>) -> Result<UpdateOutcome, FairRankError> {
        let rebuilt = sat_regions(ctx.ds, ctx.oracle, &self.opts)?;
        self.regions = rebuilt.satisfactory;
        // The dataset changed, so any memoized lazy materialization is for
        // a stale dataset: this backend is eager from here on.
        self.lazy = None;
        self.dim = rebuilt.dim;
        self.pending = 0;
        Ok(UpdateOutcome::Rebuilt)
    }
}

impl IndexBackend for ExactRegions {
    fn dim(&self) -> usize {
        self.dim + 1
    }

    fn suggest_unfair(&self, weights: &[f64], ctx: &QueryCtx<'_>) -> Result<Answer, FairRankError> {
        let regions = self.materialize(ctx.ds, ctx.oracle);
        let r = norm(weights);
        let (_, query_angles) = to_polar(weights);
        match closest_satisfactory_validated(regions, &query_angles, ctx.ds, ctx.oracle) {
            None => Ok(Answer::Infeasible),
            Some(res) => Ok(Answer::Suggested {
                weights: crate::backend::suggestion_weights(&res.angles, r),
                distance: res.distance,
            }),
        }
    }

    // Region identity is certified only for *satisfactory* regions, and
    // only when the stored arrangement is trustworthy: `d ≤ 3` (beyond
    // that the linearized hyperplanes merely approximate the curved
    // exchange surfaces — the same reason `known_fairness` stays
    // `None`), no deferred updates pending (the region list would be
    // stale), and no hyperplane truncation or top-k pruning (a capped
    // or pruned arrangement under-splits, so one stored region can span
    // different verdicts). Unfair queries get no key: their NLP answers
    // vary continuously across a region, so there is nothing
    // region-constant to certify beyond what a fair-region hit gives.
    // A lazy backend additionally refuses until its first materializing
    // query has run — there is no arrangement to certify against yet.
    fn region_of(&self, weights: &[f64]) -> Option<RegionKey> {
        let regions = self.materialized()?;
        if self.dim() > 3
            || self.pending > 0
            || self.opts.max_hyperplanes.is_some()
            || self.opts.prune_top_k
        {
            return None;
        }
        let (_, query_angles) = to_polar(weights);
        // First containing region, with the same containment predicate
        // (and tolerance) as `closest_satisfactory`'s distance-zero quick
        // exit — the two must agree on what "inside" means.
        regions
            .iter()
            .position(|region| {
                region
                    .constraints
                    .iter()
                    .all(|c| c.satisfied(&query_angles, 1e-9))
            })
            .map(|i| RegionKey::new(REGION_MD_FAIR, i as u64))
    }

    // The exact arrangement has no sound in-place maintenance (every
    // region boundary can move), so updates coalesce behind a threshold
    // and pay one deterministic reconstruction — identical to a
    // from-scratch build by [`sat_regions`] determinism.
    fn apply(
        &mut self,
        _update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<UpdateOutcome, FairRankError> {
        // Counters commit only on success ("on error the backend must be
        // left unchanged"): `rebuild` mutates nothing until
        // `sat_regions` has succeeded, and the update+rebuild pair lands
        // in one locked pass so concurrent stats readers never see one
        // half of the transition.
        let outcome = if self.pending + 1 >= self.rebuild_every {
            self.rebuild(ctx)?
        } else {
            self.pending += 1;
            UpdateOutcome::Deferred {
                pending: self.pending,
            }
        };
        self.counters
            .record(true, outcome == UpdateOutcome::Rebuilt);
        Ok(outcome)
    }

    fn flush(&mut self, ctx: &UpdateCtx<'_>) -> Result<UpdateOutcome, FairRankError> {
        if self.pending == 0 {
            return Ok(UpdateOutcome::Noop);
        }
        let outcome = self.rebuild(ctx)?;
        self.counters.record(false, true);
        Ok(outcome)
    }

    fn clone_box(&self) -> Option<Box<dyn IndexBackend>> {
        Some(Box::new(self.clone()))
    }

    fn has_pending_updates(&self) -> bool {
        self.pending > 0
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_REGIONS
    }

    // An unmaterialized lazy backend would encode an empty region list,
    // so `FairRanker::to_bytes` materializes before encoding.
    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_regions(self.regions(), self.dim)
    }

    fn stats(&self) -> BackendStats {
        let (updates, rebuilds) = self.counters.snapshot();
        BackendStats {
            kind: "exact-regions",
            artifacts: self.regions().len(),
            functions: Some(self.regions().len()),
            error_bound: Some(0.0),
            updates,
            rebuilds,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::FnOracle;

    #[test]
    fn backend_reports_weight_dimension() {
        let ds = generic::uniform(12, 3, 0.5, 3);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
        let backend = ExactRegions::new(r.satisfactory, r.dim);
        assert_eq!(backend.dim(), 3);
        let s = backend.stats();
        assert_eq!(s.kind, "exact-regions");
        assert_eq!(s.artifacts, backend.regions().len());
        assert_eq!(s.error_bound, Some(0.0));
        assert!(backend.known_fairness(&[1.0, 1.0, 1.0]).is_none());
    }
}
