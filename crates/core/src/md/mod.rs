//! The multi-dimensional case (paper §4): ordering-exchange hyperplanes in
//! angle coordinates, the arrangement of satisfactory regions, the exact
//! (baseline) online algorithm — and [`ExactRegions`], the §4 artifact
//! packaged as a serving backend.

pub mod baseline;
pub mod hyperpolar;
pub mod satregions;

pub use baseline::{closest_satisfactory, closest_satisfactory_validated, ClosestResult};
pub use hyperpolar::{exchange_hyperplane, exchange_hyperplanes};
pub use satregions::{sat_regions, SatRegion, SatRegions, SatRegionsOptions};

use fairrank_geometry::polar::to_polar;
use fairrank_geometry::vector::norm;

use crate::backend::{BackendStats, IndexBackend, QueryCtx, Suggestion};
use crate::error::FairRankError;

/// The §4 serving backend: the satisfactory regions of the exchange
/// arrangement, answered by MDBASELINE (one NLP per region) with oracle
/// re-validation — accurate but not interactive for large inputs; prefer
/// [`crate::approximate::ApproxGrid`] at scale.
///
/// Unlike the 2-D intervals this backend does *not* decide fairness from
/// the index: for `d > 3` the linearized exchange hyperplanes only
/// approximate the true curved exchange surfaces, so region membership
/// is not a trustworthy verdict and the oracle stays in the loop (both
/// for the fairness pre-check and for validating suggestions).
#[derive(Debug, Clone)]
pub struct ExactRegions {
    regions: Vec<SatRegion>,
    /// Number of angle coordinates (`d − 1`).
    dim: usize,
}

impl ExactRegions {
    /// Wrap the satisfactory regions of a [`SatRegions`] result for a
    /// `d`-attribute dataset (`d = angle_dim + 1`).
    #[must_use]
    pub fn new(regions: Vec<SatRegion>, angle_dim: usize) -> Self {
        ExactRegions {
            regions,
            dim: angle_dim,
        }
    }

    /// The satisfactory regions.
    #[must_use]
    pub fn regions(&self) -> &[SatRegion] {
        &self.regions
    }
}

impl IndexBackend for ExactRegions {
    fn dim(&self) -> usize {
        self.dim + 1
    }

    fn suggest_unfair(
        &self,
        weights: &[f64],
        ctx: &QueryCtx<'_>,
    ) -> Result<Suggestion, FairRankError> {
        let r = norm(weights);
        let (_, query_angles) = to_polar(weights);
        match closest_satisfactory_validated(&self.regions, &query_angles, ctx.ds, ctx.oracle) {
            None => Ok(Suggestion::Infeasible),
            Some(res) => Ok(Suggestion::Suggested {
                weights: crate::backend::suggestion_weights(&res.angles, r),
                distance: res.distance,
            }),
        }
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_REGIONS
    }

    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_regions(&self.regions, self.dim)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            kind: "exact-regions",
            artifacts: self.regions.len(),
            functions: Some(self.regions.len()),
            error_bound: Some(0.0),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::FnOracle;

    #[test]
    fn backend_reports_weight_dimension() {
        let ds = generic::uniform(12, 3, 0.5, 3);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
        let backend = ExactRegions::new(r.satisfactory, r.dim);
        assert_eq!(backend.dim(), 3);
        let s = backend.stats();
        assert_eq!(s.kind, "exact-regions");
        assert_eq!(s.artifacts, backend.regions().len());
        assert_eq!(s.error_bound, Some(0.0));
        assert!(backend.known_fairness(&[1.0, 1.0, 1.0]).is_none());
    }
}
