//! The multi-dimensional case (paper §4): ordering-exchange hyperplanes in
//! angle coordinates, the arrangement of satisfactory regions, and the
//! exact (baseline) online algorithm.

pub mod baseline;
pub mod hyperpolar;
pub mod satregions;

pub use baseline::{closest_satisfactory, closest_satisfactory_validated, ClosestResult};
pub use hyperpolar::{exchange_hyperplane, exchange_hyperplanes};
pub use satregions::{sat_regions, SatRegion, SatRegions, SatRegionsOptions};
