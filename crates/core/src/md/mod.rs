//! The multi-dimensional case (paper §4): ordering-exchange hyperplanes in
//! angle coordinates, the arrangement of satisfactory regions, the exact
//! (baseline) online algorithm — and [`ExactRegions`], the §4 artifact
//! packaged as a serving backend.

pub mod baseline;
pub mod hyperpolar;
pub mod satregions;

pub use baseline::{closest_satisfactory, closest_satisfactory_validated, ClosestResult};
pub use hyperpolar::{exchange_hyperplane, exchange_hyperplanes};
pub use satregions::{sat_regions, SatRegion, SatRegions, SatRegionsOptions};

use fairrank_geometry::polar::to_polar;
use fairrank_geometry::vector::norm;

use crate::backend::{Answer, BackendStats, IndexBackend, QueryCtx, RegionKey, SharedCounters};
use crate::error::FairRankError;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

/// [`RegionKey`] kind discriminant for a satisfactory arrangement
/// region (the only region family this backend can certify).
const REGION_MD_FAIR: u8 = 0;

/// The §4 serving backend: the satisfactory regions of the exchange
/// arrangement, answered by MDBASELINE (one NLP per region) with oracle
/// re-validation — accurate but not interactive for large inputs; prefer
/// [`crate::approximate::ApproxGrid`] at scale.
///
/// Unlike the 2-D intervals this backend does *not* decide fairness from
/// the index: for `d > 3` the linearized exchange hyperplanes only
/// approximate the true curved exchange surfaces, so region membership
/// is not a trustworthy verdict and the oracle stays in the loop (both
/// for the fairness pre-check and for validating suggestions).
#[derive(Debug, Clone)]
pub struct ExactRegions {
    regions: Vec<SatRegion>,
    /// Number of angle coordinates (`d − 1`).
    dim: usize,
    /// Options used when reconstructing the arrangement on updates.
    opts: SatRegionsOptions,
    /// Rebuild after this many coalesced updates (1 = immediately).
    rebuild_every: usize,
    /// Updates buffered since the last reconstruction.
    pending: usize,
    counters: SharedCounters,
}

impl ExactRegions {
    /// Wrap the satisfactory regions of a [`SatRegions`] result for a
    /// `d`-attribute dataset (`d = angle_dim + 1`). Updates rebuild
    /// immediately with default [`SatRegionsOptions`]; see
    /// [`ExactRegions::with_update_policy`].
    #[must_use]
    pub fn new(regions: Vec<SatRegion>, angle_dim: usize) -> Self {
        ExactRegions {
            regions,
            dim: angle_dim,
            opts: SatRegionsOptions::default(),
            rebuild_every: 1,
            pending: 0,
            counters: SharedCounters::new(),
        }
    }

    /// Configure how updates reconstruct the arrangement: the
    /// [`sat_regions`] options to rebuild with, and how many updates to
    /// coalesce before paying one reconstruction (`O(n²)` hyperplanes).
    /// While updates are deferred the region list is stale — answers are
    /// still re-validated against the live oracle (so suggestions remain
    /// *fair*), but may not be closest until the rebuild lands.
    ///
    /// `rebuild_every` is clamped to at least 1.
    #[must_use]
    pub fn with_update_policy(mut self, opts: SatRegionsOptions, rebuild_every: usize) -> Self {
        self.opts = opts;
        self.rebuild_every = rebuild_every.max(1);
        self
    }

    /// Updates buffered behind the coalescing threshold.
    #[must_use]
    pub fn pending_updates(&self) -> usize {
        self.pending
    }

    /// The satisfactory regions.
    #[must_use]
    pub fn regions(&self) -> &[SatRegion] {
        &self.regions
    }

    fn rebuild(&mut self, ctx: &UpdateCtx<'_>) -> Result<UpdateOutcome, FairRankError> {
        let rebuilt = sat_regions(ctx.ds, ctx.oracle, &self.opts)?;
        self.regions = rebuilt.satisfactory;
        self.dim = rebuilt.dim;
        self.pending = 0;
        Ok(UpdateOutcome::Rebuilt)
    }
}

impl IndexBackend for ExactRegions {
    fn dim(&self) -> usize {
        self.dim + 1
    }

    fn suggest_unfair(&self, weights: &[f64], ctx: &QueryCtx<'_>) -> Result<Answer, FairRankError> {
        let r = norm(weights);
        let (_, query_angles) = to_polar(weights);
        match closest_satisfactory_validated(&self.regions, &query_angles, ctx.ds, ctx.oracle) {
            None => Ok(Answer::Infeasible),
            Some(res) => Ok(Answer::Suggested {
                weights: crate::backend::suggestion_weights(&res.angles, r),
                distance: res.distance,
            }),
        }
    }

    // Region identity is certified only for *satisfactory* regions, and
    // only when the stored arrangement is trustworthy: `d ≤ 3` (beyond
    // that the linearized hyperplanes merely approximate the curved
    // exchange surfaces — the same reason `known_fairness` stays
    // `None`), no deferred updates pending (the region list would be
    // stale), and no hyperplane truncation or top-k pruning (a capped
    // or pruned arrangement under-splits, so one stored region can span
    // different verdicts). Unfair queries get no key: their NLP answers
    // vary continuously across a region, so there is nothing
    // region-constant to certify beyond what a fair-region hit gives.
    fn region_of(&self, weights: &[f64]) -> Option<RegionKey> {
        if self.dim() > 3
            || self.pending > 0
            || self.opts.max_hyperplanes.is_some()
            || self.opts.prune_top_k
        {
            return None;
        }
        let (_, query_angles) = to_polar(weights);
        // First containing region, with the same containment predicate
        // (and tolerance) as `closest_satisfactory`'s distance-zero quick
        // exit — the two must agree on what "inside" means.
        self.regions
            .iter()
            .position(|region| {
                region
                    .constraints
                    .iter()
                    .all(|c| c.satisfied(&query_angles, 1e-9))
            })
            .map(|i| RegionKey::new(REGION_MD_FAIR, i as u64))
    }

    // The exact arrangement has no sound in-place maintenance (every
    // region boundary can move), so updates coalesce behind a threshold
    // and pay one deterministic reconstruction — identical to a
    // from-scratch build by [`sat_regions`] determinism.
    fn apply(
        &mut self,
        _update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<UpdateOutcome, FairRankError> {
        // Counters commit only on success ("on error the backend must be
        // left unchanged"): `rebuild` mutates nothing until
        // `sat_regions` has succeeded, and the update+rebuild pair lands
        // in one locked pass so concurrent stats readers never see one
        // half of the transition.
        let outcome = if self.pending + 1 >= self.rebuild_every {
            self.rebuild(ctx)?
        } else {
            self.pending += 1;
            UpdateOutcome::Deferred {
                pending: self.pending,
            }
        };
        self.counters
            .record(true, outcome == UpdateOutcome::Rebuilt);
        Ok(outcome)
    }

    fn flush(&mut self, ctx: &UpdateCtx<'_>) -> Result<UpdateOutcome, FairRankError> {
        if self.pending == 0 {
            return Ok(UpdateOutcome::Noop);
        }
        let outcome = self.rebuild(ctx)?;
        self.counters.record(false, true);
        Ok(outcome)
    }

    fn clone_box(&self) -> Option<Box<dyn IndexBackend>> {
        Some(Box::new(self.clone()))
    }

    fn has_pending_updates(&self) -> bool {
        self.pending > 0
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_REGIONS
    }

    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_regions(&self.regions, self.dim)
    }

    fn stats(&self) -> BackendStats {
        let (updates, rebuilds) = self.counters.snapshot();
        BackendStats {
            kind: "exact-regions",
            artifacts: self.regions.len(),
            functions: Some(self.regions.len()),
            error_bound: Some(0.0),
            updates,
            rebuilds,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::FnOracle;

    #[test]
    fn backend_reports_weight_dimension() {
        let ds = generic::uniform(12, 3, 0.5, 3);
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
        let backend = ExactRegions::new(r.satisfactory, r.dim);
        assert_eq!(backend.dim(), 3);
        let s = backend.stats();
        assert_eq!(s.kind, "exact-regions");
        assert_eq!(s.artifacts, backend.regions().len());
        assert_eq!(s.error_bound, Some(0.0));
        assert!(backend.known_fairness(&[1.0, 1.0, 1.0]).is_none());
    }
}
