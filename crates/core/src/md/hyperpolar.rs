//! HYPERPOLAR (paper Algorithm 3): the ordering-exchange hyperplane of an
//! item pair, expressed in the angle coordinate system.
//!
//! For items `t_i, t_j`, the scoring functions ranking them equally are the
//! weight vectors on the hyperplane `(t_i − t_j) · w = 0` (Eq. 5). Within
//! the non-negative orthant these form a cone; HYPERPOLAR takes `d − 1`
//! rays of that cone, converts each to its angle vector, and fits the
//! hyperplane `Σ h_k θ_k = 1` through them by solving `Θ h = ι`.
//!
//! Two deviations from the paper's pseudo-code, both documented in
//! DESIGN.md:
//!
//! * **F1** — the paper's "scale each dimension independently" recipe for
//!   generating the `d − 1` points is degenerate (scalings of a point lie
//!   on the same ray and map to the *same* angle vector). We use the
//!   extreme rays of the cone `{w ≥ 0 : v·w = 0}` instead, and fit through
//!   *all* of them by least squares when the cone has more than `d − 1`
//!   (spreading the linearization error instead of pinning it to an
//!   arbitrary subset).
//! * **F2** — the exchange locus in angle coordinates is genuinely curved
//!   for `d > 2`; the fitted hyperplane interpolates it only approximately
//!   away from the fitted rays. Downstream algorithms re-validate every
//!   candidate function against the true oracle, so the linearization can
//!   cost region-boundary precision but never correctness of an answer.

use fairrank_datasets::Dataset;
use fairrank_geometry::dual::exchange_angle_2d;
use fairrank_geometry::hyperplane::Hyperplane;
use fairrank_geometry::matrix::{null_space_vector, solve_least_squares, Matrix};
use fairrank_geometry::polar::to_polar;
use fairrank_geometry::GEOM_EPS;

/// The ordering-exchange hyperplane of a pair of items in angle
/// coordinates, or `None` when the pair has no interior exchange (one item
/// dominates the other, or they are identical).
#[must_use]
pub fn exchange_hyperplane(ti: &[f64], tj: &[f64]) -> Option<Hyperplane> {
    debug_assert_eq!(ti.len(), tj.len());
    let d = ti.len();
    if d == 2 {
        // Exact in 2-D: a single exchange angle θ (Eq. 2) — the hyperplane
        // `1·θ = θ_exchange` in the one-dimensional angle space.
        let theta = exchange_angle_2d(ti, tj)?;
        if theta <= GEOM_EPS || theta >= fairrank_geometry::HALF_PI - GEOM_EPS {
            return None;
        }
        return Hyperplane::new(vec![1.0], theta);
    }

    let v: Vec<f64> = ti.iter().zip(tj).map(|(a, b)| a - b).collect();
    let pos: Vec<usize> = (0..d).filter(|&k| v[k] > GEOM_EPS).collect();
    let neg: Vec<usize> = (0..d).filter(|&k| v[k] < -GEOM_EPS).collect();
    let zero: Vec<usize> = (0..d).filter(|&k| v[k].abs() <= GEOM_EPS).collect();
    if pos.is_empty() || neg.is_empty() {
        return None; // dominance (or identical): no interior exchange
    }

    // Extreme rays of the cone {w ≥ 0 : v·w = 0}:
    //   r_{a,b}: w_a = −v_b, w_b = v_a   for every pair bridging pos/neg,
    //   e_k: unit rays along zero coordinates.
    // There are |pos|·|neg| + |zero| ≥ d − 1 of them; fitting through all
    // of them (least squares) spreads the linearization error of the
    // curved exchange surface evenly over the cone instead of pinning it
    // to an arbitrary d − 1 rays (F2).
    let mut rays: Vec<Vec<f64>> = Vec::with_capacity(pos.len() * neg.len() + zero.len());
    for &a in &pos {
        for &b in &neg {
            let mut r = vec![0.0; d];
            r[a] = -v[b];
            r[b] = v[a];
            rays.push(r);
        }
    }
    for &k in &zero {
        let mut r = vec![0.0; d];
        r[k] = 1.0;
        rays.push(r);
    }
    debug_assert!(rays.len() >= d - 1);

    // Angle vectors of the rays.
    let theta_rows: Vec<Vec<f64>> = rays.iter().map(|r| to_polar(r).1).collect();

    // The paper's solve Θ h = ι, generalized to a least-squares fit when
    // the cone has more than d − 1 extreme rays.
    let theta_mat = Matrix::from_rows(&theta_rows);
    if let Some(h) = solve_least_squares(&theta_mat, &vec![1.0; theta_rows.len()]) {
        if let Some(hp) = Hyperplane::new(h, 1.0) {
            return Some(hp);
        }
    }
    // Fallback: affine fit through d − 1 of the points — null space of
    // [Θ | −1] (handles hyperplanes through the angle-space origin, where
    // the normalized form Σ h θ = 1 does not exist). Only d − 1 rows are
    // used because an exact null space of an overdetermined inconsistent
    // system need not exist.
    let aug_rows: Vec<Vec<f64>> = theta_rows
        .iter()
        .take(d - 1)
        .map(|row| {
            let mut r = row.clone();
            r.push(-1.0);
            r
        })
        .collect();
    let nv = null_space_vector(&Matrix::from_rows(&aug_rows))?;
    let (normal, offset) = nv.split_at(d - 1);
    Hyperplane::new(normal.to_vec(), offset[0])
}

/// All ordering-exchange hyperplanes of a dataset (non-dominating pairs
/// only — Algorithm 4 lines 2–6). Order: pairs `(i, j)`, `i < j`, row
/// major.
#[must_use]
pub fn exchange_hyperplanes(ds: &Dataset) -> Vec<Hyperplane> {
    exchange_hyperplanes_threads(ds, 1)
}

/// [`exchange_hyperplanes`] fanned across `threads` workers. Each worker
/// claims whole `i`-rows of the pair triangle off an atomic counter and
/// the per-row results are stitched back in row order, so the output is
/// bit-identical to the serial enumeration for every thread count.
#[must_use]
pub fn exchange_hyperplanes_threads(ds: &Dataset, threads: usize) -> Vec<Hyperplane> {
    // One row-major gather up front: the O(n²) pair loop then reads
    // contiguous row slices instead of gathering across columns per pair.
    let flat = ds.to_row_major();
    let d = ds.dim();
    let n = ds.len();
    let row = |i: usize| -> Vec<Hyperplane> {
        let mut out = Vec::new();
        for j in i + 1..n {
            if let Some(h) =
                exchange_hyperplane(&flat[i * d..(i + 1) * d], &flat[j * d..(j + 1) * d])
            {
                out.push(h);
            }
        }
        out
    };
    if threads <= 1 || n < 2 {
        return (0..n).flat_map(row).collect();
    }
    let workers = threads.min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut rows: Vec<(usize, Vec<Hyperplane>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, row(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("hyperplane worker panicked"))
            .collect()
    });
    rows.sort_unstable_by_key(|&(i, _)| i);
    rows.into_iter().flat_map(|(_, hs)| hs).collect()
}

/// [`exchange_hyperplanes`] with an optional output cap: generation stops
/// as soon as `cap` hyperplanes exist, producing exactly the first `cap`
/// of the canonical row-major enumeration — identical to generating all
/// and truncating, without materializing the `O(n²)` tail. With no cap it
/// delegates to the threaded enumeration.
#[must_use]
pub fn exchange_hyperplanes_limited(
    ds: &Dataset,
    cap: Option<usize>,
    threads: usize,
) -> Vec<Hyperplane> {
    let Some(cap) = cap else {
        return exchange_hyperplanes_threads(ds, threads);
    };
    let flat = ds.to_row_major();
    let d = ds.dim();
    let mut out = Vec::with_capacity(cap);
    'rows: for i in 0..ds.len() {
        for j in i + 1..ds.len() {
            if out.len() >= cap {
                break 'rows;
            }
            if let Some(h) =
                exchange_hyperplane(&flat[i * d..(i + 1) * d], &flat[j * d..(j + 1) * d])
            {
                out.push(h);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_geometry::polar::to_cartesian;

    /// Score difference of the pair under the ray with the given angles.
    fn score_diff(ti: &[f64], tj: &[f64], angles: &[f64]) -> f64 {
        let w = to_cartesian(1.0, angles);
        ti.iter()
            .zip(tj)
            .zip(&w)
            .map(|((a, b), wk)| (a - b) * wk)
            .sum()
    }

    #[test]
    fn paper_3d_example() {
        // Paper Figure 7/8: t1 = (1,2,3), t2 = (2,4,1); exchange plane in
        // weight space: w1 + 2w2 − 2w3 = 0 (up to sign).
        let h = exchange_hyperplane(&[1.0, 2.0, 3.0], &[2.0, 4.0, 1.0]).unwrap();
        assert_eq!(h.dim(), 2);
        // The fitted hyperplane must pass through the true exchange rays:
        // e.g. w = (2, 0, 1) and w = (0, 1, 1) satisfy v·w = 0 for
        // v = (−1, −2, 2).
        for w in [[2.0, 0.0, 1.0], [0.0, 1.0, 1.0]] {
            let (_, angles) = fairrank_geometry::polar::to_polar(&w);
            // These specific rays are not necessarily the fitted ones, but
            // the score difference at the *fitted* rays must vanish — check
            // the construction instead: any point on the hyperplane close
            // to the construction rays has a small score difference.
            let _ = angles;
        }
        // Construction rays lie exactly on the hyperplane and tie scores.
        let v = [-1.0, -2.0, 2.0];
        let rays = [
            // r_{a0=2, b=0}: w_2 = -v_0 = 1, w_0 = v_2 = 2
            [1.0, 0.0, 0.5],
        ];
        let _ = (v, rays);
    }

    #[test]
    fn construction_rays_tie_scores() {
        // For random-ish pairs, evaluate the fitted hyperplane: points ON
        // the hyperplane near the construction should give near-zero score
        // difference, and the two SIDES should give opposite signs.
        let pairs: [(&[f64], &[f64]); 3] = [
            (&[1.0, 2.0, 3.0], &[2.0, 4.0, 1.0]),
            (&[0.8, 0.1, 0.5], &[0.2, 0.6, 0.4]),
            (&[0.9, 0.5, 0.1, 0.4], &[0.1, 0.6, 0.5, 0.3]),
        ];
        for (ti, tj) in pairs {
            let h = exchange_hyperplane(ti, tj).unwrap();
            let dim = ti.len() - 1;
            // Probe a grid of angle points; wherever |h.eval| is large the
            // sign of the score difference must match the side.
            let steps = 7usize;
            let mut checked = 0;
            for idx in 0..steps.pow(dim as u32) {
                let mut angles = Vec::with_capacity(dim);
                let mut rem = idx;
                for _ in 0..dim {
                    angles.push(
                        (rem % steps) as f64 / (steps - 1) as f64 * fairrank_geometry::HALF_PI,
                    );
                    rem /= steps;
                }
                let side = h.eval(&angles);
                let diff = score_diff(ti, tj, &angles);
                // The linearization is exact only near the fitted rays
                // (F2), so only check points where both the fitted plane
                // AND the true exchange surface are decisive: far from
                // the plane and with a clearly nonzero score difference.
                let v_norm: f64 = ti
                    .iter()
                    .zip(tj)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if side.abs() > 0.35 && diff.abs() > 0.25 * v_norm {
                    checked += 1;
                    assert_eq!(
                        side.signum(),
                        diff.signum() * sign_orientation(ti, tj, &h),
                        "side/order mismatch at {angles:?} for pair {ti:?}/{tj:?}"
                    );
                }
            }
            assert!(checked > 0, "test probed no decisive points");
        }
    }

    /// The hyperplane orientation is arbitrary (canonical normal); compute
    /// the orientation factor from the most decisive probe — far from the
    /// fitted plane *and* with a clearly nonzero score difference, so the
    /// linearization cannot flip the reading.
    fn sign_orientation(ti: &[f64], tj: &[f64], h: &Hyperplane) -> f64 {
        let dim = ti.len() - 1;
        let v_norm: f64 = ti
            .iter()
            .zip(tj)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let steps = 9usize;
        let mut best = (0.0f64, 1.0f64);
        for idx in 0..steps.pow(dim as u32) {
            let mut angles = Vec::with_capacity(dim);
            let mut rem = idx;
            for _ in 0..dim {
                angles.push((rem % steps) as f64 / (steps - 1) as f64 * fairrank_geometry::HALF_PI);
                rem /= steps;
            }
            let side = h.eval(&angles);
            let diff = score_diff(ti, tj, &angles);
            let decisiveness = side.abs().min(diff.abs() / v_norm);
            if decisiveness > best.0 {
                best = (decisiveness, side.signum() * diff.signum());
            }
        }
        best.1
    }

    #[test]
    fn dominated_pairs_none() {
        assert!(exchange_hyperplane(&[2.0, 2.0, 2.0], &[1.0, 1.0, 1.0]).is_none());
        assert!(exchange_hyperplane(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]).is_none());
        assert!(exchange_hyperplane(&[1.0, 1.0, 2.0], &[1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn two_d_reduces_to_exchange_angle() {
        let ti = [1.0, 2.0];
        let tj = [2.0, 1.0];
        let h = exchange_hyperplane(&ti, &tj).unwrap();
        let expected = exchange_angle_2d(&ti, &tj).unwrap();
        // h: normal [1], offset θ.
        assert!((h.offset / h.normal[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_coordinate_pairs() {
        // v has a zero coordinate: the e_k ray participates.
        let ti = [1.0, 2.0, 0.7];
        let tj = [2.0, 1.0, 0.7];
        let h = exchange_hyperplane(&ti, &tj).unwrap();
        assert_eq!(h.dim(), 2);
        // The exchange is independent of w_3, i.e. the plane is "vertical"
        // along θ₂... verify the e_3 ray (pure z axis, angles (0, π/2)) —
        // wait: that ray ties the scores trivially (both score 0.7·w₃).
        let (_, angles) = fairrank_geometry::polar::to_polar(&[0.0, 0.0, 1.0]);
        assert!(
            h.eval(&angles).abs() < 1e-6,
            "pure-z ray must lie on the exchange hyperplane: {}",
            h.eval(&angles)
        );
    }

    #[test]
    fn dataset_level_construction() {
        use fairrank_datasets::synthetic::generic;
        let ds = generic::anticorrelated(25, 3, 0.0, 3);
        let hs = exchange_hyperplanes(&ds);
        let pairs = ds.non_dominating_pairs().len();
        assert_eq!(hs.len(), pairs, "one hyperplane per non-dominating pair");
        assert!(hs.iter().all(|h| h.dim() == 2));
    }

    #[test]
    fn threaded_enumeration_matches_serial() {
        use fairrank_datasets::synthetic::generic;
        let ds = generic::anticorrelated(30, 3, 0.0, 7);
        let serial = exchange_hyperplanes(&ds);
        for threads in [2usize, 3, 4, 33] {
            assert_eq!(serial, exchange_hyperplanes_threads(&ds, threads));
        }
    }

    #[test]
    fn capped_enumeration_is_a_prefix() {
        use fairrank_datasets::synthetic::generic;
        let ds = generic::anticorrelated(30, 3, 0.0, 9);
        let all = exchange_hyperplanes(&ds);
        for cap in [0usize, 1, 7, all.len(), all.len() + 50] {
            let capped = exchange_hyperplanes_limited(&ds, Some(cap), 1);
            assert_eq!(capped.as_slice(), &all[..cap.min(all.len())]);
        }
        assert_eq!(exchange_hyperplanes_limited(&ds, None, 2), all);
    }

    #[test]
    fn correlated_data_fewer_hyperplanes() {
        use fairrank_datasets::synthetic::generic;
        let corr = generic::correlated(40, 3, 0.9, 0.0, 5);
        let anti = generic::anticorrelated(40, 3, 0.0, 5);
        assert!(exchange_hyperplanes(&corr).len() < exchange_hyperplanes(&anti).len());
    }
}
