//! SATREGIONS (paper Algorithm 4) with the arrangement tree (Algorithm 5).
//!
//! Constructs the arrangement of ordering-exchange hyperplanes in the angle
//! coordinate system, probes one strictly-interior function per region, and
//! keeps the regions whose ranking the fairness oracle accepts. Both the
//! flat incremental arrangement (the paper's baseline) and the
//! arrangement-tree index are supported — Figure 18 of the paper measures
//! exactly this choice.

use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::arrangement::Arrangement;
use fairrank_geometry::arrangement_tree::ArrangementTree;
use fairrank_lp::Constraint;

use crate::error::FairRankError;
use crate::md::hyperpolar::exchange_hyperplanes_limited;
use crate::probes;
use crate::pruning;

/// One satisfactory region of the arrangement.
#[derive(Debug, Clone)]
pub struct SatRegion {
    /// Half-space constraints describing the region (box constraints are
    /// implicit: every angle lies in `[0, π/2]`).
    pub constraints: Vec<Constraint>,
    /// A function strictly inside the region whose ranking the oracle
    /// accepted.
    pub witness: Vec<f64>,
}

/// Options for [`sat_regions`].
#[derive(Debug, Clone)]
pub struct SatRegionsOptions {
    /// Use the arrangement tree (Algorithm 5) instead of the flat linear
    /// region scan. Same output, different construction cost.
    pub use_tree: bool,
    /// Cap on the number of hyperplanes inserted (benchmark sweeps insert
    /// prefixes, as the paper's Figure 18/19 do). `None` = all.
    pub max_hyperplanes: Option<usize>,
    /// When the oracle exposes a top-k bound, drop items outside the first
    /// k dominance layers before computing exchanges (paper §8).
    pub prune_top_k: bool,
    /// Worker count for hyperplane enumeration and per-region witness
    /// verification (resolved per
    /// [`crate::parallel::resolve_build_threads`]; `Some(0)` = all cores,
    /// `None` = the `FAIRRANK_BUILD_THREADS` environment variable, else
    /// serial). Output is bit-identical for every value.
    pub threads: Option<usize>,
}

impl Default for SatRegionsOptions {
    fn default() -> Self {
        SatRegionsOptions {
            use_tree: true,
            max_hyperplanes: None,
            prune_top_k: false,
            threads: None,
        }
    }
}

/// Output of the offline multi-dimensional preprocessing.
#[derive(Debug, Clone)]
pub struct SatRegions {
    /// Number of angle coordinates (`d − 1`).
    pub dim: usize,
    /// Satisfactory regions with their witnesses.
    pub satisfactory: Vec<SatRegion>,
    /// Total number of regions in the arrangement.
    pub region_count: usize,
    /// Number of exchange hyperplanes inserted.
    pub hyperplane_count: usize,
    /// Number of oracle invocations.
    pub oracle_calls: u64,
    /// Number of items that survived top-k pruning (equals `n` when
    /// pruning is off).
    pub items_used: usize,
}

/// Run the offline phase: build the arrangement and identify satisfactory
/// regions.
///
/// # Errors
/// [`FairRankError::TooFewAttributes`] for datasets with fewer than two
/// scoring attributes.
pub fn sat_regions(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    opts: &SatRegionsOptions,
) -> Result<SatRegions, FairRankError> {
    if ds.dim() < 2 {
        return Err(FairRankError::TooFewAttributes);
    }
    let dim = ds.dim() - 1;
    let threads = crate::parallel::resolve_build_threads(opts.threads);

    // §8 pruning: exchanges among items that can never reach the top-k are
    // irrelevant to a top-k-bounded oracle. A hyperplane cap stops the
    // enumeration early — the capped output is exactly the first `cap`
    // hyperplanes of the canonical order, so it equals the old
    // generate-all-then-truncate behavior without the O(n²) tail.
    let phase = crate::buildtel::PhaseTimer::start("md_exact", "hyperplanes");
    let (hyperplanes, items_used) = match (opts.prune_top_k, oracle.top_k_bound()) {
        (true, Some(k)) => {
            let keep = pruning::top_k_candidate_items(ds, k);
            let sub = ds.subset(&keep);
            (
                exchange_hyperplanes_limited(&sub, opts.max_hyperplanes, threads),
                keep.len(),
            )
        }
        _ => (
            exchange_hyperplanes_limited(ds, opts.max_hyperplanes, threads),
            ds.len(),
        ),
    };
    let hyperplane_count = hyperplanes.len();
    phase.finish();

    // Region enumeration: (constraints, witness) pairs.
    let phase = crate::buildtel::PhaseTimer::start("md_exact", "regions");
    let (witnesses, region_count) = if opts.use_tree {
        let mut tree = ArrangementTree::new(dim);
        for h in &hyperplanes {
            tree.insert(h);
        }
        (tree.region_witnesses(), tree.region_count())
    } else {
        let mut arr = Arrangement::new(dim);
        for h in hyperplanes {
            arr.insert(h);
        }
        let mut out = Vec::with_capacity(arr.region_count());
        for rid in arr.region_ids() {
            if let Some(w) = arr.interior_point_of(rid) {
                out.push((arr.constraints_of(rid), w));
            }
        }
        (out, arr.region_count())
    };
    phase.finish();

    // Oracle pass: keep satisfactory regions (Algorithm 4 lines 20–26).
    // Witness probes run through the batched pipeline — workspace-backed
    // partial ranking plus is_satisfactory_batch — fanned across the
    // worker pool, with verdicts (and the per-witness call count)
    // identical to serial probing.
    let phase = crate::buildtel::PhaseTimer::start("md_exact", "verify");
    let witness_angles: Vec<&[f64]> = witnesses.iter().map(|(_, w)| w.as_slice()).collect();
    let verdicts = probes::batch_verdicts_threaded(ds, oracle, &witness_angles, threads);
    phase.finish();
    let oracle_calls = verdicts.len() as u64;
    let satisfactory = witnesses
        .into_iter()
        .zip(verdicts)
        .filter(|(_, ok)| *ok)
        .map(|((constraints, witness), _)| SatRegion {
            constraints,
            witness,
        })
        .collect();

    Ok(SatRegions {
        dim,
        satisfactory,
        region_count,
        hyperplane_count,
        oracle_calls,
        items_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FnOracle, Proportionality};
    use fairrank_geometry::polar::to_cartesian;

    fn small_ds() -> Dataset {
        generic::anticorrelated(12, 3, 0.8, 21)
    }

    #[test]
    fn too_few_attributes_rejected() {
        let ds = Dataset::from_rows(vec!["a".into()], &[vec![1.0]]).unwrap();
        let o = FnOracle::new("always", |_: &[u32]| true);
        assert!(matches!(
            sat_regions(&ds, &o, &SatRegionsOptions::default()),
            Err(FairRankError::TooFewAttributes)
        ));
    }

    #[test]
    fn always_satisfactory_keeps_all_regions() {
        let ds = small_ds();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
        assert_eq!(r.satisfactory.len(), r.region_count);
        assert_eq!(r.oracle_calls as usize, r.region_count);
        assert!(r.region_count > 1, "hyperplanes should split the space");
    }

    #[test]
    fn never_satisfactory_keeps_none() {
        let ds = small_ds();
        let o = FnOracle::new("never", |_: &[u32]| false);
        let r = sat_regions(&ds, &o, &SatRegionsOptions::default()).unwrap();
        assert!(r.satisfactory.is_empty());
    }

    #[test]
    fn tree_and_flat_agree_on_region_count() {
        let ds = small_ds();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let tree = sat_regions(
            &ds,
            &o,
            &SatRegionsOptions {
                use_tree: true,
                ..Default::default()
            },
        )
        .unwrap();
        let flat = sat_regions(
            &ds,
            &o,
            &SatRegionsOptions {
                use_tree: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tree.region_count, flat.region_count);
        assert_eq!(tree.hyperplane_count, flat.hyperplane_count);
    }

    #[test]
    fn witnesses_are_genuinely_satisfactory() {
        let ds = generic::uniform(30, 3, 0.9, 7);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let r = sat_regions(&ds, &oracle, &SatRegionsOptions::default()).unwrap();
        use fairrank_fairness::FairnessOracle as _;
        for region in &r.satisfactory {
            let w = to_cartesian(1.0, &region.witness);
            assert!(
                oracle.is_satisfactory(&ds.rank(&w)),
                "stored witness is not satisfactory"
            );
            for c in &region.constraints {
                assert!(c.satisfied(&region.witness, 1e-9));
            }
        }
    }

    #[test]
    fn hyperplane_cap_respected() {
        let ds = small_ds();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = sat_regions(
            &ds,
            &o,
            &SatRegionsOptions {
                max_hyperplanes: Some(5),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.hyperplane_count, 5);
    }

    #[test]
    fn pruning_reduces_items_for_topk_oracle() {
        let ds = generic::uniform(60, 3, 0.5, 13);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 5).with_max_count(0, 3);
        let pruned = sat_regions(
            &ds,
            &oracle,
            &SatRegionsOptions {
                prune_top_k: true,
                max_hyperplanes: Some(200),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            pruned.items_used < 60,
            "pruning kept all {} items",
            pruned.items_used
        );
    }

    #[test]
    fn threaded_sat_regions_bit_identical_to_serial() {
        let ds = generic::uniform(30, 3, 0.9, 7);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let serial = sat_regions(&ds, &oracle, &SatRegionsOptions::default()).unwrap();
        for threads in [2usize, 3, 4] {
            let par = sat_regions(
                &ds,
                &oracle,
                &SatRegionsOptions {
                    threads: Some(threads),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(par.region_count, serial.region_count);
            assert_eq!(par.hyperplane_count, serial.hyperplane_count);
            assert_eq!(par.oracle_calls, serial.oracle_calls);
            assert_eq!(
                crate::persist::encode_regions(&par.satisfactory, par.dim),
                crate::persist::encode_regions(&serial.satisfactory, serial.dim),
                "t = {threads}"
            );
        }
    }

    #[test]
    fn two_attribute_dataset_works_in_1d_angle_space() {
        let ds = generic::uniform(15, 2, 0.9, 17);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 4).with_max_count(0, 2);
        let r = sat_regions(&ds, &oracle, &SatRegionsOptions::default()).unwrap();
        assert_eq!(r.dim, 1);
        // Regions partition [0, π/2]: count = hyperplanes (distinct cutting
        // angles) + 1 at most.
        assert!(r.region_count <= r.hyperplane_count + 1);
    }
}
