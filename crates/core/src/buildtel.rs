//! Offline-build timers, exported through the process-global telemetry
//! registry ([`fairrank_telemetry::global`]).
//!
//! Builds happen per process (or per replace), not per request, so
//! these take the registry lock on every record instead of caching
//! handles. Under the `telemetry-off` feature the [`Stopwatch`] is
//! inert and no family is ever registered — `/metrics` simply has no
//! `fairrank_build_*` series in that leg.
//!
//! Families:
//! * `fairrank_build_duration_us{backend}` — whole-build wall time per
//!   strategy dispatch;
//! * `fairrank_build_phase_duration_us{backend,phase}` — per-phase wall
//!   time inside each builder (2-D: `events`/`sweep`; exact: `hyperplanes`/
//!   `regions`/`verify`; approximate: `hyperplanes`/`cellplanes`/
//!   `markcells`/`coloring`).

use fairrank_telemetry::Stopwatch;

const PHASE_FAMILY: &str = "fairrank_build_phase_duration_us";
const PHASE_HELP: &str =
    "Microseconds spent in one offline index-build phase, by backend and phase.";
const TOTAL_FAMILY: &str = "fairrank_build_duration_us";
const TOTAL_HELP: &str = "Microseconds for one whole offline index build, by backend.";

/// Record one finished phase into the global registry.
fn record_phase(backend: &str, phase: &str, micros: u64) {
    fairrank_telemetry::global()
        .histogram(
            PHASE_FAMILY,
            PHASE_HELP,
            &[("backend", backend), ("phase", phase)],
        )
        .record(micros);
}

/// A running phase timer; [`finish`](PhaseTimer::finish) records it.
/// Inert (never registers anything) under `telemetry-off`.
pub(crate) struct PhaseTimer {
    sw: Stopwatch,
    backend: &'static str,
    phase: &'static str,
}

impl PhaseTimer {
    pub(crate) fn start(backend: &'static str, phase: &'static str) -> PhaseTimer {
        PhaseTimer {
            sw: Stopwatch::start(),
            backend,
            phase,
        }
    }

    pub(crate) fn finish(self) {
        if let Some(us) = self.sw.elapsed_us() {
            record_phase(self.backend, self.phase, us);
        }
    }
}

/// A running whole-build timer for one strategy dispatch.
pub(crate) struct BuildTimer {
    sw: Stopwatch,
    backend: &'static str,
}

impl BuildTimer {
    pub(crate) fn start(backend: &'static str) -> BuildTimer {
        BuildTimer {
            sw: Stopwatch::start(),
            backend,
        }
    }

    pub(crate) fn finish(self) {
        if let Some(us) = self.sw.elapsed_us() {
            fairrank_telemetry::global()
                .histogram(TOTAL_FAMILY, TOTAL_HELP, &[("backend", self.backend)])
                .record(us);
        }
    }
}

/// Mirror an already-measured phase duration (the approximate builder
/// keeps its own [`BuildStats`](crate::approximate::BuildStats) clocks;
/// this re-exports them without double-timing). Gated on the compiled
/// timing layer so the `telemetry-off` leg registers nothing.
pub(crate) fn mirror_phase(backend: &'static str, phase: &'static str, d: std::time::Duration) {
    if fairrank_telemetry::ENABLED {
        record_phase(backend, phase, d.as_micros() as u64);
    }
}
