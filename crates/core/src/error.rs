//! Error type for the public API.

use std::fmt;

use crate::persist::PersistError;

/// Errors raised by index construction and query answering.
///
/// `#[non_exhaustive]`: new failure modes (e.g. future backend kinds)
/// can be added without a breaking change; downstream matches need a
/// wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FairRankError {
    /// The dataset's attribute count does not match what the index
    /// expects (e.g. a 2-D index over a 5-attribute dataset).
    DimensionMismatch {
        /// Attribute count the operation expects.
        expected: usize,
        /// Attribute count found.
        found: usize,
    },
    /// A query weight vector is unusable: wrong arity, negative, NaN or
    /// all-zero.
    InvalidWeights(String),
    /// The operation requires at least two scoring attributes.
    TooFewAttributes,
    /// The dataset is empty.
    EmptyDataset,
    /// A persisted index could not be decoded or written; the payload
    /// carries the structured cause.
    Persist(PersistError),
    /// A [`DatasetUpdate`](crate::update::DatasetUpdate) is malformed for
    /// the dataset it targets (wrong arity, unknown item/group, …).
    InvalidUpdate(String),
    /// The serving backend does not implement live updates; rebuild the
    /// ranker instead. Carries the backend kind.
    UpdateUnsupported(String),
    /// A live update targeted a ranker whose index is shared with
    /// outstanding [`snapshot`](crate::FairRanker::snapshot)s, and the
    /// backend does not implement
    /// [`IndexBackend::clone_box`](crate::backend::IndexBackend::clone_box),
    /// so the copy-on-write fork that would keep those snapshots serving
    /// is impossible. Carries the backend kind. (All built-in backends
    /// implement `clone_box`; exclusive rankers are maintained in place
    /// and never hit this.)
    CloneUnsupported(String),
}

impl fmt::Display for FairRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairRankError::DimensionMismatch { expected, found } => {
                write!(f, "expected {expected} scoring attributes, found {found}")
            }
            FairRankError::InvalidWeights(msg) => write!(f, "invalid weight vector: {msg}"),
            FairRankError::TooFewAttributes => {
                write!(f, "ranking needs at least two scoring attributes")
            }
            FairRankError::EmptyDataset => write!(f, "dataset is empty"),
            // Same rendering as the pre-structured `Persist(String)`
            // variant: "index persistence: <cause>".
            FairRankError::Persist(e) => write!(f, "index persistence: {e}"),
            FairRankError::InvalidUpdate(msg) => write!(f, "invalid dataset update: {msg}"),
            FairRankError::UpdateUnsupported(kind) => {
                write!(f, "backend {kind:?} does not support live updates")
            }
            FairRankError::CloneUnsupported(kind) => {
                write!(
                    f,
                    "backend {kind:?} cannot be forked for a copy-on-write \
                     update while snapshots are outstanding"
                )
            }
        }
    }
}

impl std::error::Error for FairRankError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FairRankError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

/// Validate a query weight vector against the expected dimensionality.
///
/// # Errors
/// [`FairRankError::InvalidWeights`] or [`FairRankError::DimensionMismatch`].
pub fn validate_weights(weights: &[f64], expected_dim: usize) -> Result<(), FairRankError> {
    if weights.len() != expected_dim {
        return Err(FairRankError::DimensionMismatch {
            expected: expected_dim,
            found: weights.len(),
        });
    }
    if weights.iter().any(|w| !w.is_finite()) {
        return Err(FairRankError::InvalidWeights("non-finite component".into()));
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(FairRankError::InvalidWeights(
            "negative component (the ranking model requires w ≥ 0)".into(),
        ));
    }
    if weights.iter().all(|&w| w == 0.0) {
        return Err(FairRankError::InvalidWeights("zero vector".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_validation() {
        assert!(validate_weights(&[1.0, 0.5], 2).is_ok());
        assert!(matches!(
            validate_weights(&[1.0], 2),
            Err(FairRankError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            validate_weights(&[1.0, f64::NAN], 2),
            Err(FairRankError::InvalidWeights(_))
        ));
        assert!(matches!(
            validate_weights(&[1.0, -0.1], 2),
            Err(FairRankError::InvalidWeights(_))
        ));
        assert!(matches!(
            validate_weights(&[0.0, 0.0], 2),
            Err(FairRankError::InvalidWeights(_))
        ));
    }

    #[test]
    fn persist_variant_is_structured_with_stable_display() {
        let e = FairRankError::Persist(PersistError::ChecksumMismatch);
        // Rendering matches the historical `Persist(String)` output.
        assert_eq!(e.to_string(), "index persistence: index checksum mismatch");
        assert!(std::error::Error::source(&e).is_some());
        assert!(matches!(
            e,
            FairRankError::Persist(PersistError::ChecksumMismatch)
        ));
    }

    #[test]
    fn display_messages() {
        let e = FairRankError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(FairRankError::EmptyDataset.to_string().contains("empty"));
    }
}
