//! Live dataset updates: the types flowing through
//! [`FairRanker::update`](crate::FairRanker::update) and
//! [`IndexBackend::apply`](crate::backend::IndexBackend::apply).
//!
//! The paper builds its indexes once over a static database; a serving
//! system sees items inserted, removed and re-scored continuously. This
//! module is the update surface of the pluggable backend design: one
//! update description ([`DatasetUpdate`]), one maintenance context
//! ([`UpdateCtx`] — the pre- and post-update dataset snapshots plus the
//! rebound oracle), and one outcome report ([`UpdateOutcome`]) telling
//! the caller whether the index was maintained in place, reconstructed,
//! or left stale behind a coalescing threshold.
//!
//! The maintenance contract is strict: once an update (and any deferral
//! window) has settled, the backend must answer queries **identically**
//! to the same backend rebuilt from scratch on the post-update dataset —
//! property-tested in `tests/incremental_equivalence.rs`.

use fairrank_datasets::{Dataset, DatasetError};
use fairrank_fairness::FairnessOracle;

use crate::error::FairRankError;

/// One dataset mutation, as seen by [`FairRanker::update`](crate::FairRanker::update).
///
/// Item ids are dense `0..n`: an insert appends at id `n`, a removal
/// shifts the ids above the removed item down by one (every index and
/// oracle is renumbered consistently by the update machinery).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetUpdate {
    /// Append one item: a scoring vector of the dataset's arity plus one
    /// group id per type attribute (in [`Dataset::type_attributes`]
    /// order).
    Insert {
        /// Scoring attribute values (`len == ds.dim()`, finite).
        scores: Vec<f64>,
        /// Group id per type attribute (`len == ds.type_attributes().len()`).
        groups: Vec<u32>,
    },
    /// Remove the item with this id.
    Remove {
        /// Item id to remove.
        item: u32,
    },
    /// Replace one item's scoring vector (groups and id unchanged).
    Rescore {
        /// Item id to re-score.
        item: u32,
        /// New scoring attribute values (`len == ds.dim()`, finite).
        scores: Vec<f64>,
    },
}

impl DatasetUpdate {
    /// Validate this update against the dataset it is about to mutate.
    ///
    /// # Errors
    /// [`FairRankError::InvalidUpdate`] describing the mismatch.
    pub fn validate(&self, ds: &Dataset) -> Result<(), FairRankError> {
        let bad = |msg: String| Err(FairRankError::InvalidUpdate(msg));
        match self {
            DatasetUpdate::Insert { scores, groups } => {
                if scores.len() != ds.dim() {
                    return bad(format!(
                        "insert carries {} scores for a {}-attribute dataset",
                        scores.len(),
                        ds.dim()
                    ));
                }
                if scores.iter().any(|v| !v.is_finite()) {
                    return bad("insert carries a non-finite score".into());
                }
                if groups.len() != ds.type_attributes().len() {
                    return bad(format!(
                        "insert carries {} group ids for {} type attributes",
                        groups.len(),
                        ds.type_attributes().len()
                    ));
                }
                for (t, &g) in ds.type_attributes().iter().zip(groups) {
                    if g as usize >= t.group_count() {
                        return bad(format!(
                            "group id {g} outside {:?}'s {} groups",
                            t.name,
                            t.group_count()
                        ));
                    }
                }
                Ok(())
            }
            DatasetUpdate::Remove { item } => {
                if *item as usize >= ds.len() {
                    return bad(format!("item {item} out of range (n = {})", ds.len()));
                }
                if ds.len() == 1 {
                    return bad("removing the last item would empty the dataset".into());
                }
                Ok(())
            }
            DatasetUpdate::Rescore { item, scores } => {
                if *item as usize >= ds.len() {
                    return bad(format!("item {item} out of range (n = {})", ds.len()));
                }
                if scores.len() != ds.dim() {
                    return bad(format!(
                        "rescore carries {} scores for a {}-attribute dataset",
                        scores.len(),
                        ds.dim()
                    ));
                }
                if scores.iter().any(|v| !v.is_finite()) {
                    return bad("rescore carries a non-finite score".into());
                }
                Ok(())
            }
        }
    }

    /// Apply this (already validated) update to a dataset.
    pub(crate) fn apply_to(&self, ds: &mut Dataset) -> Result<(), DatasetError> {
        match self {
            DatasetUpdate::Insert { scores, groups } => ds.insert_row(scores, groups).map(|_| ()),
            DatasetUpdate::Remove { item } => ds.remove_row(*item as usize),
            DatasetUpdate::Rescore { item, scores } => ds.rescore_row(*item as usize, scores),
        }
    }
}

/// How a backend disposed of one update.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UpdateOutcome {
    /// The index was maintained in place — cheaper than a rebuild, and
    /// answers are already identical to a from-scratch reconstruction.
    Incremental,
    /// The backend reconstructed its index from the post-update dataset.
    Rebuilt,
    /// The update was buffered behind a coalescing threshold; `pending`
    /// updates are waiting. Until the threshold triggers a rebuild (or
    /// [`FairRanker::flush_updates`](crate::FairRanker::flush_updates)
    /// forces one), index answers may reflect the pre-update dataset —
    /// exact backends still re-validate suggestions against the live
    /// oracle, so deferred answers are *fair*, just not necessarily
    /// closest.
    Deferred {
        /// Number of updates buffered so far.
        pending: usize,
    },
    /// Nothing to do (e.g. a flush with no pending updates).
    Noop,
}

/// Everything a backend may consult while maintaining its index through
/// one update: the dataset as it was *before* the update (for removal
/// deltas), the dataset *after* it, and the (re-bound) fairness oracle.
pub struct UpdateCtx<'a> {
    /// Snapshot of the dataset before the update.
    pub old: &'a Dataset,
    /// The dataset after the update.
    pub ds: &'a Dataset,
    /// The fairness oracle, already re-bound to the post-update dataset
    /// (see [`FairnessOracle::rebind`]).
    pub oracle: &'a dyn FairnessOracle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;

    #[test]
    fn validation_catches_malformed_updates() {
        let ds = generic::uniform(10, 2, 0.5, 1);
        let ok = DatasetUpdate::Insert {
            scores: vec![0.5, 0.5],
            groups: vec![0],
        };
        assert!(ok.validate(&ds).is_ok());
        for bad in [
            DatasetUpdate::Insert {
                scores: vec![0.5],
                groups: vec![0],
            },
            DatasetUpdate::Insert {
                scores: vec![0.5, f64::NAN],
                groups: vec![0],
            },
            DatasetUpdate::Insert {
                scores: vec![0.5, 0.5],
                groups: vec![],
            },
            DatasetUpdate::Insert {
                scores: vec![0.5, 0.5],
                groups: vec![99],
            },
            DatasetUpdate::Remove { item: 10 },
            DatasetUpdate::Rescore {
                item: 11,
                scores: vec![0.5, 0.5],
            },
            DatasetUpdate::Rescore {
                item: 0,
                scores: vec![0.5],
            },
            DatasetUpdate::Rescore {
                item: 0,
                scores: vec![f64::INFINITY, 0.0],
            },
        ] {
            assert!(
                matches!(bad.validate(&ds), Err(FairRankError::InvalidUpdate(_))),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn last_item_removal_rejected() {
        let ds = generic::uniform(5, 2, 0.5, 2).subset(&[0]);
        assert!(DatasetUpdate::Remove { item: 0 }.validate(&ds).is_err());
    }
}
