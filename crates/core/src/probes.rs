//! Batched oracle probing: evaluate many candidate functions against the
//! real oracle with amortized ranking cost.
//!
//! Every offline phase ends the same way — a list of candidate functions
//! (angle vectors) whose induced rankings the oracle must accept or
//! reject. Evaluating them one at a time pays a fresh `O(n log n)` sort
//! plus two heap allocations per probe ([`Dataset::rank`]); this module
//! runs the same verdicts through a [`RankWorkspace`] (buffer reuse +
//! top-k partial ranking) and the oracle's batched entry point
//! ([`FairnessOracle::is_satisfactory_batch`]), in bounded-memory chunks.
//!
//! Verdicts are identical to the serial path by the trait contracts; the
//! equivalence is property-tested in `tests/batch_equivalence.rs`.

use fairrank_datasets::{Dataset, RankWorkspace};
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::polar::to_cartesian_into;

/// Upper bound on rankings materialized at once: large enough to
/// amortize per-batch oracle setup; the effective chunk size also
/// respects [`PROBE_BUFFER_BYTES`].
pub const PROBE_BATCH: usize = 64;

/// Soft cap on the flat ranking buffer. For a top-k-bounded oracle only
/// the k-prefix of each ranking is stored, so even DOT-scale inputs
/// (1.32M rows, k = n/10) stay within a few MB per chunk instead of
/// materializing `PROBE_BATCH` full permutations (~340 MB).
pub const PROBE_BUFFER_BYTES: usize = 4 << 20;

/// Oracle verdicts for a set of candidate angle vectors, batched.
///
/// Ranks each candidate's induced ordering (partially, when the oracle
/// exposes a [`top_k_bound`](FairnessOracle::top_k_bound)) into a reused
/// flat buffer and asks the oracle in memory-capped chunks. Returns one
/// verdict per candidate, in order. Each candidate counts as exactly one
/// oracle invocation, as with the serial path. Candidates are borrowed
/// (`&[f64]`, `Vec<f64>`, …), never copied.
#[must_use]
pub fn batch_verdicts<A: AsRef<[f64]>>(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    candidates: &[A],
) -> Vec<bool> {
    batch_verdicts_by(ds, oracle, candidates.len(), |i, out| {
        to_cartesian_into(1.0, candidates[i].as_ref(), out);
    })
}

/// The shared batched-probe pipeline: `weights_of(i, out)` appends the
/// weight vector of candidate `i` to `out`. Used by [`batch_verdicts`]
/// (angle candidates) and `FairRanker::respond_batch` (weight queries)
/// so the chunking/prefix logic exists once.
///
/// A top-k-bounded oracle only inspects the first `k` positions by
/// contract, so for those oracles each stored ranking is the exact
/// k-prefix of the full ranking rather than the whole permutation —
/// verdict-identical, and what keeps the buffer small at scale.
pub(crate) fn batch_verdicts_by<F>(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    count: usize,
    weights_of: F,
) -> Vec<bool>
where
    F: FnMut(usize, &mut Vec<f64>),
{
    batch_verdicts_by_with(ds, oracle, count, weights_of, |_, _, _| {})
}

/// The kernel behind [`batch_verdicts_by`] and
/// [`batch_verdicts_and_thresholds`]: `on_ranking(i, ranking, weights)`
/// observes each candidate's (possibly top-k-partial) ranking as it is
/// produced, before the chunk goes to the oracle.
fn batch_verdicts_by_with<F, H>(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    count: usize,
    mut weights_of: F,
    mut on_ranking: H,
) -> Vec<bool>
where
    F: FnMut(usize, &mut Vec<f64>),
    H: FnMut(usize, &[u32], &[f64]),
{
    let n = ds.len();
    let bound = oracle.top_k_bound();
    // Entries stored per ranking, and the chunk size the byte cap allows.
    let stride = match bound {
        Some(k) if k > 0 && k < n => k,
        _ => n,
    };
    let chunk_len =
        (PROBE_BUFFER_BYTES / (stride * std::mem::size_of::<u32>()).max(1)).clamp(1, PROBE_BATCH);
    let mut ws = RankWorkspace::with_capacity(n);
    let mut weights: Vec<f64> = Vec::with_capacity(ds.dim());
    let mut flat: Vec<u32> = Vec::new();
    let mut verdicts = Vec::with_capacity(count);
    let mut start = 0usize;
    while start < count {
        let end = (start + chunk_len).min(count);
        flat.clear();
        for i in start..end {
            weights.clear();
            weights_of(i, &mut weights);
            let ranking = ws.rank_with_bound(ds, &weights, bound);
            on_ranking(i, ranking, &weights);
            flat.extend_from_slice(&ranking[..stride]);
        }
        // `stride == 0` ⇔ the dataset is empty: every ranking is the
        // empty permutation (`chunks(0)` would panic, and chunking an
        // empty buffer would yield no rankings at all).
        let rankings: Vec<&[u32]> = if stride == 0 {
            vec![&[][..]; end - start]
        } else {
            flat.chunks(stride).collect()
        };
        let chunk_verdicts = oracle.is_satisfactory_batch(&rankings);
        // The length contract is prose-only on a public trait; fail loudly
        // rather than silently misalign verdicts with candidates.
        assert_eq!(
            chunk_verdicts.len(),
            rankings.len(),
            "is_satisfactory_batch must return one verdict per ranking ({})",
            oracle.describe()
        );
        verdicts.extend(chunk_verdicts);
        start = end;
    }
    verdicts
}

/// [`batch_verdicts`] fanned across `threads` workers: the candidate list
/// is split into contiguous chunks, each probed through its own
/// [`RankWorkspace`], and the per-chunk verdict vectors are concatenated
/// in chunk order — bit-identical to the serial pass (each candidate's
/// verdict depends only on that candidate) for every thread count.
#[must_use]
pub fn batch_verdicts_threaded<A: AsRef<[f64]> + Sync>(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    candidates: &[A],
    threads: usize,
) -> Vec<bool> {
    let chunks = crate::parallel::contiguous_chunks(candidates.len(), threads);
    if chunks.len() <= 1 {
        return batch_verdicts(ds, oracle, candidates);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| scope.spawn(move || batch_verdicts(ds, oracle, &candidates[r])))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("probe worker panicked"))
            .collect()
    })
}

/// Like [`batch_verdicts`], but also reports each candidate's *top-k
/// threshold score* — the score of the ranked `k`-th item under the
/// candidate's weights (`NaN` when the oracle exposes no usable top-k
/// bound). The incremental index-maintenance paths store the threshold
/// next to the verdict: a later insert/remove whose item scores strictly
/// below the threshold provably cannot change the verdict, so the probe
/// is skipped entirely.
pub(crate) fn batch_verdicts_and_thresholds<A: AsRef<[f64]>>(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    candidates: &[A],
) -> Vec<(bool, f64)> {
    let kth = match oracle.top_k_bound() {
        Some(k) if k > 0 && k <= ds.len() => k,
        _ => 0, // no usable bound → NaN thresholds
    };
    let mut thresholds = Vec::with_capacity(candidates.len());
    let verdicts = batch_verdicts_by_with(
        ds,
        oracle,
        candidates.len(),
        |i, out| to_cartesian_into(1.0, candidates[i].as_ref(), out),
        |_, ranking, weights| {
            thresholds.push(if kth > 0 {
                ds.score(weights, ranking[kth - 1] as usize)
            } else {
                f64::NAN
            });
        },
    );
    verdicts.into_iter().zip(thresholds).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{CountingOracle, FnOracle, Proportionality};
    use fairrank_geometry::polar::to_cartesian;

    #[test]
    fn batch_verdicts_match_serial_probing() {
        let ds = generic::uniform(40, 3, 0.8, 17);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 8).with_max_count(0, 4);
        let candidates: Vec<Vec<f64>> = (0..150)
            .map(|i| {
                vec![
                    (i as f64 + 0.5) / 150.0 * fairrank_geometry::HALF_PI,
                    ((i * 7) % 150) as f64 / 150.0 * fairrank_geometry::HALF_PI,
                ]
            })
            .collect();
        let batched = batch_verdicts(&ds, &oracle, &candidates);
        for (c, &v) in candidates.iter().zip(&batched) {
            let serial = oracle.is_satisfactory(&ds.rank(&to_cartesian(1.0, c)));
            assert_eq!(v, serial, "verdict mismatch at {c:?}");
        }
    }

    #[test]
    fn batch_verdicts_count_one_call_per_candidate() {
        let ds = generic::uniform(10, 2, 0.0, 3);
        let oracle = CountingOracle::new(FnOracle::new("always", |_: &[u32]| true));
        let candidates: Vec<Vec<f64>> = (0..PROBE_BATCH + 5).map(|_| vec![0.5]).collect();
        let verdicts = batch_verdicts(&ds, &oracle, &candidates);
        assert_eq!(verdicts.len(), candidates.len());
        assert_eq!(oracle.calls() as usize, candidates.len());
    }

    #[test]
    fn threaded_verdicts_match_serial() {
        let ds = generic::uniform(40, 3, 0.8, 19);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 8).with_max_count(0, 4);
        let candidates: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                vec![
                    (i as f64 + 0.5) / 90.0 * fairrank_geometry::HALF_PI,
                    ((i * 11) % 90) as f64 / 90.0 * fairrank_geometry::HALF_PI,
                ]
            })
            .collect();
        let serial = batch_verdicts(&ds, &oracle, &candidates);
        for threads in [1usize, 2, 3, 4, 100] {
            assert_eq!(
                serial,
                batch_verdicts_threaded(&ds, &oracle, &candidates, threads),
                "t = {threads}"
            );
        }
    }

    #[test]
    fn empty_candidates_yield_no_verdicts() {
        let ds = generic::uniform(5, 2, 0.0, 1);
        let oracle = FnOracle::new("always", |_: &[u32]| true);
        assert!(batch_verdicts::<Vec<f64>>(&ds, &oracle, &[]).is_empty());
    }

    #[test]
    fn empty_dataset_matches_serial_probing() {
        // An empty dataset is reachable through `subset(&[])`; the
        // batched path must return the oracle's verdict on the empty
        // ranking per candidate, exactly like serial probing.
        let ds = generic::uniform(5, 2, 0.0, 1).subset(&[]);
        assert_eq!(ds.len(), 0);
        let oracle = FnOracle::new("empty is fine", |r: &[u32]| r.is_empty());
        let candidates = [vec![0.3], vec![0.9], vec![1.2]];
        assert_eq!(
            batch_verdicts(&ds, &oracle, &candidates),
            vec![true; candidates.len()]
        );
    }

    #[test]
    fn thresholds_match_direct_ranking() {
        let ds = generic::uniform(30, 3, 0.8, 9);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 6).with_max_count(0, 3);
        let candidates: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    (i as f64 + 0.5) / 40.0 * fairrank_geometry::HALF_PI,
                    ((i * 3) % 40) as f64 / 40.0 * fairrank_geometry::HALF_PI,
                ]
            })
            .collect();
        let got = batch_verdicts_and_thresholds(&ds, &oracle, &candidates);
        let plain = batch_verdicts(&ds, &oracle, &candidates);
        for ((c, &(v, t)), &pv) in candidates.iter().zip(&got).zip(&plain) {
            assert_eq!(v, pv);
            let w = to_cartesian(1.0, c);
            let ranking = ds.rank(&w);
            let want = ds.score(&w, ranking[oracle.k() - 1] as usize);
            assert_eq!(t, want, "threshold mismatch at {c:?}");
        }
    }

    #[test]
    fn thresholds_nan_without_topk_bound() {
        let ds = generic::uniform(10, 2, 0.0, 3);
        let oracle = FnOracle::new("always", |_: &[u32]| true);
        let got = batch_verdicts_and_thresholds(&ds, &oracle, &[vec![0.5], vec![1.0]]);
        assert!(got.iter().all(|&(v, t)| v && t.is_nan()));
    }

    #[test]
    fn borrowed_candidates_accepted() {
        let ds = generic::uniform(5, 2, 0.0, 1);
        let oracle = FnOracle::new("always", |_: &[u32]| true);
        let owned = [vec![0.3], vec![0.9]];
        let borrowed: Vec<&[f64]> = owned.iter().map(Vec::as_slice).collect();
        assert_eq!(batch_verdicts(&ds, &oracle, &borrowed), vec![true, true]);
    }
}
