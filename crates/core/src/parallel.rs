//! Worker-count resolution and work partitioning shared by the offline
//! builders.
//!
//! Every parallel build path in this crate is **bit-identical** to its
//! serial reference — shards are merged in a canonical deterministic
//! order — so the worker count is a pure throughput knob, never a
//! semantics knob (gated by `tests/build_equivalence.rs`).
//!
//! Resolution order for a builder's thread request:
//!
//! 1. an explicit `Some(n)` (`n = 0` means "all available cores"),
//! 2. the `FAIRRANK_BUILD_THREADS` environment variable (same encoding),
//! 3. serial (`1`).
//!
//! The environment hook exists so an entire test or benchmark run can be
//! flipped to parallel builds without touching call sites — CI runs the
//! equivalence suites once serially and once with the variable set.

/// Environment variable consulted when a builder does not pin a worker
/// count explicitly. `0` (or unset) semantics as documented on
/// [`resolve_build_threads`].
pub const BUILD_THREADS_ENV: &str = "FAIRRANK_BUILD_THREADS";

/// Resolve a builder's requested worker count (see the module docs for
/// the resolution order).
#[must_use]
pub fn resolve_build_threads(requested: Option<usize>) -> usize {
    let requested = requested.or_else(|| {
        std::env::var(BUILD_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    });
    match requested {
        Some(0) => all_cores(),
        Some(n) => n,
        None => 1,
    }
}

/// `std::thread::available_parallelism`, defaulting to 1 when unknown.
#[must_use]
pub fn all_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Split `len` work items into at most `threads` contiguous, in-order
/// chunks of near-equal size. Always returns at least one (possibly
/// empty) chunk, so callers can treat "no work" and "one shard"
/// uniformly.
pub(crate) fn contiguous_chunks(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let t = threads.max(1).min(len.max(1));
    let per = len / t;
    let rem = len % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for s in 0..t {
        let take = per + usize::from(s < rem);
        out.push(start..start + take);
        start += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        for len in [0usize, 1, 2, 5, 16, 97] {
            for threads in [1usize, 2, 3, 4, 7, 100] {
                let chunks = contiguous_chunks(len, threads);
                assert!(!chunks.is_empty());
                assert!(chunks.len() <= threads.max(1));
                let mut expect = 0;
                for c in &chunks {
                    assert_eq!(c.start, expect, "len={len} threads={threads}");
                    assert!(c.end >= c.start);
                    expect = c.end;
                }
                assert_eq!(expect, len);
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<usize> = chunks.iter().map(std::ops::Range::len).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1);
            }
        }
    }

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_build_threads(Some(3)), 3);
        assert_eq!(resolve_build_threads(Some(0)), all_cores());
    }
}
