//! 2DRAYSWEEP (paper Algorithm 1): offline identification of the
//! satisfactory angular regions in two dimensions.
//!
//! The ray of every scoring function `f = w₁x + w₂y` sweeps from the
//! x-axis (`θ = 0`) to the y-axis (`θ = π/2`). The induced ranking changes
//! only at the *ordering exchanges* of non-dominating item pairs; between
//! consecutive exchanges the ranking — and the oracle verdict — is
//! constant. The sweep therefore:
//!
//! 1. computes the `O(n²)` exchange angles (Eq. 2),
//! 2. sorts them,
//! 3. walks sector by sector, swapping the two exchanged items (adjacent
//!    in the current ranking except at degenerate ties, where we re-rank —
//!    DESIGN.md F5), and
//! 4. asks the oracle once per sector, merging satisfactory sectors into
//!    maximal intervals.
//!
//! Two oracle paths are provided: the faithful black-box path (one oracle
//! call per sector — the paper's `O(n²(log n + O_n))` of Theorem 1) and an
//! incremental path for proportionality constraints where each swap
//! updates the verdict in `O(1)`.

use fairrank_datasets::{Dataset, RankWorkspace};
use fairrank_fairness::{Conjunction, FairnessOracle, Proportionality};
use fairrank_geometry::dual::exchange_angle_2d;
use fairrank_geometry::interval::AngularIntervals;
use fairrank_geometry::HALF_PI;

use crate::error::FairRankError;

/// Result of a 2-D ray sweep.
#[derive(Debug, Clone)]
pub struct RaySweepResult {
    /// Maximal satisfactory angular intervals, sorted — the index consumed
    /// by 2DONLINE.
    pub intervals: AngularIntervals,
    /// Number of ordering exchanges found (non-dominating pairs with an
    /// interior exchange). The Figure 17 series.
    pub exchange_count: usize,
    /// Number of swept sectors (distinct exchange angles + 1).
    pub sector_count: usize,
    /// Number of full black-box oracle invocations (0 on the incremental
    /// path after the initial seeding).
    pub oracle_calls: u64,
    /// Number of degenerate re-rank events (non-adjacent swaps).
    pub rerank_events: u64,
}

/// The ordering-exchange event of one item pair, if it has an interior
/// exchange. Exchanges at exactly 0 or π/2 are ties on an axis function;
/// they do not flip the interior ordering.
#[inline]
fn pair_event(x: &[f64], y: &[f64], i: u32, j: u32) -> Option<(f64, u32, u32)> {
    let (a, b) = (i as usize, j as usize);
    let theta = exchange_angle_2d(&[x[a], y[a]], &[x[b], y[b]])?;
    (theta > 1e-12 && theta < HALF_PI - 1e-12).then_some((theta, i, j))
}

/// The canonical event order: angle first, then the pair
/// lexicographically. Because [`exchange_events`] generates pairs in
/// lexicographic order and sorts *stably* by angle alone, sorting by
/// this full key reproduces its output exactly — which is what lets the
/// incremental index maintenance merge per-item events into a stored
/// list and land bit-identically on the from-scratch event order.
#[inline]
pub(crate) fn event_cmp(a: &(f64, u32, u32), b: &(f64, u32, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

/// Exchange events sorted by angle, each carrying the swapping pair.
pub(crate) fn exchange_events(ds: &Dataset) -> Vec<(f64, u32, u32)> {
    let (x, y) = (ds.column(0), ds.column(1));
    let mut events = Vec::new();
    for i in 0..ds.len() as u32 {
        for j in i + 1..ds.len() as u32 {
            events.extend(pair_event(x, y, i, j));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    events
}

/// The exchange events of one item `x` against every other item, in the
/// canonical [`event_cmp`] order — the event *delta* of inserting,
/// removing or re-scoring `x`.
pub(crate) fn item_events(ds: &Dataset, x: u32) -> Vec<(f64, u32, u32)> {
    let (cx, cy) = (ds.column(0), ds.column(1));
    let mut events = Vec::with_capacity(ds.len().saturating_sub(1));
    for j in 0..ds.len() as u32 {
        if j != x {
            events.extend(pair_event(cx, cy, j.min(x), j.max(x)));
        }
    }
    events.sort_by(event_cmp);
    events
}

/// Group consecutive events with (numerically) equal angles; returns the
/// half-open index ranges of each batch.
fn batches(events: &[(f64, u32, u32)]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=events.len() {
        if i == events.len() || events[i].0 - events[start].0 > 1e-12 {
            out.push(start..i);
            start = i;
        }
    }
    out
}

fn weights_at(theta: f64) -> [f64; 2] {
    [theta.cos(), theta.sin()]
}

/// Raw output of one sector walk: the merged satisfactory intervals plus
/// the per-sector verdict structure the incremental maintenance path
/// stores (`boundaries[i]` is the angle where sector `i` ends;
/// `verdicts` has one entry per sector, `boundaries.len() + 1` total).
pub(crate) struct SweepOutput {
    pub intervals: AngularIntervals,
    pub boundaries: Vec<f64>,
    pub verdicts: Vec<bool>,
    pub sector_count: usize,
    pub rerank_events: u64,
}

/// One shard's share of the sector walk: the satisfactory sectors,
/// boundaries and verdicts of a contiguous batch range, plus its
/// degenerate re-rank tally. Shards concatenate in shard order to
/// reproduce the serial walk's output exactly.
struct ShardOutput {
    sectors: Vec<(f64, f64)>,
    boundaries: Vec<f64>,
    verdicts: Vec<bool>,
    rerank_events: u64,
}

/// Walk the batches in `brange`, emitting one verdict per sector that
/// *ends* at one of those batches (plus the final sector up to π/2 when
/// `emit_final`). `sector_lo` is the lower angle of the first sector in
/// the range — `0` for the first shard, the previous shard's last batch
/// angle otherwise.
///
/// The shard seeds its ranking by a fresh sort strictly inside its first
/// sector (the midpoint of `sector_lo` and the first batch angle). Inside
/// a sector the ordering is strict except for angle-independent exact
/// ties (identical items), which the sort's index tie-break resolves the
/// same way at every interior angle — so the seeded ranking equals the
/// ranking the serial walk carries into that sector, and a sharded walk
/// is bit-identical to the serial one. This is the same invariant the
/// degenerate re-rank (DESIGN.md F5) has always relied on.
#[allow(clippy::too_many_arguments)]
fn sweep_range<F>(
    ds: &Dataset,
    events: &[(f64, u32, u32)],
    batches: &[std::ops::Range<usize>],
    brange: std::ops::Range<usize>,
    mut sector_lo: f64,
    emit_final: bool,
    inc_src: Option<&dyn FairnessOracle>,
    verdict: &mut F,
) -> ShardOutput
where
    F: FnMut(&[u32], &[u32], f64, f64, Option<bool>) -> bool,
{
    let mut workspace = RankWorkspace::with_capacity(ds.len());
    let first_angle = batches
        .get(brange.start)
        .filter(|_| brange.start < brange.end || emit_final)
        .map_or(HALF_PI, |b| events[b.start].0);
    let mut ranking: Vec<u32> = Vec::with_capacity(ds.len());
    workspace.rank_into(
        ds,
        &weights_at(0.5 * (sector_lo + first_angle)),
        None,
        &mut ranking,
    );
    let mut position = vec![0u32; ds.len()];
    for (pos, &item) in ranking.iter().enumerate() {
        position[item as usize] = pos as u32;
    }
    let mut inc = inc_src.and_then(|o| o.incremental(&ranking));

    let mut rerank_events = 0u64;
    let mut sectors: Vec<(f64, f64)> = Vec::new();
    let mut boundaries = Vec::with_capacity(brange.len());
    let mut verdicts = Vec::with_capacity(brange.len() + usize::from(emit_final));

    for gb in brange.clone() {
        let batch = &batches[gb];
        let theta = events[batch.start].0;
        // Verdict for the sector ending at this batch.
        let sat = verdict(
            &ranking,
            &position,
            sector_lo,
            theta,
            inc.as_deref()
                .map(fairrank_fairness::IncrementalOracle::is_satisfactory),
        );
        if sat {
            sectors.push((sector_lo, theta));
        }
        verdicts.push(sat);
        boundaries.push(theta);
        sector_lo = theta;

        // Apply the batch of swaps.
        let mut degenerate = false;
        for &(_, a, b) in &events[batch.clone()] {
            let pa = position[a as usize] as usize;
            let pb = position[b as usize] as usize;
            if pa.abs_diff(pb) == 1 {
                let (pos, top, bottom) = if pa < pb { (pa, a, b) } else { (pb, b, a) };
                if let Some(state) = inc.as_deref_mut() {
                    state.swap_adjacent_items(pos, top, bottom);
                }
                ranking.swap(pa, pb);
                position.swap(a as usize, b as usize);
            } else {
                degenerate = true;
            }
        }
        if degenerate {
            // Ties made swap order ambiguous — re-rank strictly inside the
            // next sector (DESIGN.md F5).
            rerank_events += 1;
            let next_theta = batches.get(gb + 1).map_or(HALF_PI, |nb| events[nb.start].0);
            workspace.rank_into(
                ds,
                &weights_at(0.5 * (theta + next_theta)),
                None,
                &mut ranking,
            );
            for (pos, &item) in ranking.iter().enumerate() {
                position[item as usize] = pos as u32;
            }
            inc = inc_src.and_then(|o| o.incremental(&ranking));
        }
    }
    if emit_final {
        // Final sector up to π/2.
        let sat = verdict(
            &ranking,
            &position,
            sector_lo,
            HALF_PI,
            inc.as_deref()
                .map(fairrank_fairness::IncrementalOracle::is_satisfactory),
        );
        if sat {
            sectors.push((sector_lo, HALF_PI));
        }
        verdicts.push(sat);
    }

    ShardOutput {
        sectors,
        boundaries,
        verdicts,
        rerank_events,
    }
}

/// The sector walk shared by [`ray_sweep`] and the incremental index
/// maintenance: seed the ranking strictly inside the first sector, ask
/// `verdict(ranking, position, lo, hi, incremental_verdict)` once per
/// sector, and apply each batch of swaps (re-ranking on degenerate ties,
/// DESIGN.md F5).
///
/// When `inc_src` is given and its oracle supports incremental
/// evaluation ([`FairnessOracle::incremental`]), an `O(1)`-per-swap
/// verdict state is maintained in lockstep with the ranking and its
/// verdict is handed to the closure — by the [`fairrank_fairness::IncrementalOracle`]
/// contract it equals the black-box verdict on the current ranking, so
/// callers may substitute it for an oracle call. `None` keeps the
/// faithful black-box walk (paper Theorem 1 cost accounting).
///
/// The sweep needs the *full* ordering (swaps walk the whole
/// permutation), so re-ranks are full sorts — but through one workspace
/// and into the persistent `ranking` buffer, so degenerate re-rank
/// events allocate nothing after the seed.
pub(crate) fn sweep_events<F>(
    ds: &Dataset,
    events: &[(f64, u32, u32)],
    inc_src: Option<&dyn FairnessOracle>,
    mut verdict: F,
) -> SweepOutput
where
    F: FnMut(&[u32], &[u32], f64, f64, Option<bool>) -> bool,
{
    let batches = batches(events);
    let sector_count = batches.len() + 1;
    let shard = sweep_range(
        ds,
        events,
        &batches,
        0..batches.len(),
        0.0,
        true,
        inc_src,
        &mut verdict,
    );
    SweepOutput {
        intervals: AngularIntervals::from_pairs(shard.sectors),
        boundaries: shard.boundaries,
        verdicts: shard.verdicts,
        sector_count,
        rerank_events: shard.rerank_events,
    }
}

/// The thread-safe per-sector verdict callback of
/// [`sweep_events_threaded`]: `(ranking, position, lo, hi,
/// incremental_verdict) -> satisfactory`.
pub(crate) type SharedVerdictFn<'a> =
    &'a (dyn Fn(&[u32], &[u32], f64, f64, Option<bool>) -> bool + Sync);

/// The sharded sector walk: partition the batch list into `threads`
/// contiguous angular shards, walk each on its own worker (per-shard
/// [`RankWorkspace`], per-shard seed strictly inside the shard's first
/// sector), and concatenate the shard outputs in canonical angular
/// order. Bit-identical to [`sweep_events`] for every thread count — see
/// [`sweep_range`] for the seeding invariant, and
/// `tests/build_equivalence.rs` for the gate.
pub(crate) fn sweep_events_threaded(
    ds: &Dataset,
    events: &[(f64, u32, u32)],
    threads: usize,
    inc_src: Option<&dyn FairnessOracle>,
    verdict: SharedVerdictFn<'_>,
) -> SweepOutput {
    let batches = batches(events);
    let sector_count = batches.len() + 1;
    let chunks = crate::parallel::contiguous_chunks(batches.len(), threads);
    let shards: Vec<ShardOutput> = if chunks.len() <= 1 {
        vec![sweep_range(
            ds,
            events,
            &batches,
            0..batches.len(),
            0.0,
            true,
            inc_src,
            &mut |r, p, lo, hi, iv| verdict(r, p, lo, hi, iv),
        )]
    } else {
        let batches = &batches;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|br| {
                    scope.spawn(move || {
                        let sector_lo = if br.start == 0 {
                            0.0
                        } else {
                            events[batches[br.start - 1].start].0
                        };
                        let emit_final = br.end == batches.len();
                        sweep_range(
                            ds,
                            events,
                            batches,
                            br,
                            sector_lo,
                            emit_final,
                            inc_src,
                            &mut |r, p, lo, hi, iv| verdict(r, p, lo, hi, iv),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    let mut sectors: Vec<(f64, f64)> = Vec::new();
    let mut boundaries = Vec::with_capacity(batches.len());
    let mut verdicts = Vec::with_capacity(sector_count);
    let mut rerank_events = 0u64;
    for s in shards {
        sectors.extend(s.sectors);
        boundaries.extend(s.boundaries);
        verdicts.extend(s.verdicts);
        rerank_events += s.rerank_events;
    }
    SweepOutput {
        intervals: AngularIntervals::from_pairs(sectors),
        boundaries,
        verdicts,
        sector_count,
        rerank_events,
    }
}

/// The black-box sweep: one oracle call per sector (paper Theorem 1).
///
/// Delegates to [`ray_sweep_threads`] with no explicit worker count, so
/// the `FAIRRANK_BUILD_THREADS` environment variable can flip whole runs
/// to the sharded sweep (bit-identical output either way).
///
/// # Errors
/// [`FairRankError::DimensionMismatch`] unless the dataset has exactly two
/// scoring attributes.
pub fn ray_sweep(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
) -> Result<RaySweepResult, FairRankError> {
    ray_sweep_threads(ds, oracle, None)
}

/// [`ray_sweep`] with an explicit worker count (resolved per
/// [`crate::parallel::resolve_build_threads`]): the event list is split
/// into contiguous angular shards, each walked with its own
/// [`RankWorkspace`], and the shard outputs are merged in canonical
/// angle order — bit-identical to the serial sweep for every thread
/// count (gated by `tests/build_equivalence.rs`).
///
/// # Errors
/// [`FairRankError::DimensionMismatch`] unless the dataset has exactly two
/// scoring attributes.
pub fn ray_sweep_threads(
    ds: &Dataset,
    oracle: &dyn FairnessOracle,
    threads: Option<usize>,
) -> Result<RaySweepResult, FairRankError> {
    if ds.dim() != 2 {
        return Err(FairRankError::DimensionMismatch {
            expected: 2,
            found: ds.dim(),
        });
    }
    let workers = crate::parallel::resolve_build_threads(threads);
    let events = exchange_events(ds);
    let oracle_calls = std::sync::atomic::AtomicU64::new(0);
    let out = sweep_events_threaded(ds, &events, workers, None, &|ranking, _, _, _, _| {
        oracle_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        oracle.is_satisfactory(ranking)
    });
    Ok(RaySweepResult {
        intervals: out.intervals,
        exchange_count: events.len(),
        sector_count: out.sector_count,
        oracle_calls: oracle_calls.into_inner(),
        rerank_events: out.rerank_events,
    })
}

/// The incremental sweep for proportionality constraints: `O(1)` per swap,
/// no black-box oracle calls after seeding.
///
/// Produces identical intervals to [`ray_sweep`] with the equivalent
/// oracle (verified by tests and the property suite). Runs on the same
/// `sweep_events` walk as every other sweep driver, with the
/// constraints bundled into a [`Conjunction`] whose incremental state
/// the walk maintains swap by swap.
///
/// # Errors
/// [`FairRankError::DimensionMismatch`] unless the dataset has exactly two
/// scoring attributes.
pub fn ray_sweep_incremental(
    ds: &Dataset,
    constraints: &[&Proportionality],
) -> Result<RaySweepResult, FairRankError> {
    if ds.dim() != 2 {
        return Err(FairRankError::DimensionMismatch {
            expected: 2,
            found: ds.dim(),
        });
    }
    let conjunction = constraints
        .iter()
        .fold(Conjunction::new(), |c, p| c.and((*p).clone()));
    let events = exchange_events(ds);
    let out = sweep_events(ds, &events, Some(&conjunction), |_, _, _, _, inc| {
        inc.expect("proportionality conjunctions support incremental evaluation")
    });
    Ok(RaySweepResult {
        intervals: out.intervals,
        exchange_count: events.len(),
        sector_count: out.sector_count,
        oracle_calls: 0,
        rerank_events: out.rerank_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_fairness::FnOracle;

    /// The paper's Figure 3 dataset.
    fn figure3() -> Dataset {
        Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[
                vec![1.0, 3.5],
                vec![1.5, 3.1],
                vec![1.91, 2.3],
                vec![2.3, 1.8],
                vec![3.2, 0.9],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimension_guard() {
        let ds = Dataset::from_rows(vec!["a".into()], &[vec![1.0]]).unwrap();
        let o = FnOracle::new("any", |_: &[u32]| true);
        assert!(ray_sweep(&ds, &o).is_err());
    }

    #[test]
    fn all_satisfactory_covers_quadrant() {
        let ds = figure3();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = ray_sweep(&ds, &o).unwrap();
        assert_eq!(r.intervals.len(), 1);
        assert!((r.intervals.measure() - HALF_PI).abs() < 1e-9);
        assert_eq!(r.oracle_calls as usize, r.sector_count);
    }

    #[test]
    fn never_satisfactory_empty() {
        let ds = figure3();
        let o = FnOracle::new("never", |_: &[u32]| false);
        let r = ray_sweep(&ds, &o).unwrap();
        assert!(r.intervals.is_empty());
    }

    #[test]
    fn figure3_exchange_count() {
        // No dominance in Figure 3 → all 10 pairs exchange somewhere in the
        // open quadrant.
        let ds = figure3();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = ray_sweep(&ds, &o).unwrap();
        assert_eq!(r.exchange_count, 10);
        assert_eq!(r.sector_count, 11);
    }

    #[test]
    fn sweep_matches_dense_sampling() {
        // Ground truth: evaluate the oracle on a dense sweep of angles and
        // compare membership with the computed intervals.
        let ds = figure3();
        // Satisfactory iff item 0 is ranked first (true near the y-axis).
        let o = FnOracle::new("item 0 first", |r: &[u32]| r[0] == 0);
        let result = ray_sweep(&ds, &o).unwrap();
        for step in 0..2000 {
            let theta = (step as f64 + 0.5) / 2000.0 * HALF_PI;
            let truth = o.is_satisfactory(&ds.rank(&weights_at(theta)));
            // Skip points within numeric distance of a boundary.
            let near_boundary = result
                .intervals
                .as_slice()
                .iter()
                .any(|&(s, e)| (theta - s).abs() < 1e-6 || (theta - e).abs() < 1e-6);
            if !near_boundary {
                assert_eq!(
                    result.intervals.contains(theta),
                    truth,
                    "mismatch at θ = {theta}"
                );
            }
        }
    }

    #[test]
    fn incremental_matches_blackbox() {
        use fairrank_datasets::synthetic::generic;
        let ds = generic::uniform(60, 2, 0.8, 11);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 12).with_max_count(0, 7);
        let black = ray_sweep(&ds, &oracle).unwrap();
        let inc = ray_sweep_incremental(&ds, &[&oracle]).unwrap();
        assert_eq!(black.exchange_count, inc.exchange_count);
        assert_eq!(
            black.intervals.as_slice().len(),
            inc.intervals.as_slice().len(),
            "interval structure differs: {:?} vs {:?}",
            black.intervals.as_slice(),
            inc.intervals.as_slice()
        );
        for (a, b) in black
            .intervals
            .as_slice()
            .iter()
            .zip(inc.intervals.as_slice())
        {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
        assert_eq!(inc.oracle_calls, 0);
    }

    #[test]
    fn duplicate_items_handled() {
        // Duplicates create ties everywhere; sweep must not panic and the
        // all-satisfactory oracle must still cover the quadrant.
        let ds = Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[
                vec![1.0, 2.0],
                vec![1.0, 2.0],
                vec![2.0, 1.0],
                vec![2.0, 1.0],
            ],
        )
        .unwrap();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = ray_sweep(&ds, &o).unwrap();
        assert!((r.intervals.measure() - HALF_PI).abs() < 1e-9);
    }

    #[test]
    fn collinear_ties_rerank() {
        // Three collinear points exchange at the same angle — a degenerate
        // batch that forces a re-rank, which must keep results correct.
        let ds = Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[
                vec![1.0, 3.0],
                vec![2.0, 2.0],
                vec![3.0, 1.0],
                vec![0.5, 1.2],
            ],
        )
        .unwrap();
        let o = FnOracle::new("item 2 first", |r: &[u32]| r[0] == 2);
        let result = ray_sweep(&ds, &o).unwrap();
        for step in 0..500 {
            let theta = (step as f64 + 0.5) / 500.0 * HALF_PI;
            let truth = o.is_satisfactory(&ds.rank(&weights_at(theta)));
            let near_boundary = result
                .intervals
                .as_slice()
                .iter()
                .any(|&(s, e)| (theta - s).abs() < 1e-5 || (theta - e).abs() < 1e-5);
            if !near_boundary {
                assert_eq!(result.intervals.contains(theta), truth, "θ = {theta}");
            }
        }
    }

    #[test]
    fn single_item_dataset() {
        let ds = Dataset::from_rows(vec!["x".into(), "y".into()], &[vec![1.0, 1.0]]).unwrap();
        let o = FnOracle::new("always", |_: &[u32]| true);
        let r = ray_sweep(&ds, &o).unwrap();
        assert_eq!(r.exchange_count, 0);
        assert_eq!(r.sector_count, 1);
        assert_eq!(r.intervals.len(), 1);
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_serial() {
        use fairrank_datasets::synthetic::generic;
        let ds = generic::uniform(70, 2, 0.7, 31);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 12).with_max_count(0, 6);
        let events = exchange_events(&ds);
        let serial = sweep_events(&ds, &events, None, |r, _, _, _, _| {
            oracle.is_satisfactory(r)
        });
        for threads in [1usize, 2, 3, 4, 7, 64] {
            let sharded = sweep_events_threaded(&ds, &events, threads, None, &|r, _, _, _, _| {
                oracle.is_satisfactory(r)
            });
            // Bit-identical: same boundaries, verdicts and intervals,
            // bit for bit.
            assert_eq!(serial.boundaries, sharded.boundaries, "t = {threads}");
            assert_eq!(serial.verdicts, sharded.verdicts, "t = {threads}");
            assert_eq!(
                serial.intervals.as_slice(),
                sharded.intervals.as_slice(),
                "t = {threads}"
            );
            assert_eq!(serial.sector_count, sharded.sector_count);
        }
    }

    #[test]
    fn sharded_sweep_handles_degenerate_batches() {
        // Collinear points force degenerate re-ranks; the sharded walk
        // must still agree bit for bit with the serial one.
        let ds = Dataset::from_rows(
            vec!["x".into(), "y".into()],
            &[
                vec![1.0, 3.0],
                vec![2.0, 2.0],
                vec![3.0, 1.0],
                vec![0.5, 1.2],
                vec![1.5, 2.5],
            ],
        )
        .unwrap();
        let o = FnOracle::new("item 2 first", |r: &[u32]| r[0] == 2);
        let events = exchange_events(&ds);
        let serial = sweep_events(&ds, &events, None, |r, _, _, _, _| o.is_satisfactory(r));
        for threads in [2usize, 3, 5] {
            let sharded = sweep_events_threaded(&ds, &events, threads, None, &|r, _, _, _, _| {
                o.is_satisfactory(r)
            });
            assert_eq!(serial.boundaries, sharded.boundaries);
            assert_eq!(serial.verdicts, sharded.verdicts);
            assert_eq!(serial.intervals.as_slice(), sharded.intervals.as_slice());
        }
    }
}
