//! The two-dimensional case (paper §3): ray sweeping offline, binary
//! search online — plus [`TwoDIntervals`], the §3 artifact packaged as a
//! serving backend.

pub mod online;
pub mod raysweep;

pub use online::{online_2d, TwoDAnswer};
pub use raysweep::{ray_sweep, ray_sweep_incremental, ray_sweep_threads, RaySweepResult};

use fairrank_datasets::kernels;
use fairrank_datasets::Dataset;
use fairrank_fairness::FairnessOracle;
use fairrank_geometry::interval::{AngularIntervals, NearestId};
use fairrank_geometry::HALF_PI;

use crate::backend::{Answer, BackendStats, IndexBackend, QueryCtx, RegionKey, SharedCounters};
use crate::error::FairRankError;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};
use raysweep::{event_cmp, exchange_events, item_events, sweep_events, sweep_events_threaded};

/// [`RegionKey`] kind discriminants for the 2-D backend: a satisfactory
/// interval, the two sides of an unsatisfactory gap (split by which
/// endpoint [`AngularIntervals::nearest`] snaps to), and the single
/// all-unfair region of an empty index.
const REGION_2D_FAIR: u8 = 0;
const REGION_2D_GAP_START: u8 = 1;
const REGION_2D_GAP_END: u8 = 2;
const REGION_2D_INFEASIBLE: u8 = 3;

/// The sweep structure behind incremental maintenance: the full sorted
/// ordering-exchange event list plus the per-sector oracle verdicts the
/// last (re)sweep produced. `boundaries[i]` ends sector `i`;
/// `verdicts.len() == boundaries.len() + 1`.
///
/// This is what turns an item update into an `O(n log n + resweep)`
/// maintenance pass instead of an `O(n²)` rebuild: the event list is
/// merged/filtered per item instead of re-enumerated over all pairs, and
/// for top-k-bounded oracles a sector whose top-k prefix provably did
/// not change reuses its stored verdict without consulting the oracle.
#[derive(Debug, Clone, PartialEq)]
struct SweepMaint {
    events: Vec<(f64, u32, u32)>,
    boundaries: Vec<f64>,
    verdicts: Vec<bool>,
}

impl SweepMaint {
    /// The stored verdict of the sector containing `theta`.
    fn verdict_at(&self, theta: f64) -> bool {
        let idx = self.boundaries.partition_point(|b| *b <= theta);
        self.verdicts[idx]
    }
}

/// The §3 serving backend: sorted satisfactory angular intervals, the
/// exact output of [`ray_sweep`], answered by [`online_2d`] in
/// `O(log n)`.
///
/// Because 2DRAYSWEEP is exact — the intervals *are* the satisfactory
/// set — this backend also decides fairness from the index alone
/// ([`IndexBackend::known_fairness`]), which lets the sharded serving
/// path skip the per-query oracle ranking entirely.
///
/// Built through [`FairRanker::builder`](crate::FairRanker::builder) the
/// backend keeps its sweep structure and maintains it **incrementally**
/// through [`IndexBackend::apply`]; wrapped from bare intervals (e.g. a
/// persisted artifact) it has no sweep structure and the first update
/// falls back to one full resweep, after which it is maintained
/// incrementally too.
#[derive(Debug, Clone)]
pub struct TwoDIntervals {
    intervals: AngularIntervals,
    maint: Option<SweepMaint>,
    counters: SharedCounters,
}

/// Structural equality covers the index artifact (intervals + sweep
/// state); the [`SharedCounters`] are operational metadata shared across
/// copy-on-write forks and deliberately excluded.
impl PartialEq for TwoDIntervals {
    fn eq(&self, other: &Self) -> bool {
        self.intervals == other.intervals && self.maint == other.maint
    }
}

impl TwoDIntervals {
    /// Wrap a satisfactory-interval index (typically
    /// [`RaySweepResult::intervals`]).
    #[must_use]
    pub fn new(intervals: AngularIntervals) -> Self {
        TwoDIntervals {
            intervals,
            maint: None,
            counters: SharedCounters::new(),
        }
    }

    /// The underlying interval index.
    #[must_use]
    pub fn intervals(&self) -> &AngularIntervals {
        &self.intervals
    }

    /// The query's angle in `[0, π/2]` (see [`online_2d`] for the
    /// boundary clamp rationale).
    fn theta(weights: &[f64]) -> f64 {
        weights[1].atan2(weights[0]).clamp(0.0, HALF_PI)
    }

    /// Run 2DRAYSWEEP and keep the sweep structure for incremental
    /// maintenance — the builder's construction path.
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] unless `ds.dim() == 2`.
    pub fn build_maintained(
        ds: &Dataset,
        oracle: &dyn FairnessOracle,
    ) -> Result<TwoDIntervals, FairRankError> {
        Self::build_maintained_threads(ds, oracle, None)
    }

    /// [`build_maintained`](Self::build_maintained) with an explicit
    /// worker count: the sweep is sharded by angular sector and merged in
    /// canonical angle order, bit-identical to the serial walk for every
    /// thread count (`threads` resolves per
    /// [`crate::parallel::resolve_build_threads`]).
    ///
    /// # Errors
    /// [`FairRankError::DimensionMismatch`] unless `ds.dim() == 2`.
    pub fn build_maintained_threads(
        ds: &Dataset,
        oracle: &dyn FairnessOracle,
        threads: Option<usize>,
    ) -> Result<TwoDIntervals, FairRankError> {
        if ds.dim() != 2 {
            return Err(FairRankError::DimensionMismatch {
                expected: 2,
                found: ds.dim(),
            });
        }
        let workers = crate::parallel::resolve_build_threads(threads);
        let phase = crate::buildtel::PhaseTimer::start("twod", "events");
        let events = exchange_events(ds);
        phase.finish();
        let phase = crate::buildtel::PhaseTimer::start("twod", "sweep");
        let out = sweep_events_threaded(ds, &events, workers, None, &|ranking, _, _, _, _| {
            oracle.is_satisfactory(ranking)
        });
        phase.finish();
        Ok(TwoDIntervals {
            intervals: out.intervals,
            maint: Some(SweepMaint {
                events,
                boundaries: out.boundaries,
                verdicts: out.verdicts,
            }),
            counters: SharedCounters::new(),
        })
    }

    /// Resweep over a maintained event list: sectors where
    /// `certified(maint, ranking, position, lo, hi)` proves the stored
    /// verdict still holds reuse it; every other sector takes the
    /// `O(1)` incremental-oracle verdict when the oracle supports one
    /// ([`FairnessOracle::incremental`] — contractually identical to the
    /// black-box answer), falling back to a black-box call otherwise.
    /// Commits the new sweep structure and intervals.
    fn resweep_with<R>(
        &mut self,
        ds: &Dataset,
        oracle: &dyn FairnessOracle,
        events: Vec<(f64, u32, u32)>,
        mut certified: R,
    ) where
        R: FnMut(&SweepMaint, &[u32], &[u32], f64, f64) -> bool,
    {
        let maint = self.maint.take().expect("resweep requires sweep state");
        let out = sweep_events(
            ds,
            &events,
            Some(oracle),
            |ranking, position, lo, hi, inc| {
                if certified(&maint, ranking, position, lo, hi) {
                    maint.verdict_at(lookup_point(lo, hi))
                } else {
                    inc.unwrap_or_else(|| oracle.is_satisfactory(ranking))
                }
            },
        );
        self.intervals = out.intervals;
        self.maint = Some(SweepMaint {
            events,
            boundaries: out.boundaries,
            verdicts: out.verdicts,
        });
    }
}

/// A sector's stored-verdict lookup point: strictly past every event
/// batched at `lo` (batches span at most `1e-12`), strictly before `hi`.
/// Sector widths exceed `1e-12` by construction, so the point is
/// interior.
#[inline]
fn lookup_point(lo: f64, hi: f64) -> f64 {
    0.5 * (lo + 1e-12 + hi)
}

/// Item `x`'s rank over the old dataset as a step function of the angle:
/// `(boundaries, ranks)` where `boundaries` are `x`'s exchange angles and
/// `ranks[i]` is `x`'s rank (0-based) strictly inside segment `i`.
fn rank_steps(ds: &Dataset, events: &[(f64, u32, u32)], x: u32) -> (Vec<f64>, Vec<usize>) {
    let bounds: Vec<f64> = events
        .iter()
        .filter(|&&(_, a, b)| a == x || b == x)
        .map(|&(theta, _, _)| theta)
        .collect();
    let mut ranks = Vec::with_capacity(bounds.len() + 1);
    let mut scores = Vec::new();
    let mut sides = Vec::new();
    for i in 0..=bounds.len() {
        let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
        let hi = if i == bounds.len() {
            HALF_PI
        } else {
            bounds[i]
        };
        let w = [f64::cos(0.5 * (lo + hi)), f64::sin(0.5 * (lo + hi))];
        // Score the whole column once per segment, then classify every
        // item against x's score with the batch sign kernel. The kernel's
        // `total_cmp` signs match exactly the ranking comparator
        // `Dataset::rank` uses (descending `total_cmp` score, ascending
        // id on ties); a raw `>`/`==` pair would diverge on signed zeros
        // (and NaN), misplacing x's rank step function and fabricating a
        // verdict-reuse certificate.
        kernels::score_all_into(ds, &w, &mut scores);
        let sx = scores[x as usize];
        kernels::side_test_batch(&scores, sx, &mut sides);
        let rank = sides
            .iter()
            .enumerate()
            .filter(|&(j, &s)| j != x as usize && (s > 0 || (s == 0 && (j as u32) < x)))
            .count();
        ranks.push(rank);
    }
    (bounds, ranks)
}

/// Minimum of the rank step function over `[lo, hi]`, widened by a
/// `1e-12` slack on both sides (conservative: a smaller minimum only
/// withholds a verdict-reuse certificate, never fabricates one).
fn min_rank_over(bounds: &[f64], ranks: &[usize], lo: f64, hi: f64) -> usize {
    let first = bounds.partition_point(|&b| b <= lo - 1e-12);
    let last = bounds.partition_point(|&b| b < hi + 1e-12);
    ranks[first..=last]
        .iter()
        .copied()
        .min()
        .expect("non-empty")
}

/// Merge two event lists sorted by [`event_cmp`].
fn merge_events(base: Vec<(f64, u32, u32)>, add: Vec<(f64, u32, u32)>) -> Vec<(f64, u32, u32)> {
    let mut out = Vec::with_capacity(base.len() + add.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < add.len() {
        if event_cmp(&base[i], &add[j]).is_le() {
            out.push(base[i]);
            i += 1;
        } else {
            out.push(add[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&add[j..]);
    out
}

impl IndexBackend for TwoDIntervals {
    fn dim(&self) -> usize {
        2
    }

    fn suggest_unfair(
        &self,
        weights: &[f64],
        _ctx: &QueryCtx<'_>,
    ) -> Result<Answer, FairRankError> {
        Ok(match online_2d(&self.intervals, weights)? {
            TwoDAnswer::AlreadyFair => Answer::AlreadyFair,
            TwoDAnswer::Infeasible => Answer::Infeasible,
            TwoDAnswer::Suggestion { weights, distance } => Answer::Suggested {
                weights: weights.to_vec(),
                distance,
            },
        })
    }

    // The sweep enumerates *every* ordering-exchange angle and probes the
    // oracle once per sector, so interval membership equals the oracle's
    // verdict everywhere except exactly on an exchange angle (where the
    // ranking ties and the oracle's own answer is tie-break-dependent).
    fn known_fairness(&self, weights: &[f64]) -> Option<bool> {
        Some(self.intervals.contains(Self::theta(weights)))
    }

    // The intervals characterize the satisfactory set exactly, so every
    // query gets a region: a fair interval, a gap side (split by which
    // endpoint `nearest` snaps to, so the suggested angle is constant
    // per key too, not just the verdict), or the single infeasible
    // region of an empty index. Exactness caveats are the same as
    // `known_fairness`: borders only.
    fn region_of(&self, weights: &[f64]) -> Option<RegionKey> {
        if self.intervals.is_empty() {
            return Some(RegionKey::new(REGION_2D_INFEASIBLE, 0));
        }
        match self.intervals.nearest_id(Self::theta(weights))? {
            NearestId::Inside(i) => Some(RegionKey::new(REGION_2D_FAIR, i as u64)),
            NearestId::Start(i) => Some(RegionKey::new(REGION_2D_GAP_START, i as u64)),
            NearestId::End(i) => Some(RegionKey::new(REGION_2D_GAP_END, i as u64)),
        }
    }

    // True incremental maintenance (the headline of the update design):
    // the stored event list is merged/filtered per item — `O(n log n + E)`
    // instead of the `O(n²)` pair re-enumeration plus `O(E log E)` sort —
    // and the resweep reuses a sector's stored verdict whenever the
    // updated item provably sits outside the oracle's top-k prefix on
    // both sides of the update, so most sectors never touch the oracle.
    // Equivalence to a from-scratch rebuild is property-tested in
    // `tests/incremental_equivalence.rs`.
    fn apply(
        &mut self,
        update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<UpdateOutcome, FairRankError> {
        if self.maint.is_none() {
            // Bare intervals (persisted artifact): one full resweep seeds
            // the maintenance state; subsequent updates are incremental.
            *self = TwoDIntervals {
                counters: self.counters.clone(),
                ..Self::build_maintained(ctx.ds, ctx.oracle)?
            };
            self.counters.record(true, true);
            return Ok(UpdateOutcome::Rebuilt);
        }
        // A sector verdict can only be reused when the oracle provably
        // inspects just the top-k prefix, and the prefix length did not
        // shift under the update (`k` strictly below both populations —
        // re-binding only ever changes `k` by clamping it to `n`).
        let top_k = ctx
            .oracle
            .top_k_bound()
            .filter(|&k| k > 0 && k < ctx.ds.len() && k < ctx.old.len());
        let maint = self.maint.as_ref().expect("checked above");
        match update {
            DatasetUpdate::Insert { .. } => {
                let x = (ctx.ds.len() - 1) as u32;
                let events = merge_events(maint.events.clone(), item_events(ctx.ds, x));
                self.resweep_with(ctx.ds, ctx.oracle, events, |_, _, position, _, _| {
                    // x below the top-k: the prefix the oracle inspects is
                    // exactly the old sector's (inserts don't renumber).
                    top_k.is_some_and(|k| position[x as usize] as usize >= k)
                });
            }
            DatasetUpdate::Remove { item } => {
                let r = *item;
                let (bounds, ranks) = rank_steps(ctx.old, &maint.events, r);
                let events = maint
                    .events
                    .iter()
                    .filter(|&&(_, a, b)| a != r && b != r)
                    .map(|&(theta, a, b)| (theta, a - u32::from(a > r), b - u32::from(b > r)))
                    .collect();
                self.resweep_with(ctx.ds, ctx.oracle, events, |_, _, _, lo, hi| {
                    // r below the top-k throughout the sector: the prefix
                    // is the old one modulo the id renumbering the rebound
                    // oracle absorbs.
                    top_k.is_some_and(|k| min_rank_over(&bounds, &ranks, lo, hi) >= k)
                });
            }
            DatasetUpdate::Rescore { item, .. } => {
                let r = *item;
                let (bounds, ranks) = rank_steps(ctx.old, &maint.events, r);
                let kept: Vec<(f64, u32, u32)> = maint
                    .events
                    .iter()
                    .filter(|&&(_, a, b)| a != r && b != r)
                    .copied()
                    .collect();
                let events = merge_events(kept, item_events(ctx.ds, r));
                self.resweep_with(ctx.ds, ctx.oracle, events, |_, _, position, lo, hi| {
                    // r below the top-k both before and after the rescore.
                    top_k.is_some_and(|k| {
                        position[r as usize] as usize >= k
                            && min_rank_over(&bounds, &ranks, lo, hi) >= k
                    })
                });
            }
        }
        self.counters.record(true, false);
        Ok(UpdateOutcome::Incremental)
    }

    fn clone_box(&self) -> Option<Box<dyn IndexBackend>> {
        Some(Box::new(self.clone()))
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_INTERVALS
    }

    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_intervals(&self.intervals)
    }

    fn stats(&self) -> BackendStats {
        let (updates, rebuilds) = self.counters.snapshot();
        BackendStats {
            kind: "2d-intervals",
            artifacts: self.intervals.len(),
            functions: None,
            error_bound: Some(0.0),
            updates,
            rebuilds,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::Proportionality;
    use fairrank_geometry::polar::to_cartesian;

    #[test]
    fn known_fairness_matches_oracle_off_borders() {
        let ds = generic::uniform(60, 2, 0.9, 11);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 12).with_max_count(0, 6);
        let sweep = ray_sweep(&ds, &oracle).unwrap();
        let backend = TwoDIntervals::new(sweep.intervals);
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0 * HALF_PI;
            let w = to_cartesian(1.3, &[t]);
            let from_index = backend.known_fairness(&w).unwrap();
            let from_oracle = oracle.is_satisfactory(&ds.rank(&w));
            assert_eq!(from_index, from_oracle, "divergence at θ = {t}");
        }
    }

    #[test]
    fn backend_stats_shape() {
        let backend = TwoDIntervals::new(AngularIntervals::from_pairs([(0.1, 0.3), (0.8, 1.0)]));
        let s = backend.stats();
        assert_eq!(s.kind, "2d-intervals");
        assert_eq!(s.artifacts, 2);
        assert_eq!(s.error_bound, Some(0.0));
        assert_eq!(s.updates, 0);
        assert_eq!(s.rebuilds, 0);
        assert_eq!(backend.dim(), 2);
    }

    #[test]
    fn merged_item_events_reproduce_fresh_enumeration() {
        // The bit-identity backbone: (stored events of the old dataset)
        // merged with (the inserted item's events) must equal a fresh
        // `exchange_events` run over the grown dataset, element for
        // element — same angles, same pairs, same order.
        let mut ds = generic::uniform(25, 2, 0.5, 21);
        let old_events = exchange_events(&ds);
        ds.insert_row(&[0.37, 0.81], &[1]).unwrap();
        let x = (ds.len() - 1) as u32;
        let merged = merge_events(old_events, item_events(&ds, x));
        assert_eq!(merged, exchange_events(&ds));
    }

    #[test]
    fn filtered_events_reproduce_fresh_enumeration_after_removal() {
        let ds = generic::uniform(25, 2, 0.5, 22);
        let events = exchange_events(&ds);
        let r = 7u32;
        let filtered: Vec<(f64, u32, u32)> = events
            .iter()
            .filter(|&&(_, a, b)| a != r && b != r)
            .map(|&(t, a, b)| (t, a - u32::from(a > r), b - u32::from(b > r)))
            .collect();
        let mut smaller = ds.clone();
        smaller.remove_row(r as usize).unwrap();
        assert_eq!(filtered, exchange_events(&smaller));
    }

    #[test]
    fn rank_steps_match_direct_ranking() {
        let ds = generic::uniform(20, 2, 0.6, 23);
        let events = exchange_events(&ds);
        let x = 4u32;
        let (bounds, ranks) = rank_steps(&ds, &events, x);
        assert_eq!(ranks.len(), bounds.len() + 1);
        // Check each segment midpoint against a full sort.
        for i in 0..=bounds.len() {
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = if i == bounds.len() {
                HALF_PI
            } else {
                bounds[i]
            };
            let mid = 0.5 * (lo + hi);
            let ranking = ds.rank(&[mid.cos(), mid.sin()]);
            let want = ranking.iter().position(|&it| it == x).unwrap();
            assert_eq!(ranks[i], want, "segment {i} around θ = {mid}");
        }
        // Range minimum matches a scan.
        let min_all = *ranks.iter().min().unwrap();
        assert_eq!(min_rank_over(&bounds, &ranks, 0.0, HALF_PI), min_all);
    }
}
