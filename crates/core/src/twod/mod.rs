//! The two-dimensional case (paper §3): ray sweeping offline, binary
//! search online — plus [`TwoDIntervals`], the §3 artifact packaged as a
//! serving backend.

pub mod online;
pub mod raysweep;

pub use online::{online_2d, TwoDAnswer};
pub use raysweep::{ray_sweep, ray_sweep_incremental, RaySweepResult};

use fairrank_geometry::interval::AngularIntervals;
use fairrank_geometry::HALF_PI;

use crate::backend::{BackendStats, IndexBackend, QueryCtx, Suggestion};
use crate::error::FairRankError;

/// The §3 serving backend: sorted satisfactory angular intervals, the
/// exact output of [`ray_sweep`], answered by [`online_2d`] in
/// `O(log n)`.
///
/// Because 2DRAYSWEEP is exact — the intervals *are* the satisfactory
/// set — this backend also decides fairness from the index alone
/// ([`IndexBackend::known_fairness`]), which lets the sharded serving
/// path skip the per-query oracle ranking entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoDIntervals {
    intervals: AngularIntervals,
}

impl TwoDIntervals {
    /// Wrap a satisfactory-interval index (typically
    /// [`RaySweepResult::intervals`]).
    #[must_use]
    pub fn new(intervals: AngularIntervals) -> Self {
        TwoDIntervals { intervals }
    }

    /// The underlying interval index.
    #[must_use]
    pub fn intervals(&self) -> &AngularIntervals {
        &self.intervals
    }

    /// The query's angle in `[0, π/2]` (see [`online_2d`] for the
    /// boundary clamp rationale).
    fn theta(weights: &[f64]) -> f64 {
        weights[1].atan2(weights[0]).clamp(0.0, HALF_PI)
    }
}

impl IndexBackend for TwoDIntervals {
    fn dim(&self) -> usize {
        2
    }

    fn suggest_unfair(
        &self,
        weights: &[f64],
        _ctx: &QueryCtx<'_>,
    ) -> Result<Suggestion, FairRankError> {
        Ok(match online_2d(&self.intervals, weights)? {
            TwoDAnswer::AlreadyFair => Suggestion::AlreadyFair,
            TwoDAnswer::Infeasible => Suggestion::Infeasible,
            TwoDAnswer::Suggestion { weights, distance } => Suggestion::Suggested {
                weights: weights.to_vec(),
                distance,
            },
        })
    }

    // The sweep enumerates *every* ordering-exchange angle and probes the
    // oracle once per sector, so interval membership equals the oracle's
    // verdict everywhere except exactly on an exchange angle (where the
    // ranking ties and the oracle's own answer is tie-break-dependent).
    fn known_fairness(&self, weights: &[f64]) -> Option<bool> {
        Some(self.intervals.contains(Self::theta(weights)))
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_INTERVALS
    }

    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_intervals(&self.intervals)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            kind: "2d-intervals",
            artifacts: self.intervals.len(),
            functions: None,
            error_bound: Some(0.0),
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_datasets::synthetic::generic;
    use fairrank_fairness::{FairnessOracle as _, Proportionality};
    use fairrank_geometry::polar::to_cartesian;

    #[test]
    fn known_fairness_matches_oracle_off_borders() {
        let ds = generic::uniform(60, 2, 0.9, 11);
        let attr = ds.type_attribute("group").unwrap();
        let oracle = Proportionality::new(attr, 12).with_max_count(0, 6);
        let sweep = ray_sweep(&ds, &oracle).unwrap();
        let backend = TwoDIntervals::new(sweep.intervals);
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0 * HALF_PI;
            let w = to_cartesian(1.3, &[t]);
            let from_index = backend.known_fairness(&w).unwrap();
            let from_oracle = oracle.is_satisfactory(&ds.rank(&w));
            assert_eq!(from_index, from_oracle, "divergence at θ = {t}");
        }
    }

    #[test]
    fn backend_stats_shape() {
        let backend = TwoDIntervals::new(AngularIntervals::from_pairs([(0.1, 0.3), (0.8, 1.0)]));
        let s = backend.stats();
        assert_eq!(s.kind, "2d-intervals");
        assert_eq!(s.artifacts, 2);
        assert_eq!(s.error_bound, Some(0.0));
        assert_eq!(backend.dim(), 2);
    }
}
