//! The two-dimensional case (paper §3): ray sweeping offline, binary
//! search online.

pub mod online;
pub mod raysweep;

pub use online::{online_2d, TwoDAnswer};
pub use raysweep::{ray_sweep, ray_sweep_incremental, RaySweepResult};
