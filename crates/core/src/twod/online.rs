//! 2DONLINE (paper Algorithm 2): answer a 2-D query in `O(log n)` by
//! binary search over the sorted satisfactory intervals.
//!
//! The input function is converted to polar form `(r, θ)`; if `θ` falls in
//! a satisfactory interval the input is returned unchanged, otherwise the
//! closest interval border is converted back to a weight vector *of the
//! same norm `r`* — the suggestion differs from the query only in
//! direction, which is the paper's measure of similarity.

use fairrank_geometry::interval::AngularIntervals;
use fairrank_geometry::HALF_PI;

use crate::error::{validate_weights, FairRankError};

/// Answer to a 2-D closest-satisfactory-function query.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoDAnswer {
    /// The queried function already satisfies the constraints.
    AlreadyFair,
    /// The nearest satisfactory function.
    Suggestion {
        /// Suggested weight vector, same norm as the query.
        weights: [f64; 2],
        /// Angular distance from the query, radians.
        distance: f64,
    },
    /// No satisfactory function exists anywhere in `[0, π/2]`.
    Infeasible,
}

/// Answer a query against a 2-D satisfactory-interval index.
///
/// # Errors
/// [`FairRankError::InvalidWeights`] for malformed weight vectors.
pub fn online_2d(
    intervals: &AngularIntervals,
    weights: &[f64],
) -> Result<TwoDAnswer, FairRankError> {
    validate_weights(weights, 2)?;
    let (w1, w2) = (weights[0], weights[1]);
    let r = (w1 * w1 + w2 * w2).sqrt();
    // atan2 of validated weights (non-negative, not both zero) is already
    // in [0, π/2]; the clamp pins axis-aligned queries like [1, 0] or
    // [0, 2] to the exact domain boundary against any rounding drift, so
    // downstream interval search can never see an out-of-domain angle.
    let theta = w2.atan2(w1).clamp(0.0, HALF_PI);

    if intervals.contains(theta) {
        return Ok(TwoDAnswer::AlreadyFair);
    }
    // An interval border is an ordering-exchange angle where two items tie
    // and the induced ranking is ambiguous; nudge the answer strictly into
    // the satisfactory interval so the suggestion's ordering is the one the
    // sweep validated. The nudge adds at most `BORDER_NUDGE` radians.
    match intervals.nearest_interior(theta, BORDER_NUDGE) {
        None => Ok(TwoDAnswer::Infeasible),
        Some(t) => Ok(TwoDAnswer::Suggestion {
            weights: [r * t.cos(), r * t.sin()],
            distance: (t - theta).abs(),
        }),
    }
}

/// How far inside a satisfactory interval a border suggestion is placed.
/// Large enough to break score ties robustly in `f64`, small enough to be
/// invisible next to any meaningful angular distance.
const BORDER_NUDGE: f64 = 1e-7;

#[cfg(test)]
mod tests {
    use super::*;
    use fairrank_geometry::HALF_PI;
    use std::f64::consts::FRAC_PI_4;

    fn idx(pairs: &[(f64, f64)]) -> AngularIntervals {
        AngularIntervals::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn inside_returns_already_fair() {
        let ivs = idx(&[(0.3, 0.9)]);
        assert_eq!(
            online_2d(&ivs, &[FRAC_PI_4.cos(), FRAC_PI_4.sin()]).unwrap(),
            TwoDAnswer::AlreadyFair
        );
    }

    #[test]
    fn outside_snaps_to_nearest_border() {
        let ivs = idx(&[(0.5, 0.9)]);
        // Query at θ = 0.2 → nearest border 0.5.
        let w = [0.2f64.cos() * 3.0, 0.2f64.sin() * 3.0];
        match online_2d(&ivs, &w).unwrap() {
            TwoDAnswer::Suggestion { weights, distance } => {
                let theta = weights[1].atan2(weights[0]);
                // Within the border nudge of 0.5, strictly inside [0.5, 0.9].
                assert!((theta - 0.5).abs() < 1e-6);
                assert!(theta >= 0.5);
                assert!((distance - 0.3).abs() < 1e-6);
                // Norm preserved.
                let r = (weights[0].powi(2) + weights[1].powi(2)).sqrt();
                assert!((r - 3.0).abs() < 1e-9);
            }
            other => panic!("expected suggestion, got {other:?}"),
        }
    }

    #[test]
    fn picks_closer_of_two_intervals() {
        let ivs = idx(&[(0.1, 0.2), (1.0, 1.2)]);
        // θ = 0.9 is 0.1 away from 1.0 and 0.7 away from 0.2.
        let w = [0.9f64.cos(), 0.9f64.sin()];
        match online_2d(&ivs, &w).unwrap() {
            TwoDAnswer::Suggestion { weights, .. } => {
                let theta = weights[1].atan2(weights[0]);
                assert!((theta - 1.0).abs() < 1e-6);
                assert!(theta >= 1.0, "suggestion must be inside the interval");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_index_infeasible() {
        let ivs = AngularIntervals::new();
        assert_eq!(
            online_2d(&ivs, &[1.0, 1.0]).unwrap(),
            TwoDAnswer::Infeasible
        );
    }

    #[test]
    fn axis_queries() {
        let ivs = idx(&[(0.0, 0.1)]);
        // Pure-x query (θ = 0) is inside.
        assert_eq!(
            online_2d(&ivs, &[2.0, 0.0]).unwrap(),
            TwoDAnswer::AlreadyFair
        );
        // Pure-y query (θ = π/2) snaps to 0.1.
        match online_2d(&ivs, &[0.0, 2.0]).unwrap() {
            TwoDAnswer::Suggestion { distance, .. } => {
                assert!((distance - (HALF_PI - 0.1)).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn axis_aligned_queries_never_leave_domain() {
        // θ = 0 and θ = π/2 exactly, against interval layouts that do and
        // do not touch the boundary: every suggestion must be a valid
        // non-negative weight vector whose angle lies in [0, π/2].
        let layouts = [
            idx(&[(0.4, 0.6)]),
            idx(&[(0.0, 0.3)]),
            idx(&[(1.2, HALF_PI)]),
            idx(&[(0.0, 0.1), (0.7, 0.8), (1.5, HALF_PI)]),
        ];
        for ivs in &layouts {
            for q in [[3.0, 0.0], [0.0, 3.0], [1.0, 0.0], [0.0, 1e-3]] {
                match online_2d(ivs, &q).unwrap() {
                    TwoDAnswer::AlreadyFair => {}
                    TwoDAnswer::Suggestion { weights, distance } => {
                        crate::error::validate_weights(&weights, 2)
                            .expect("suggested weights must be valid queries themselves");
                        let theta = weights[1].atan2(weights[0]);
                        assert!((0.0..=HALF_PI).contains(&theta));
                        assert!((0.0..=HALF_PI + 1e-9).contains(&distance));
                        assert!(
                            ivs.contains(theta),
                            "suggestion θ={theta} outside the satisfactory set"
                        );
                    }
                    TwoDAnswer::Infeasible => panic!("layouts are non-empty"),
                }
            }
        }
    }

    #[test]
    fn invalid_weights_rejected() {
        let ivs = idx(&[(0.0, 1.0)]);
        assert!(online_2d(&ivs, &[1.0]).is_err());
        assert!(online_2d(&ivs, &[-1.0, 1.0]).is_err());
        assert!(online_2d(&ivs, &[0.0, 0.0]).is_err());
    }
}
