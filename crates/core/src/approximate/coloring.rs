//! CELLCOLORING (paper Algorithm 10): propagate satisfactory functions to
//! the cells that do not intersect any satisfactory region.
//!
//! Multi-source Dijkstra over the cell-adjacency graph: satisfied cells
//! start at distance 0 with their own function; an unsatisfied cell
//! adopts the function minimizing the angular distance between that
//! function and the cell's center, exploring in best-first order so each
//! cell is finalized with the (approximately) nearest function.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fairrank_geometry::grid::{AngleGrid, CellId};
use fairrank_geometry::polar::angular_distance;

/// Heap entry ordered by ascending distance (min-heap via reversed Ord).
struct Entry {
    dist: f64,
    cell: CellId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.cell == other.cell
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; ties broken by cell id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.cell.cmp(&self.cell))
    }
}

/// Color every unassigned cell with the nearest assigned function.
///
/// `assigned[c]` is `Some(f)` for cells MARKCELL satisfied (function index
/// `f` into `functions`); on return every cell is `Some` — unless no cell
/// was satisfied at all, in which case nothing changes (the constraint is
/// globally unsatisfiable) and `0` is returned.
///
/// Returns the number of newly colored cells.
pub fn color_cells(
    grid: &AngleGrid,
    assigned: &mut [Option<u32>],
    functions: &[Vec<f64>],
) -> usize {
    debug_assert_eq!(assigned.len(), grid.cell_count());
    let n = assigned.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut visited = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);

    for (c, a) in assigned.iter().enumerate() {
        if a.is_some() {
            dist[c] = 0.0;
            heap.push(Entry {
                dist: 0.0,
                cell: c as CellId,
            });
        }
    }
    if heap.is_empty() {
        return 0;
    }

    let mut colored = 0usize;
    // One center buffer for the whole flood: the loop visits every
    // cell-adjacency edge, and `grid.center` would otherwise allocate a
    // fresh Vec per edge.
    let mut center = Vec::with_capacity(grid.dim());
    while let Some(Entry { dist: d, cell }) = heap.pop() {
        let c = cell as usize;
        if visited[c] || d > dist[c] {
            continue; // lazy deletion
        }
        visited[c] = true;
        let f_idx = assigned[c].expect("popped cells carry a function");
        let f = &functions[f_idx as usize];
        for nb in grid.neighbors(cell) {
            let nbi = nb as usize;
            if visited[nbi] {
                continue;
            }
            grid.center_into(nb, &mut center);
            let alt = angular_distance(f, &center);
            if alt < dist[nbi] {
                if assigned[nbi].is_none() {
                    colored += 1;
                }
                dist[nbi] = alt;
                assigned[nbi] = Some(f_idx);
                heap.push(Entry {
                    dist: alt,
                    cell: nb,
                });
            }
        }
    }
    colored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_floods_everything() {
        let grid = AngleGrid::equal_area(3, 100);
        let n = grid.cell_count();
        let mut assigned: Vec<Option<u32>> = vec![None; n];
        assigned[0] = Some(0);
        let functions = vec![grid.center(0)];
        let colored = color_cells(&grid, &mut assigned, &functions);
        assert_eq!(colored, n - 1);
        assert!(assigned.iter().all(|a| a == &Some(0)));
    }

    #[test]
    fn no_sources_no_coloring() {
        let grid = AngleGrid::equal_area(3, 50);
        let mut assigned: Vec<Option<u32>> = vec![None; grid.cell_count()];
        assert_eq!(color_cells(&grid, &mut assigned, &[]), 0);
        assert!(assigned.iter().all(Option::is_none));
    }

    #[test]
    fn cells_adopt_nearer_source() {
        // Two sources at opposite corners of the angle box: every colored
        // cell must hold the function closer to its center.
        let grid = AngleGrid::uniform(3, 144);
        let n = grid.cell_count();
        let corner_low = grid.locate(&[0.05, 0.05]);
        let corner_high = grid.locate(&[1.5, 1.5]);
        let mut assigned: Vec<Option<u32>> = vec![None; n];
        assigned[corner_low as usize] = Some(0);
        assigned[corner_high as usize] = Some(1);
        let functions = vec![grid.center(corner_low), grid.center(corner_high)];
        color_cells(&grid, &mut assigned, &functions);
        let mut suboptimal = 0usize;
        for c in 0..n as CellId {
            let center = grid.center(c);
            let d0 = angular_distance(&functions[0], &center);
            let d1 = angular_distance(&functions[1], &center);
            let got = assigned[c as usize].unwrap();
            let best = if d0 <= d1 { 0 } else { 1 };
            if got != best && (d0 - d1).abs() > 1e-6 {
                suboptimal += 1;
            }
        }
        // The greedy flood is not exactly a Voronoi partition, but it must
        // be near-perfect on a convex grid with two sources.
        assert!(
            suboptimal <= n / 50,
            "{suboptimal}/{n} cells adopted the farther source"
        );
    }

    #[test]
    fn preexisting_assignments_survive() {
        let grid = AngleGrid::equal_area(3, 60);
        let n = grid.cell_count();
        let mut assigned: Vec<Option<u32>> = vec![None; n];
        assigned[3] = Some(7);
        assigned[10] = Some(9);
        let mut functions = vec![vec![0.0, 0.0]; 10];
        functions[7] = grid.center(3);
        functions[9] = grid.center(10);
        color_cells(&grid, &mut assigned, &functions);
        assert_eq!(assigned[3], Some(7));
        assert_eq!(assigned[10], Some(9));
        assert!(assigned.iter().all(Option::is_some));
    }
}
