//! MARKCELL + ATC⁺ (paper Algorithms 8–9): find a satisfactory scoring
//! function inside a grid cell, stopping as early as possible.
//!
//! Per cell `c` with crossing hyperplanes `HC[c]`:
//!
//! * `HC[c]` empty → the ranking is constant throughout the cell; probe
//!   the center once.
//! * otherwise → build the arrangement restricted to the cell
//!   incrementally; every time a region splits, probe a strict interior
//!   witness of each new child region and **stop at the first satisfactory
//!   one** (the early-stopping strategy of §5.1, illustrated by the
//!   paper's Figure 12).
//!
//! Probes call the *real* oracle on the actual induced ranking, so a
//! function assigned to a cell is satisfactory by construction no matter
//! how the (linearized) hyperplanes approximate the true exchange
//! surfaces (DESIGN.md F2).

use fairrank_geometry::arrangement_tree::ArrangementTree;
use fairrank_geometry::grid::{AngleGrid, CellId};
use fairrank_geometry::hyperplane::Hyperplane;

/// Search one cell for a satisfactory function.
///
/// `probe(angles)` must return `true` iff the ranking induced by the
/// function at `angles` satisfies the oracle. Returns the first accepted
/// function (an angle vector strictly inside the cell), or `None` when
/// every probed region of the cell is unsatisfactory.
pub fn find_satisfactory<F>(
    grid: &AngleGrid,
    cell: CellId,
    hc: &[u32],
    hyperplanes: &[Hyperplane],
    probe: &mut F,
) -> Option<Vec<f64>>
where
    F: FnMut(&[f64]) -> bool,
{
    let (bl, tr) = grid.cell_bounds(cell);

    // Algorithm 8 lines 1–5: uncrossed cell → single ordering.
    if hc.is_empty() {
        let center = grid.center(cell);
        return probe(&center).then_some(center);
    }

    // Per-cell arrangement with early stop (ATC⁺). The first insertion
    // covers Algorithm 8 lines 6–9 (probing h₁⁻ ∩ c and h₁⁺ ∩ c).
    let mut tree = ArrangementTree::for_cell(bl, tr);
    for &hi in hc {
        if let Some(found) = tree.insert_with(&hyperplanes[hi as usize], probe) {
            return Some(found);
        }
    }

    // Every listed hyperplane only grazed the cell (the crossing test is
    // conservative): the ordering is constant after all — probe the center.
    if tree.node_count() == 0 {
        let center = grid.center(cell);
        return probe(&center).then_some(center);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approximate::cellplane::hyperplanes_per_cell;
    use fairrank_geometry::HALF_PI;

    #[test]
    fn uncrossed_cell_probes_center_once() {
        let grid = AngleGrid::equal_area(3, 64);
        let mut calls = 0usize;
        let got = find_satisfactory(&grid, 0, &[], &[], &mut |p: &[f64]| {
            calls += 1;
            p.len() == 2
        });
        assert_eq!(calls, 1);
        let center = grid.center(0);
        assert_eq!(got.unwrap(), center);
    }

    #[test]
    fn uncrossed_cell_unsatisfactory_none() {
        let grid = AngleGrid::equal_area(3, 64);
        let got = find_satisfactory(&grid, 0, &[], &[], &mut |_: &[f64]| false);
        assert!(got.is_none());
    }

    #[test]
    fn crossed_cell_probes_both_sides() {
        // A single hyperplane through the middle of the angle space; find
        // the cell it crosses and accept only the h⁺ side.
        let grid = AngleGrid::equal_area(3, 64);
        let h = Hyperplane::new(vec![1.0, 1.0], 1.2).unwrap();
        let hc = hyperplanes_per_cell(&grid, std::slice::from_ref(&h));
        let cell = (0..grid.cell_count() as CellId)
            .find(|&c| !hc[c as usize].is_empty())
            .expect("some cell is crossed");
        let got = find_satisfactory(
            &grid,
            cell,
            &hc[cell as usize],
            std::slice::from_ref(&h),
            &mut |p: &[f64]| h.eval(p) > 0.0,
        );
        let p = got.expect("plus side accepted");
        assert!(h.eval(&p) > 0.0);
        // And the accepted point is inside the cell.
        let (bl, tr) = grid.cell_bounds(cell);
        for j in 0..2 {
            assert!(bl[j] - 1e-9 <= p[j] && p[j] <= tr[j] + 1e-9);
        }
    }

    #[test]
    fn early_stop_limits_probe_count() {
        // With an always-true probe, the search must stop at the very
        // first probe regardless of how many hyperplanes cross the cell.
        let grid = AngleGrid::equal_area(3, 16);
        let hs: Vec<Hyperplane> = (1..8)
            .map(|k| Hyperplane::new(vec![1.0, 0.1 * k as f64], 0.2 + 0.1 * k as f64).unwrap())
            .collect();
        let hc = hyperplanes_per_cell(&grid, &hs);
        let cell = (0..grid.cell_count() as CellId)
            .max_by_key(|&c| hc[c as usize].len())
            .unwrap();
        assert!(hc[cell as usize].len() >= 2, "test needs a busy cell");
        let mut calls = 0usize;
        let got = find_satisfactory(&grid, cell, &hc[cell as usize], &hs, &mut |_: &[f64]| {
            calls += 1;
            true
        });
        assert!(got.is_some());
        assert_eq!(calls, 1, "early stop must fire on the first probe");
    }

    #[test]
    fn grazing_hyperplane_falls_back_to_center() {
        // A hyperplane that touches the cell box per the interval test but
        // does not properly cut it: corner-tangent plane.
        let grid = AngleGrid::uniform(3, 16);
        let (bl, _tr) = grid.cell_bounds(5);
        // Plane through the bottom-left corner with outward normal.
        let h = Hyperplane::new(vec![1.0, 1.0], bl[0] + bl[1]).unwrap();
        let mut centers = 0usize;
        let center = grid.center(5);
        let got = find_satisfactory(
            &grid,
            5,
            &[0],
            std::slice::from_ref(&h),
            &mut |p: &[f64]| {
                if p == center.as_slice() {
                    centers += 1;
                }
                true
            },
        );
        assert!(got.is_some());
    }

    #[test]
    fn all_regions_rejected_returns_none() {
        let grid = AngleGrid::equal_area(3, 16);
        let h = Hyperplane::new(vec![1.0, 1.0], 1.2).unwrap();
        let hc = hyperplanes_per_cell(&grid, std::slice::from_ref(&h));
        let cell = (0..grid.cell_count() as CellId)
            .find(|&c| !hc[c as usize].is_empty())
            .unwrap();
        let got = find_satisfactory(
            &grid,
            cell,
            &hc[cell as usize],
            std::slice::from_ref(&h),
            &mut |_: &[f64]| false,
        );
        assert!(got.is_none());
    }

    #[test]
    fn probe_points_stay_in_quadrant() {
        let grid = AngleGrid::equal_area(3, 32);
        let hs = vec![Hyperplane::new(vec![0.4, 1.0], 0.9).unwrap()];
        let hc = hyperplanes_per_cell(&grid, &hs);
        for cell in 0..grid.cell_count() as CellId {
            find_satisfactory(&grid, cell, &hc[cell as usize], &hs, &mut |p: &[f64]| {
                assert!(p.iter().all(|&v| (-1e-9..=HALF_PI + 1e-9).contains(&v)));
                false
            });
        }
    }
}
