//! The grid-based approximate index (paper §5): user-controllable
//! preprocessing that guarantees interactive queries within the Theorem 6
//! angular-distance bound.
//!
//! Pipeline (all offline):
//!
//! 1. ordering-exchange hyperplanes (HYPERPOLAR over all pairs);
//! 2. [`cellplane`] — which hyperplanes pass through which grid cell
//!    (CELLPLANE×, Algorithm 7);
//! 3. [`markcell`] — a satisfactory function for every cell that
//!    intersects a satisfactory region, with early stopping
//!    (MARKCELL + ATC⁺, Algorithms 8–9);
//! 4. [`coloring`] — remaining cells inherit the nearest satisfactory
//!    function (CELLCOLORING, Algorithm 10, Dijkstra).
//!
//! Online, [`ApproxIndex::lookup`] is a pure `O(log N)` grid descent
//! (MDONLINE, Algorithm 11).

pub mod cellplane;
pub mod coloring;
pub mod index;
pub mod markcell;

pub use index::{ApproxIndex, BuildOptions, BuildStats};

use fairrank_geometry::polar::{angular_distance, to_polar};
use fairrank_geometry::vector::norm;

use crate::backend::{Answer, BackendStats, IndexBackend, QueryCtx, RegionKey, SharedCounters};
use crate::error::FairRankError;
use crate::update::{DatasetUpdate, UpdateCtx, UpdateOutcome};

/// [`RegionKey`] kind discriminant for a certified-unfair grid cell (the
/// only region family this backend can certify).
const REGION_GRID_UNFAIR: u8 = 0;

/// The §5 serving backend: [`ApproxIndex`] packaged for
/// [`crate::FairRanker`] — `O(log N)` cell lookups under the Theorem 6
/// distance guarantee.
///
/// Boxed: the grid plus per-cell assignments is far larger than the
/// other backends, and one pointer chase per query is noise next to the
/// grid descent itself.
#[derive(Debug, Clone)]
pub struct ApproxGrid {
    index: Box<ApproxIndex>,
    counters: SharedCounters,
}

impl ApproxGrid {
    /// Wrap a built (or decoded) approximate index.
    #[must_use]
    pub fn new(index: ApproxIndex) -> Self {
        ApproxGrid {
            index: Box::new(index),
            counters: SharedCounters::new(),
        }
    }

    /// The underlying grid index.
    #[must_use]
    pub fn index(&self) -> &ApproxIndex {
        &self.index
    }
}

impl IndexBackend for ApproxGrid {
    fn dim(&self) -> usize {
        self.index.grid().dim() + 1
    }

    fn suggest_unfair(
        &self,
        weights: &[f64],
        _ctx: &QueryCtx<'_>,
    ) -> Result<Answer, FairRankError> {
        let r = norm(weights);
        let (_, query_angles) = to_polar(weights);
        match self.index.lookup(&query_angles) {
            None => Ok(Answer::Infeasible),
            Some(angles) => Ok(Answer::Suggested {
                weights: crate::backend::suggestion_weights(angles, r),
                distance: angular_distance(angles, &query_angles),
            }),
        }
    }

    // The grid cells are *coarser* than the true regions, so a cell is a
    // certified region only in one case: MARKCELL searched the cell's
    // complete hyperplane list (`decided` — no per-cell truncation, so
    // every sub-region was probed) and found no satisfactory sub-region
    // (`!satisfied`) — then every query in the cell is unfair. Satisfied
    // cells get no key (they mix fair and unfair sub-regions), and so
    // does any index whose verdicts are not exact: decoded indexes
    // (empty masks), globally truncated hyperplane lists, or pruned
    // builds.
    fn region_of(&self, weights: &[f64]) -> Option<RegionKey> {
        let idx = &self.index;
        let cells = idx.grid().cell_count();
        if idx.decided.len() != cells
            || idx.satisfied.len() != cells
            || idx.opts.max_hyperplanes.is_some()
            || idx.opts.prune_top_k
        {
            return None;
        }
        let (_, query_angles) = to_polar(weights);
        let cell = idx.grid().locate(&query_angles) as usize;
        (idx.decided[cell] && !idx.satisfied[cell])
            .then(|| RegionKey::new(REGION_GRID_UNFAIR, cell as u64))
    }

    // Incremental maintenance via [`ApproxIndex::maintain`]: only cells
    // whose satisfaction verdict can change (crossed by the updated
    // item's hyperplanes, or with a flipped probe verdict under the
    // batched re-check) are re-searched and recolored. Falls back to one
    // deterministic rebuild when the maintenance state is missing (a
    // decoded index) or the build options truncate hyperplanes, which
    // makes delta marking unsound.
    fn apply(
        &mut self,
        update: &DatasetUpdate,
        ctx: &UpdateCtx<'_>,
    ) -> Result<UpdateOutcome, FairRankError> {
        if self.index.is_maintainable() {
            self.index.maintain(update, ctx)?;
            self.counters.record(true, false);
            return Ok(UpdateOutcome::Incremental);
        }
        let opts = self.index.opts.clone();
        *self.index = ApproxIndex::build(ctx.ds, ctx.oracle, &opts)?;
        self.counters.record(true, true);
        Ok(UpdateOutcome::Rebuilt)
    }

    fn clone_box(&self) -> Option<Box<dyn IndexBackend>> {
        Some(Box::new(self.clone()))
    }

    fn persist_tag(&self) -> u8 {
        crate::persist::TAG_APPROX
    }

    fn encode(&self) -> Vec<u8> {
        crate::persist::encode_approx_index(&self.index)
    }

    fn stats(&self) -> BackendStats {
        let (updates, rebuilds) = self.counters.snapshot();
        BackendStats {
            kind: "approx-grid",
            artifacts: self.index.grid().cell_count(),
            functions: Some(self.index.functions().len()),
            error_bound: Some(self.index.error_bound()),
            updates,
            rebuilds,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
