//! The grid-based approximate index (paper §5): user-controllable
//! preprocessing that guarantees interactive queries within the Theorem 6
//! angular-distance bound.
//!
//! Pipeline (all offline):
//!
//! 1. ordering-exchange hyperplanes (HYPERPOLAR over all pairs);
//! 2. [`cellplane`] — which hyperplanes pass through which grid cell
//!    (CELLPLANE×, Algorithm 7);
//! 3. [`markcell`] — a satisfactory function for every cell that
//!    intersects a satisfactory region, with early stopping
//!    (MARKCELL + ATC⁺, Algorithms 8–9);
//! 4. [`coloring`] — remaining cells inherit the nearest satisfactory
//!    function (CELLCOLORING, Algorithm 10, Dijkstra).
//!
//! Online, [`ApproxIndex::lookup`] is a pure `O(log N)` grid descent
//! (MDONLINE, Algorithm 11).

pub mod cellplane;
pub mod coloring;
pub mod index;
pub mod markcell;

pub use index::{ApproxIndex, BuildOptions, BuildStats};
