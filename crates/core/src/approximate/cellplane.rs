//! CELLPLANE× (paper Algorithm 7): assign each ordering-exchange
//! hyperplane to the grid cells it passes through.
//!
//! The hierarchical pruning lives in
//! [`fairrank_geometry::grid::AngleGrid::cells_crossing`]; this module
//! inverts the relation into the per-cell lists `HC[c]` that MARKCELL
//! consumes, and reports the distribution the paper plots in Figure 21.

use fairrank_geometry::grid::AngleGrid;
#[cfg(test)]
use fairrank_geometry::grid::CellId;
use fairrank_geometry::hyperplane::Hyperplane;

/// For every cell, the indices (into `hyperplanes`) of the hyperplanes
/// passing through it.
#[must_use]
pub fn hyperplanes_per_cell(grid: &AngleGrid, hyperplanes: &[Hyperplane]) -> Vec<Vec<u32>> {
    let mut hc: Vec<Vec<u32>> = vec![Vec::new(); grid.cell_count()];
    for (hi, h) in hyperplanes.iter().enumerate() {
        for cell in grid.cells_crossing(h) {
            hc[cell as usize].push(hi as u32);
        }
    }
    hc
}

/// The `|HC[c]|` distribution sorted ascending — the paper's Figure 21
/// series.
#[must_use]
pub fn crossing_histogram(hc: &[Vec<u32>]) -> Vec<usize> {
    let mut counts: Vec<usize> = hc.iter().map(Vec::len).collect();
    counts.sort_unstable();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_matches_bruteforce() {
        let grid = AngleGrid::equal_area(3, 300);
        let hs = vec![
            Hyperplane::new(vec![1.0, 1.0], 1.0).unwrap(),
            Hyperplane::new(vec![1.0, -0.5], 0.2).unwrap(),
        ];
        let hc = hyperplanes_per_cell(&grid, &hs);
        for (cell, lists) in hc.iter().enumerate() {
            let (bl, tr) = grid.cell_bounds(cell as CellId);
            for (hi, h) in hs.iter().enumerate() {
                assert_eq!(
                    lists.contains(&(hi as u32)),
                    h.crosses_box(bl, tr),
                    "cell {cell}, hyperplane {hi}"
                );
            }
        }
    }

    #[test]
    fn histogram_sorted_and_sized() {
        let grid = AngleGrid::equal_area(3, 200);
        let hs = vec![Hyperplane::new(vec![1.0, 0.3], 0.9).unwrap()];
        let hc = hyperplanes_per_cell(&grid, &hs);
        let hist = crossing_histogram(&hc);
        assert_eq!(hist.len(), grid.cell_count());
        assert!(hist.windows(2).all(|w| w[0] <= w[1]));
        let total: usize = hist.iter().sum();
        assert_eq!(total, grid.cells_crossing(&hs[0]).len());
    }

    #[test]
    fn empty_hyperplane_set() {
        let grid = AngleGrid::equal_area(3, 100);
        let hc = hyperplanes_per_cell(&grid, &[]);
        assert!(hc.iter().all(Vec::is_empty));
    }
}
